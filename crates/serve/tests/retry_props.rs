//! Property tests for the retry policy: the backoff envelope is monotone
//! and capped, jitter only ever shortens a delay (bounded by the jitter
//! fraction), and the retry predicate refuses fatal errors and exhausted
//! budgets regardless of the draw.

use fstore_serve::client::ClientError;
use fstore_serve::retry::{classify, ErrorClass, RetryPolicy};
use fstore_serve::{ErrorCode, Request};
use proptest::prelude::*;
use std::time::Duration;

fn arb_policy() -> impl Strategy<Value = RetryPolicy> {
    (1u32..8, 1u64..1_000, 1.0f64..4.0, 1u64..10_000, 0.0f64..1.0).prop_map(
        |(max_attempts, base_ms, multiplier, max_ms, jitter)| {
            RetryPolicy {
                max_attempts,
                base_backoff: Duration::from_millis(base_ms),
                multiplier,
                // Keep the cap at or above the base so the envelope is
                // well-formed (the builder-level invariant).
                max_backoff: Duration::from_millis(base_ms.max(max_ms)),
                jitter,
            }
        },
    )
}

fn server_error(code: ErrorCode) -> ClientError {
    ClientError::Server {
        code,
        message: String::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Without jitter the delay sequence never decreases and never
    /// exceeds the cap.
    #[test]
    fn backoff_ceiling_is_monotone_and_capped(policy in arb_policy(), attempt in 0u32..40) {
        let here = policy.backoff_ceiling(attempt);
        let next = policy.backoff_ceiling(attempt + 1);
        prop_assert!(next >= here, "ceiling decreased: {here:?} -> {next:?}");
        prop_assert!(here <= policy.max_backoff);
        prop_assert!(next <= policy.max_backoff);
    }

    /// Jitter only shortens: every draw lands in
    /// `[(1 - jitter) * ceiling, ceiling]`.
    #[test]
    fn jitter_is_bounded(policy in arb_policy(), attempt in 0u32..40, unit in 0.0f64..1.0) {
        let ceiling = policy.backoff_ceiling(attempt);
        let drawn = policy.backoff(attempt, unit);
        prop_assert!(drawn <= ceiling, "jitter lengthened the delay");
        let floor = ceiling.mul_f64(1.0 - policy.jitter.clamp(0.0, 1.0));
        // Allow 1µs of Duration::mul_f64 rounding slack.
        prop_assert!(
            drawn + Duration::from_micros(1) >= floor,
            "draw {drawn:?} fell below the jitter floor {floor:?}"
        );
    }

    /// Fatal errors are never retried, whatever the attempt number.
    #[test]
    fn fatal_errors_are_never_retried(policy in arb_policy(), attempt in 0u32..10) {
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::NotFound,
            ErrorCode::Stale,
            ErrorCode::Internal,
            ErrorCode::IndexNotReady,
            ErrorCode::DimensionMismatch,
            ErrorCode::DeadlineExceeded,
            ErrorCode::FrameTooLarge,
        ] {
            let error = server_error(code);
            prop_assert_eq!(classify(&error), ErrorClass::Fatal);
            prop_assert!(!policy.should_retry(&Request::Health, &error, attempt));
        }
        let unexpected = ClientError::UnexpectedResponse("Health");
        prop_assert!(!policy.should_retry(&Request::Health, &unexpected, attempt));
    }

    /// The attempt budget is respected: once `attempt + 1` reaches
    /// `max_attempts` nothing is retried, even transient failures.
    #[test]
    fn attempt_budget_is_a_hard_stop(policy in arb_policy(), extra in 0u32..10) {
        let attempt = policy.max_attempts.saturating_sub(1) + extra;
        let transient = ClientError::ConnectionClosed;
        prop_assert!(!policy.should_retry(&Request::Health, &transient, attempt));
    }

    /// Transient failures of idempotent requests ARE retried while the
    /// budget lasts — the policy must not be vacuously safe.
    #[test]
    fn transient_idempotent_failures_retry_within_budget(policy in arb_policy()) {
        let policy = RetryPolicy { max_attempts: policy.max_attempts.max(2), ..policy };
        let transient = ClientError::ConnectionClosed;
        prop_assert!(policy.should_retry(&Request::Health, &transient, 0));
        let overload = server_error(ErrorCode::Overloaded);
        prop_assert!(policy.should_retry(&Request::Health, &overload, 0));
    }
}
