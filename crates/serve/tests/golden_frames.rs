//! Golden-frames compatibility test: a fixture of encoded frames checked
//! in from the pre-refactor codec. The current codec must decode every
//! fixture frame to the expected value and re-encode it to the exact same
//! bytes, pinning the wire format across refactors.
//!
//! Fixture format (`tests/golden_frames.bin`): a sequence of records,
//! each `kind u8 (0 = request, 1 = response) | len u32 BE | payload`.
//! The corpus below must stay in lockstep with the fixture; regenerate
//! with `FSTORE_GOLDEN_REGEN=1 cargo test -p fstore-serve --test
//! golden_frames` only when the wire format changes *on purpose*.

use fstore_common::{ComponentKind, Timestamp, Value};
use fstore_serve::{ErrorCode, Request, Response, SearchOptions, WireDelta, WireHit, WireVector};
use std::path::PathBuf;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden_frames.bin")
}

/// Every request variant, including the deadline envelope and edge-case
/// strings. Order matters: it is the fixture order.
fn request_corpus() -> Vec<Request> {
    vec![
        Request::Health,
        Request::GetFeatures {
            group: "user_stats".into(),
            entity: "user-42".into(),
            features: vec!["clicks_7d".into(), "spend_30d".into()],
        },
        Request::GetFeatures {
            group: String::new(),
            entity: "unicodé → 🦀".into(),
            features: vec![],
        },
        Request::GetFeaturesBatch {
            group: "user_stats".into(),
            entities: vec!["a".into(), "b".into(), "c".into()],
            features: vec!["clicks_7d".into()],
        },
        Request::GetEmbedding {
            table: "products".into(),
            key: "sku-9".into(),
        },
        Request::SearchNearest {
            table: "products".into(),
            query: vec![0.0, -1.5, 3.25, f32::MIN_POSITIVE],
            k: 10,
            options: SearchOptions {
                ef: 64,
                nprobe: 0,
                exhaustive: false,
            },
        },
        Request::SearchNearestByKey {
            table: "products".into(),
            key: "sku-9".into(),
            k: 5,
            options: SearchOptions {
                ef: 0,
                nprobe: 8,
                exhaustive: true,
            },
        },
        Request::ReplSubscribe,
        Request::ReplSnapshot,
        Request::ReplDeltas { from_epoch: 12345 },
        Request::WithDeadline {
            budget_ms: 250,
            inner: Box::new(Request::GetFeatures {
                group: "user_stats".into(),
                entity: "user-42".into(),
                features: vec!["clicks_7d".into()],
            }),
        },
        Request::WithDeadline {
            budget_ms: 0,
            inner: Box::new(Request::Health),
        },
        Request::PutOnline {
            group: "user_stats".into(),
            entity: "user-42".into(),
            values: vec![
                ("n".into(), Value::Null),
                ("i".into(), Value::Int(i64::MIN)),
                ("f".into(), Value::Float(-0.125)),
                ("b".into(), Value::Bool(false)),
                ("s".into(), Value::Str("écrit 🦀".into())),
                (
                    "t".into(),
                    Value::Timestamp(Timestamp::millis(1_700_000_000_000)),
                ),
            ],
            term: 7,
        },
        Request::PutOnline {
            group: String::new(),
            entity: String::new(),
            values: vec![],
            term: u64::MAX,
        },
        Request::Promote { shard: 2, term: 8 },
        Request::Demote {
            shard: 0,
            term: u64::MAX,
        },
    ]
}

/// Every response variant; the feature vector exercises every `Value`
/// tag plus present/absent ages and a stale list.
fn response_corpus() -> Vec<Response> {
    let vector = WireVector {
        entity: "user-42".into(),
        features: vec![
            "a".into(),
            "b".into(),
            "c".into(),
            "d".into(),
            "e".into(),
            "f".into(),
        ],
        values: vec![
            Value::Null,
            Value::Int(-7),
            Value::Float(2.5),
            Value::Bool(true),
            Value::Str("hello".into()),
            Value::Timestamp(Timestamp::millis(1_700_000_000_000)),
        ],
        ages_ms: vec![Some(0), None, Some(1234), None, Some(i64::MAX), None],
        stale: vec!["c".into(), "f".into()],
        epoch: 99,
    };
    vec![
        Response::Health {
            queue_depth: 17,
            draining: false,
        },
        Response::Health {
            queue_depth: 0,
            draining: true,
        },
        Response::Features(vector.clone()),
        Response::FeaturesBatch(vec![vector.clone(), vector]),
        Response::Embedding {
            dim: 4,
            version: 3,
            epoch: 77,
            vector: vec![1.0, 0.0, -0.5, 0.25].into(),
        },
        Response::Error {
            code: ErrorCode::Overloaded,
            message: "queue full".into(),
        },
        Response::Error {
            code: ErrorCode::FrameTooLarge,
            message: String::new(),
        },
        Response::Neighbors {
            table_version: 2,
            index_generation: 41,
            hits: vec![
                WireHit {
                    key: "sku-1".into(),
                    distance: 0.125,
                },
                WireHit {
                    key: "sku-2".into(),
                    distance: 7.5,
                },
            ],
        },
        Response::ReplState {
            leader_epoch: 10,
            oldest_retained: 3,
            retention: 64,
        },
        Response::ReplSnapshot {
            repl_epoch: 8,
            payload: b"\x00\x01\xfe\xffsnapshot bytes".to_vec().into(),
        },
        Response::ReplDeltas {
            leader_epoch: 11,
            lagged: true,
            deltas: vec![
                WireDelta {
                    seq: 5,
                    component: ComponentKind::Offline,
                    component_epoch: 2,
                    body: "{\"rows\":[]}".into(),
                },
                WireDelta {
                    seq: 6,
                    component: ComponentKind::Embeddings,
                    component_epoch: 3,
                    body: String::new(),
                },
                WireDelta {
                    seq: 7,
                    component: ComponentKind::Index,
                    component_epoch: 4,
                    body: "build".into(),
                },
                WireDelta {
                    seq: 8,
                    component: ComponentKind::Online,
                    component_epoch: 5,
                    body: "row".into(),
                },
            ],
        },
        Response::PutAck {
            epoch: 123_456,
            term: 9,
        },
        Response::Error {
            code: ErrorCode::NotLeader,
            message: "current_term=10".into(),
        },
    ]
}

fn encode_fixture() -> Vec<u8> {
    let mut out = Vec::new();
    for req in request_corpus() {
        let payload = req.encode();
        out.push(0u8);
        out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        out.extend_from_slice(&payload);
    }
    for resp in response_corpus() {
        let payload = resp.encode();
        out.push(1u8);
        out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        out.extend_from_slice(&payload);
    }
    out
}

#[test]
fn golden_frames_decode_and_reencode_byte_identically() {
    if std::env::var_os("FSTORE_GOLDEN_REGEN").is_some() {
        std::fs::write(fixture_path(), encode_fixture()).unwrap();
        return;
    }
    let fixture = std::fs::read(fixture_path())
        .expect("tests/golden_frames.bin missing — the wire-format fixture must be checked in");
    let requests = request_corpus();
    let responses = response_corpus();
    let mut cursor = &fixture[..];
    let mut req_at = 0usize;
    let mut resp_at = 0usize;
    while !cursor.is_empty() {
        let kind = cursor[0];
        let len = u32::from_be_bytes(cursor[1..5].try_into().unwrap()) as usize;
        let payload = &cursor[5..5 + len];
        match kind {
            0 => {
                let expected = &requests[req_at];
                let decoded = Request::decode(payload)
                    .unwrap_or_else(|e| panic!("golden request {req_at} no longer decodes: {e}"));
                assert_eq!(
                    &decoded, expected,
                    "golden request {req_at} decoded differently"
                );
                assert_eq!(
                    &decoded.encode()[..],
                    payload,
                    "golden request {req_at} re-encodes to different bytes"
                );
                req_at += 1;
            }
            1 => {
                let expected = &responses[resp_at];
                let decoded = Response::decode(payload)
                    .unwrap_or_else(|e| panic!("golden response {resp_at} no longer decodes: {e}"));
                assert_eq!(
                    &decoded, expected,
                    "golden response {resp_at} decoded differently"
                );
                assert_eq!(
                    &decoded.encode()[..],
                    payload,
                    "golden response {resp_at} re-encodes to different bytes"
                );
                resp_at += 1;
            }
            other => panic!("corrupt fixture: record kind {other}"),
        }
        cursor = &cursor[5 + len..];
    }
    assert_eq!(req_at, requests.len(), "fixture is missing request records");
    assert_eq!(
        resp_at,
        responses.len(),
        "fixture is missing response records"
    );
}
