//! Loopback tests for the ANN serving path: search endpoints end to end,
//! typed index errors, and — the one that matters — concurrent clients
//! hammering `SearchNearest` while the catalog rebuilds and swaps the
//! index under them. The swap must be invisible: no request may fail with
//! anything other than an explicit `Overloaded`, and recall after the
//! swap must not be worse than before it.

use fstore_common::{Rng, Timestamp, Xoshiro256};
use fstore_core::FeatureServer;
use fstore_embed::{EmbeddingDb, EmbeddingProvenance, EmbeddingTable};
use fstore_index::{HnswConfig, IvfConfig};
use fstore_serve::{
    fixed_clock, start, ErrorCode, FeatureClient, IndexCatalog, IndexSpec, SearchOptions,
    ServeConfig, ServeEngine, StoreApi,
};
use fstore_storage::OnlineStore;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const N: usize = 2_000;
const DIM: usize = 8;
const K: usize = 10;
const NOW: Timestamp = Timestamp(10_000);

/// Clustered vectors (so IVF/HNSW have structure to exploit) keyed `e{i}`.
fn make_table(seed: u64) -> EmbeddingTable {
    let mut rng = Xoshiro256::seeded(seed);
    let centers: Vec<Vec<f32>> = (0..16)
        .map(|_| (0..DIM).map(|_| rng.normal() as f32 * 4.0).collect())
        .collect();
    let mut table = EmbeddingTable::new(DIM).unwrap();
    for i in 0..N {
        let c = &centers[i % centers.len()];
        let v: Vec<f32> = c.iter().map(|&x| x + rng.normal() as f32 * 0.5).collect();
        table.insert(format!("e{i}"), v).unwrap();
    }
    table
}

fn serving_stack() -> (EmbeddingDb, Arc<IndexCatalog>, ServeEngine) {
    let store = EmbeddingDb::new();
    store
        .publish("emb", make_table(42), EmbeddingProvenance::default(), NOW)
        .unwrap();
    let catalog = Arc::new(IndexCatalog::new(store.clone()));
    let engine = ServeEngine::new(
        FeatureServer::new(Arc::new(OnlineStore::default())),
        fixed_clock(NOW),
    )
    .with_index_catalog(Arc::clone(&catalog));
    (store, catalog, engine)
}

/// Exact top-k keys for `query` against the live table, for recall checks.
fn exact_top_k(store: &EmbeddingDb, query: &[f32], k: usize) -> Vec<String> {
    let snapshot = store.snapshot();
    let version = snapshot.latest("emb").unwrap();
    let (keys, vectors) = version.table.export_rows();
    let mut scored: Vec<(usize, f32)> = vectors
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let d: f32 = v.iter().zip(query).map(|(a, b)| (a - b) * (a - b)).sum();
            (i, d)
        })
        .collect();
    scored.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    scored
        .into_iter()
        .take(k)
        .map(|(i, _)| keys[i].clone())
        .collect()
}

fn query_points(seed: u64, count: usize, store: &EmbeddingDb) -> Vec<Vec<f32>> {
    // Perturbed copies of stored rows: queries that have meaningful
    // neighbours under every index family.
    let snapshot = store.snapshot();
    let (_, vectors) = snapshot.latest("emb").unwrap().table.export_rows();
    let mut rng = Xoshiro256::seeded(seed);
    (0..count)
        .map(|_| {
            let row = &vectors[(rng.next_u64() as usize) % vectors.len()];
            row.iter().map(|&x| x + rng.normal() as f32 * 0.1).collect()
        })
        .collect()
}

#[test]
fn search_endpoints_answer_over_the_wire_with_typed_errors() {
    let (_store, catalog, engine) = serving_stack();
    let handle = start(engine, ServeConfig::default()).unwrap();
    let mut client = FeatureClient::connect(handle.addr()).unwrap();

    // Before any build: typed IndexNotReady, connection survives.
    let err = client
        .search_nearest("emb", &[0.0; DIM], K as u32, SearchOptions::default())
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::IndexNotReady));

    catalog.build("emb", &IndexSpec::Flat).unwrap();

    // Wrong dimension: typed DimensionMismatch.
    let err = client
        .search_nearest("emb", &[0.0; 3], K as u32, SearchOptions::default())
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::DimensionMismatch));

    // Unknown key on the by-key endpoint: NotFound.
    let err = client
        .search_nearest_by_key("emb", "ghost", K as u32, SearchOptions::default())
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::NotFound));

    // A real search answers sorted hits stamped with version+generation.
    let got = client
        .search_nearest("emb", &[0.0; DIM], K as u32, SearchOptions::default())
        .unwrap();
    assert_eq!(got.table_version, 1);
    assert_eq!(got.index_generation, 1);
    assert_eq!(got.hits.len(), K);
    for w in got.hits.windows(2) {
        assert!(w[0].distance <= w[1].distance);
    }

    // By-key excludes the query entity and returns k hits.
    let got = client
        .search_nearest_by_key("emb", "e7", K as u32, SearchOptions::default())
        .unwrap();
    assert_eq!(got.hits.len(), K);
    assert!(got.hits.iter().all(|h| h.key != "e7"));

    let metrics = handle.metrics();
    let snap = metrics.snapshot();
    assert!(snap.endpoints["search_nearest"].requests >= 3);
    assert!(snap.endpoints["search_nearest_by_key"].requests >= 2);
    assert_eq!(snap.indexes["emb"].kind, "flat");
    handle.shutdown();
}

#[test]
fn concurrent_searches_survive_two_index_swaps_without_dropped_requests() {
    let (store, catalog, engine) = serving_stack();
    // Start on a deliberately low-recall IVF so the post-swap indexes have
    // headroom to improve on the baseline.
    catalog
        .build(
            "emb",
            &IndexSpec::Ivf(IvfConfig {
                nlist: 64,
                nprobe: 1,
                ..IvfConfig::default()
            }),
        )
        .unwrap();
    let handle = start(
        engine,
        ServeConfig::builder()
            .workers(4)
            .queue_depth(1024)
            .build()
            .unwrap(),
    )
    .unwrap();
    let addr = handle.addr();

    let queries = Arc::new(query_points(7, 64, &store));
    let truth: Arc<Vec<Vec<String>>> =
        Arc::new(queries.iter().map(|q| exact_top_k(&store, q, K)).collect());

    let recall_of = |hits: &[fstore_serve::WireHit], want: &[String]| -> f64 {
        let got: Vec<&str> = hits.iter().map(|h| h.key.as_str()).collect();
        want.iter().filter(|w| got.contains(&w.as_str())).count() as f64 / want.len() as f64
    };

    // Pre-swap baseline recall, measured over the wire.
    let baseline = {
        let mut client = FeatureClient::connect(addr).unwrap();
        let mut acc = 0.0;
        for (q, want) in queries.iter().zip(truth.iter()) {
            let got = client
                .search_nearest("emb", q, K as u32, SearchOptions::default())
                .unwrap();
            acc += recall_of(&got.hits, want);
        }
        acc / queries.len() as f64
    };
    assert!(
        baseline < 0.999,
        "nprobe=1 baseline should be approximate, got {baseline}"
    );

    // Hammer the search endpoint from N threads while two rebuilds land.
    let stop = Arc::new(AtomicBool::new(false));
    const THREADS: usize = 4;
    let hammers: Vec<_> = (0..THREADS)
        .map(|t| {
            let stop = Arc::clone(&stop);
            let queries = Arc::clone(&queries);
            std::thread::spawn(move || {
                let mut client = FeatureClient::connect(addr).unwrap();
                let mut ok = 0u64;
                let mut overloaded = 0u64;
                let mut generations = Vec::new();
                let mut i = t;
                while !stop.load(Ordering::Acquire) {
                    let q = &queries[i % queries.len()];
                    i += 1;
                    match client.search_nearest("emb", q, K as u32, SearchOptions::default()) {
                        Ok(n) => {
                            ok += 1;
                            if generations.last() != Some(&n.index_generation) {
                                generations.push(n.index_generation);
                            }
                        }
                        Err(e) if e.code() == Some(ErrorCode::Overloaded) => overloaded += 1,
                        Err(e) => panic!("request dropped during swap: {e}"),
                    }
                }
                (ok, overloaded, generations)
            })
        })
        .collect();

    // Two rebuild+swap cycles while the hammers run: IVF→HNSW→Flat.
    let h1 = catalog.rebuild_in_background(
        "emb",
        IndexSpec::Hnsw(HnswConfig {
            ef_search: 64,
            ..HnswConfig::default()
        }),
    );
    h1.join().unwrap().unwrap();
    let h2 = catalog.rebuild_in_background("emb", IndexSpec::Flat);
    h2.join().unwrap().unwrap();
    // Let traffic observe the final generation before stopping.
    std::thread::sleep(std::time::Duration::from_millis(50));
    stop.store(true, Ordering::Release);

    let mut total_ok = 0u64;
    let mut seen_generations: Vec<u64> = Vec::new();
    for h in hammers {
        let (ok, _overloaded, generations) = h.join().unwrap();
        total_ok += ok;
        // Generations observed by one client never go backwards.
        for w in generations.windows(2) {
            assert!(w[0] < w[1], "generation went backwards: {w:?}");
        }
        seen_generations.extend(generations);
    }
    assert!(total_ok > 0, "hammer threads made progress");
    assert!(
        seen_generations.contains(&3),
        "final generation observed over the wire: {seen_generations:?}"
    );
    assert_eq!(catalog.swap_count(), 3, "initial build + two rebuilds");

    // Post-swap the index is exact (Flat): recall must beat the nprobe=1
    // baseline.
    let post = {
        let mut client = FeatureClient::connect(addr).unwrap();
        let mut acc = 0.0;
        for (q, want) in queries.iter().zip(truth.iter()) {
            let got = client
                .search_nearest("emb", q, K as u32, SearchOptions::default())
                .unwrap();
            assert_eq!(got.index_generation, 3);
            acc += recall_of(&got.hits, want);
        }
        acc / queries.len() as f64
    };
    assert!(
        post >= baseline,
        "post-swap recall {post} regressed below baseline {baseline}"
    );
    assert!((post - 1.0).abs() < 1e-12, "flat index is exact");

    let metrics = handle.metrics();
    // The initial build predates the server (and its metrics); only the
    // two mid-traffic rebuilds are counted as swaps.
    assert_eq!(metrics.index_swaps(), 2);
    let snap = metrics.snapshot();
    assert_eq!(snap.indexes["emb"].kind, "flat");
    assert_eq!(snap.indexes["emb"].generation, 3);
    assert_eq!(snap.indexes["emb"].staleness, 0);
    assert_eq!(snap.endpoints["search_nearest"].errors, 0);
    handle.shutdown();
}

#[test]
fn coalesced_search_batches_agree_with_single_requests() {
    let (store, catalog, engine) = serving_stack();
    catalog.build("emb", &IndexSpec::Flat).unwrap();
    // One slow worker forces concurrent identical-(table,k,options)
    // searches to pile up in the queue and coalesce.
    let handle = start(
        engine,
        ServeConfig::builder()
            .workers(1)
            .queue_depth(256)
            .max_batch(16)
            .handler_delay(std::time::Duration::from_millis(5))
            .build()
            .unwrap(),
    )
    .unwrap();
    let addr = handle.addr();

    let queries = Arc::new(query_points(11, 24, &store));
    let threads: Vec<_> = (0..queries.len())
        .map(|i| {
            let queries = Arc::clone(&queries);
            std::thread::spawn(move || {
                let mut client = FeatureClient::connect(addr).unwrap();
                let got = client
                    .search_nearest("emb", &queries[i], K as u32, SearchOptions::default())
                    .unwrap();
                (i, got)
            })
        })
        .collect();
    let mut results: HashMap<usize, Vec<String>> = HashMap::new();
    for t in threads {
        let (i, got) = t.join().unwrap();
        assert_eq!(got.hits.len(), K);
        results.insert(i, got.hits.into_iter().map(|h| h.key).collect());
    }

    // Every coalesced answer matches exact ground truth (Flat index).
    for (i, keys) in &results {
        let want = exact_top_k(&store, &queries[*i], K);
        assert_eq!(keys, &want, "query {i} diverged under batching");
    }

    let snap = handle.metrics().snapshot();
    assert!(
        snap.batches > 0,
        "a slow single worker must have coalesced at least one search batch"
    );
    handle.shutdown();
}
