//! Model-based property test for leader fencing: arbitrary interleavings
//! of control-plane promotions, demotions (fences), and writes carrying
//! any previously issued term are replayed against a 3-node cluster of
//! real [`ServeEngine`]s and a reference state machine in parallel.
//!
//! The safety property under test: **a term's writes are only ever
//! acknowledged by the single node the control plane assigned that term
//! to** — no interleaving of stale writes, delayed promotes, or reordered
//! fences produces an ack from two nodes at the same term (a double-ack),
//! and a node never applies a write it refused.

use fstore_common::{EntityKey, Timestamp, Value};
use fstore_core::FeatureServer;
use fstore_serve::{
    fixed_clock, ErrorCode, PromoteHook, Request, Response, ServeEngine, WriteProvider, WriteState,
};
use fstore_storage::OnlineStore;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const NODES: usize = 3;

fn now() -> Timestamp {
    Timestamp::millis(1_000)
}

/// A write sink that only counts applications, so the test can prove the
/// engine applied exactly the writes the model says were acknowledged.
#[derive(Default)]
struct CountingProvider {
    applied: AtomicU64,
}

impl WriteProvider for CountingProvider {
    fn put_online(
        &self,
        _group: &str,
        _entity: &EntityKey,
        _values: &[(String, Value)],
        _now: Timestamp,
    ) -> fstore_common::Result<u64> {
        Ok(self.applied.fetch_add(1, Ordering::SeqCst) + 1)
    }
}

/// One real node: an engine plus the counter its provider(s) feed.
struct Node {
    engine: ServeEngine,
    state: Arc<WriteState>,
    counter: Arc<CountingProvider>,
}

fn build_nodes() -> Vec<Node> {
    (0..NODES)
        .map(|i| {
            let counter = Arc::new(CountingProvider::default());
            let base = ServeEngine::new(
                FeatureServer::new(Arc::new(OnlineStore::default())),
                fixed_clock(now()),
            );
            // Node 0 boots as the leader at term 1; the rest are
            // promotable replicas whose hook installs the shared counter.
            let engine = if i == 0 {
                base.with_write_provider(Arc::clone(&counter) as Arc<dyn WriteProvider>, 1)
            } else {
                let hooked = Arc::clone(&counter);
                let hook: PromoteHook =
                    Arc::new(move |_term| Ok(Arc::clone(&hooked) as Arc<dyn WriteProvider>));
                base.with_promote_hook(hook)
            };
            let state = engine.write_state();
            Node {
                engine,
                state,
                counter,
            }
        })
        .collect()
}

/// Reference model of one node's fenced write state.
#[derive(Clone, Copy)]
struct ModelNode {
    term: u64,
    leader: bool,
    promotable: bool,
    applied: u64,
}

/// The three operations the control plane and clients can interleave,
/// with operands resolved at replay time against the issued-term list.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Control plane assigns the next (strictly increasing) term to a node.
    Promote { node: u8 },
    /// A fence (or a stale, delayed fence) carrying an already-issued term.
    Demote { node: u8, term_pick: u8 },
    /// A client write stamped with an already-issued term — possibly
    /// stale, possibly newer than the receiving node has seen.
    Write { node: u8, term_pick: u8 },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        (0u8..NODES as u8).prop_map(|node| Op::Promote { node }),
        (0u8..NODES as u8, any::<u8>())
            .prop_map(|(node, term_pick)| Op::Demote { node, term_pick }),
        (0u8..NODES as u8, any::<u8>()).prop_map(|(node, term_pick)| Op::Write { node, term_pick }),
    ];
    proptest::collection::vec(op, 1..48)
}

fn put(term: u64) -> Request {
    Request::PutOnline {
        group: "user".into(),
        entity: "u1".into(),
        values: vec![("score".into(), Value::Float(1.0))],
        term,
    }
}

fn is_ack(response: &Response) -> bool {
    matches!(response, Response::PutAck { .. })
}

/// The `current_term=N` a typed refusal must carry.
fn refused_term(response: &Response) -> Option<u64> {
    match response {
        Response::Error {
            code: ErrorCode::NotLeader,
            message,
        } => message.strip_prefix("current_term=")?.parse().ok(),
        _ => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn interleaved_promotions_and_stale_writes_never_double_ack(ops in arb_ops()) {
        let nodes = build_nodes();
        let mut model: Vec<ModelNode> = (0..NODES)
            .map(|i| ModelNode {
                term: if i == 0 { 1 } else { 0 },
                leader: i == 0,
                promotable: i != 0,
                applied: 0,
            })
            .collect();
        // Term 1 was issued to node 0 at startup; every promotion issues
        // the next term to exactly one node.
        let mut owner: Vec<usize> = vec![usize::MAX, 0];

        for op in ops {
            match op {
                Op::Promote { node } => {
                    let n = node as usize;
                    let term = owner.len() as u64;
                    owner.push(n);
                    let response = nodes[n]
                        .engine
                        .handle(&Request::Promote { shard: 0, term }, 0, false);
                    // A fresh term always exceeds the node's: the node
                    // re-affirms (sitting leader), promotes via its hook,
                    // or — fenced node 0, which has no hook — refuses.
                    let m = &mut model[n];
                    if m.leader || m.promotable {
                        prop_assert!(is_ack(&response), "promote to t{term} refused: {response:?}");
                        m.leader = true;
                        m.term = term;
                    } else {
                        prop_assert!(!is_ack(&response), "unpromotable node acked t{term}");
                    }
                }
                Op::Demote { node, term_pick } => {
                    let n = node as usize;
                    let term = pick_term(&owner, term_pick);
                    let response = nodes[n]
                        .engine
                        .handle(&Request::Demote { shard: 0, term }, 0, false);
                    let m = &mut model[n];
                    if term < m.term {
                        // Stale fence: refused, node untouched.
                        prop_assert_eq!(refused_term(&response), Some(m.term));
                    } else {
                        prop_assert!(is_ack(&response), "fence at t{term} refused: {response:?}");
                        m.term = term;
                        m.leader = false;
                    }
                }
                Op::Write { node, term_pick } => {
                    let n = node as usize;
                    let term = pick_term(&owner, term_pick);
                    let response = nodes[n].engine.handle(&put(term), 0, false);
                    let m = &mut model[n];
                    let acked = if term > m.term {
                        // Fence-on-contact: proof of a newer promotion.
                        m.term = term;
                        m.leader = false;
                        false
                    } else {
                        m.leader && term == m.term
                    };
                    if acked {
                        prop_assert!(is_ack(&response), "live write at t{term} refused: {response:?}");
                        m.applied += 1;
                        // THE safety property: an acknowledged write at
                        // term t only ever comes from t's assigned owner.
                        prop_assert_eq!(
                            owner[term as usize], n,
                            "double-ack: node {} acked term {} owned by node {}",
                            n, term, owner[term as usize]
                        );
                    } else {
                        prop_assert_eq!(
                            refused_term(&response),
                            Some(m.term),
                            "stale write at t{} not refused with the node's term",
                            term
                        );
                    }
                }
            }
            // Engine and model agree node-by-node after every step, and
            // terms never regress (the engine's term equals the model's,
            // which only ever increases).
            for (n, m) in model.iter().enumerate() {
                prop_assert_eq!(nodes[n].state.current_term(), m.term);
                prop_assert_eq!(nodes[n].state.is_leader(), m.leader);
                prop_assert_eq!(
                    nodes[n].counter.applied.load(Ordering::SeqCst),
                    m.applied,
                    "node {} applied a write the model says was refused",
                    n
                );
            }
        }
    }
}

/// Resolve a generated pick onto the issued-term list (1..=max issued).
fn pick_term(owner: &[usize], pick: u8) -> u64 {
    1 + (pick as u64) % (owner.len() as u64 - 1)
}
