//! Point-in-time (PIT) joins — "time based joins" over date-partitioned
//! features (paper §2.2.2).
//!
//! A training row for a label event at time *t* must only see feature values
//! materialized **at or before** *t*; joining the latest value instead leaks
//! future information, inflates offline accuracy, and collapses on
//! deployment. [`point_in_time_join`] implements the correct join;
//! [`naive_latest_join`] implements the leaky baseline so experiment **E2**
//! can measure the damage.

use fstore_common::hash::FxHashMap;
use fstore_common::{
    Duration, EntityKey, FieldDef, FsError, Result, Schema, Timestamp, Value, ValueType,
};
use fstore_storage::{OfflineStore, ScanRequest};

/// A labeled event to build a training row for.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelEvent {
    pub entity: EntityKey,
    pub ts: Timestamp,
    pub label: Value,
}

impl LabelEvent {
    pub fn new(entity: impl Into<EntityKey>, ts: Timestamp, label: impl Into<Value>) -> Self {
        LabelEvent {
            entity: entity.into(),
            ts,
            label: label.into(),
        }
    }
}

/// Where to find one feature's history in the offline store.
///
/// Materialized features follow the `feat__<name>_v<n>(entity, ts, value)`
/// convention ([`crate::materialize::feature_log_schema`]); this struct also
/// lets PIT joins run over arbitrary tables.
#[derive(Debug, Clone)]
pub struct PitFeature {
    /// Name the feature column gets in the training set.
    pub feature: String,
    pub table: String,
    pub entity_column: String,
    pub time_column: String,
    pub value_column: String,
    /// Feature values older than this at label time join as NULL
    /// (`None` = no bound).
    pub max_age: Option<Duration>,
}

impl PitFeature {
    /// Convention-based accessor for a materialized feature log table.
    pub fn materialized(feature: &str, version: u32) -> Self {
        PitFeature {
            feature: feature.to_string(),
            table: format!("feat__{feature}_v{version}"),
            entity_column: "entity".into(),
            time_column: "ts".into(),
            value_column: "value".into(),
            max_age: None,
        }
    }

    pub fn with_max_age(mut self, age: Duration) -> Self {
        self.max_age = Some(age);
        self
    }
}

/// A materialized training set: `entity, ts, <features…>, label`.
#[derive(Debug, Clone)]
pub struct TrainingSet {
    pub schema: Schema,
    pub rows: Vec<Vec<Value>>,
    /// Per-feature count of label rows that found no eligible value.
    pub misses: Vec<(String, usize)>,
}

impl TrainingSet {
    /// Feature matrix (columns between entity/ts and label) as f64 with
    /// NULLs mapped to `null_fill` — the hand-off format to `fstore-models`.
    pub fn feature_matrix(&self, null_fill: f64) -> (Vec<Vec<f64>>, Vec<Value>) {
        let k = self.schema.len();
        let mut xs = Vec::with_capacity(self.rows.len());
        let mut ys = Vec::with_capacity(self.rows.len());
        for row in &self.rows {
            xs.push(
                row[2..k - 1]
                    .iter()
                    .map(|v| v.as_f64().unwrap_or(null_fill))
                    .collect::<Vec<f64>>(),
            );
            ys.push(row[k - 1].clone());
        }
        (xs, ys)
    }
}

/// Per-entity feature history sorted by time for binary search.
struct FeatureHistory {
    by_entity: FxHashMap<String, Vec<(Timestamp, Value)>>,
}

fn load_history(offline: &OfflineStore, feat: &PitFeature) -> Result<FeatureHistory> {
    let scan = offline.scan(
        &feat.table,
        &ScanRequest::all().project(&[&feat.entity_column, &feat.time_column, &feat.value_column]),
    )?;
    let mut by_entity: FxHashMap<String, Vec<(Timestamp, Value)>> = FxHashMap::default();
    for row in scan.rows {
        let [entity, ts, value]: [Value; 3] =
            row.try_into().expect("projection guarantees arity 3");
        let (Value::Str(e), Value::Timestamp(t)) = (&entity, &ts) else {
            return Err(FsError::Plan(format!(
                "PIT feature `{}`: entity/time columns must be Str/Timestamp",
                feat.feature
            )));
        };
        by_entity.entry(e.clone()).or_default().push((*t, value));
    }
    for hist in by_entity.values_mut() {
        hist.sort_by_key(|(t, _)| *t);
    }
    Ok(FeatureHistory { by_entity })
}

impl FeatureHistory {
    /// Latest value at or before `t` (respecting `max_age`).
    fn value_as_of(&self, entity: &str, t: Timestamp, max_age: Option<Duration>) -> Option<&Value> {
        let hist = self.by_entity.get(entity)?;
        let idx = hist.partition_point(|(ht, _)| *ht <= t);
        if idx == 0 {
            return None;
        }
        let (ht, v) = &hist[idx - 1];
        if let Some(age) = max_age {
            if t - *ht > age {
                return None;
            }
        }
        Some(v)
    }

    /// Latest value overall — the leaky baseline.
    fn latest(&self, entity: &str) -> Option<&Value> {
        self.by_entity
            .get(entity)
            .and_then(|h| h.last())
            .map(|(_, v)| v)
    }
}

fn training_schema(features: &[PitFeature]) -> Result<Schema> {
    let mut fields = vec![
        FieldDef::not_null("entity", ValueType::Str),
        FieldDef::not_null("ts", ValueType::Timestamp),
    ];
    for f in features {
        fields.push(FieldDef::new(f.feature.clone(), ValueType::Float));
    }
    fields.push(FieldDef::new("label", ValueType::Float));
    Schema::new(fields)
}

fn join_impl(
    offline: &OfflineStore,
    labels: &[LabelEvent],
    features: &[PitFeature],
    point_in_time: bool,
) -> Result<TrainingSet> {
    if features.is_empty() {
        return Err(FsError::InvalidArgument(
            "PIT join needs at least one feature".into(),
        ));
    }
    let schema = training_schema(features)?;
    let histories: Vec<FeatureHistory> = features
        .iter()
        .map(|f| load_history(offline, f))
        .collect::<Result<_>>()?;

    let mut rows = Vec::with_capacity(labels.len());
    let mut misses = vec![0usize; features.len()];
    for label in labels {
        let mut row = Vec::with_capacity(schema.len());
        row.push(Value::Str(label.entity.as_str().to_string()));
        row.push(Value::Timestamp(label.ts));
        for (i, (feat, hist)) in features.iter().zip(&histories).enumerate() {
            let v = if point_in_time {
                hist.value_as_of(label.entity.as_str(), label.ts, feat.max_age)
            } else {
                hist.latest(label.entity.as_str())
            };
            match v {
                Some(v) => row.push(v.clone()),
                None => {
                    misses[i] += 1;
                    row.push(Value::Null);
                }
            }
        }
        row.push(label.label.clone());
        rows.push(row);
    }
    let misses = features
        .iter()
        .map(|f| f.feature.clone())
        .zip(misses)
        .collect::<Vec<(String, usize)>>();
    Ok(TrainingSet {
        schema,
        rows,
        misses,
    })
}

/// Leakage-free training set: each label row joins the latest feature value
/// at or before the label timestamp.
pub fn point_in_time_join(
    offline: &OfflineStore,
    labels: &[LabelEvent],
    features: &[PitFeature],
) -> Result<TrainingSet> {
    join_impl(offline, labels, features, true)
}

/// The leaky baseline: joins the latest feature value regardless of the
/// label timestamp. Exists so E2 can quantify the leakage it causes; never
/// use it to train a real model.
pub fn naive_latest_join(
    offline: &OfflineStore,
    labels: &[LabelEvent],
    features: &[PitFeature],
) -> Result<TrainingSet> {
    join_impl(offline, labels, features, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materialize::feature_log_schema;
    use fstore_storage::TableConfig;

    fn ms(x: i64) -> Timestamp {
        Timestamp::millis(x)
    }

    /// Build `feat__score_v1` with a history of (entity, ts, value).
    fn offline_with_history(rows: &[(&str, i64, f64)]) -> OfflineStore {
        let mut off = OfflineStore::new();
        off.create_table(
            "feat__score_v1",
            TableConfig::new(feature_log_schema(ValueType::Float)).with_time_column("ts"),
        )
        .unwrap();
        for (e, t, v) in rows {
            off.append(
                "feat__score_v1",
                &[Value::from(*e), Value::Timestamp(ms(*t)), Value::Float(*v)],
            )
            .unwrap();
        }
        off
    }

    #[test]
    fn pit_join_picks_value_at_or_before_label() {
        let off = offline_with_history(&[("u1", 100, 1.0), ("u1", 200, 2.0), ("u1", 300, 3.0)]);
        let labels = vec![
            LabelEvent::new("u1", ms(250), 1.0),
            LabelEvent::new("u1", ms(200), 0.0),
            LabelEvent::new("u1", ms(50), 1.0),
        ];
        let ts =
            point_in_time_join(&off, &labels, &[PitFeature::materialized("score", 1)]).unwrap();
        assert_eq!(
            ts.rows[0][2],
            Value::Float(2.0),
            "value at 200 for label at 250"
        );
        assert_eq!(ts.rows[1][2], Value::Float(2.0), "ties are inclusive");
        assert_eq!(ts.rows[2][2], Value::Null, "no history before 50");
        assert_eq!(ts.misses, vec![("score".to_string(), 1)]);
    }

    #[test]
    fn naive_join_leaks_future_values() {
        let off = offline_with_history(&[("u1", 100, 1.0), ("u1", 900, 9.0)]);
        let labels = vec![LabelEvent::new("u1", ms(150), 1.0)];
        let feat = [PitFeature::materialized("score", 1)];
        let pit = point_in_time_join(&off, &labels, &feat).unwrap();
        let naive = naive_latest_join(&off, &labels, &feat).unwrap();
        assert_eq!(pit.rows[0][2], Value::Float(1.0));
        assert_eq!(
            naive.rows[0][2],
            Value::Float(9.0),
            "naive join sees the future"
        );
    }

    #[test]
    fn max_age_nulls_stale_features() {
        let off = offline_with_history(&[("u1", 100, 1.0)]);
        let labels = vec![LabelEvent::new("u1", ms(100 + 5_000), 1.0)];
        let fresh_only =
            [PitFeature::materialized("score", 1).with_max_age(Duration::millis(1_000))];
        let ts = point_in_time_join(&off, &labels, &fresh_only).unwrap();
        assert_eq!(ts.rows[0][2], Value::Null);
        let lenient = [PitFeature::materialized("score", 1).with_max_age(Duration::millis(10_000))];
        let ts = point_in_time_join(&off, &labels, &lenient).unwrap();
        assert_eq!(ts.rows[0][2], Value::Float(1.0));
    }

    #[test]
    fn unknown_entities_join_null() {
        let off = offline_with_history(&[("u1", 100, 1.0)]);
        let labels = vec![LabelEvent::new("stranger", ms(500), 0.0)];
        let ts =
            point_in_time_join(&off, &labels, &[PitFeature::materialized("score", 1)]).unwrap();
        assert_eq!(ts.rows[0][2], Value::Null);
    }

    #[test]
    fn multiple_features_and_matrix_export() {
        let mut off = offline_with_history(&[("u1", 100, 1.0)]);
        off.create_table(
            "feat__other_v1",
            TableConfig::new(feature_log_schema(ValueType::Float)).with_time_column("ts"),
        )
        .unwrap();
        off.append(
            "feat__other_v1",
            &[
                Value::from("u1"),
                Value::Timestamp(ms(100)),
                Value::Float(7.0),
            ],
        )
        .unwrap();
        let labels = vec![
            LabelEvent::new("u1", ms(200), 1.0),
            LabelEvent::new("u2", ms(200), 0.0),
        ];
        let ts = point_in_time_join(
            &off,
            &labels,
            &[
                PitFeature::materialized("score", 1),
                PitFeature::materialized("other", 1),
            ],
        )
        .unwrap();
        assert_eq!(ts.schema.len(), 5);
        let (xs, ys) = ts.feature_matrix(-1.0);
        assert_eq!(xs, vec![vec![1.0, 7.0], vec![-1.0, -1.0]]);
        assert_eq!(ys, vec![Value::Float(1.0), Value::Float(0.0)]);
    }

    #[test]
    fn empty_features_rejected() {
        let off = offline_with_history(&[]);
        assert!(point_in_time_join(&off, &[], &[]).is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Invariant: every joined feature value's timestamp is <= the
            /// label timestamp (no leakage), verified against the history.
            #[test]
            fn no_future_values(
                history in proptest::collection::vec((0i64..1000, -100f64..100.0), 1..50),
                label_times in proptest::collection::vec(0i64..1000, 1..20),
            ) {
                let rows: Vec<(&str, i64, f64)> =
                    history.iter().map(|(t, v)| ("u", *t, *v)).collect();
                let off = offline_with_history(&rows);
                let labels: Vec<LabelEvent> =
                    label_times.iter().map(|&t| LabelEvent::new("u", ms(t), 0.0)).collect();
                let ts = point_in_time_join(
                    &off, &labels, &[PitFeature::materialized("score", 1)]).unwrap();

                // reconstruct: for each label, expected = value with max ts <= label ts
                let mut hist = history.clone();
                hist.sort_by_key(|(t, _)| *t);
                for (row, &lt) in ts.rows.iter().zip(&label_times) {
                    let expected = hist.iter().rev().find(|(t, _)| *t <= lt)
                        .map(|(_, v)| Value::Float(*v)).unwrap_or(Value::Null);
                    // ties in ts: the store keeps append order; accept any
                    // value whose timestamp equals the winning timestamp.
                    if let Value::Float(_) = expected {
                        let win_t = hist.iter().rev().find(|(t, _)| *t <= lt).unwrap().0;
                        let candidates: Vec<Value> = hist.iter()
                            .filter(|(t, _)| *t == win_t)
                            .map(|(_, v)| Value::Float(*v)).collect();
                        prop_assert!(candidates.contains(&row[2]),
                            "label@{lt}: got {:?}, candidates {:?}", row[2], candidates);
                    } else {
                        prop_assert_eq!(&row[2], &expected);
                    }
                }
            }
        }
    }
}
