//! Feature-quality metrics (paper §2.2.2: "FSs measure feature freshness,
//! null counts, and mutual information across features") and the detectors
//! experiment **E4** exercises: null spikes, frozen feeds, and redundant
//! (near-duplicate) features.

use fstore_common::stats::{
    discretize_equal_width, exact_quantile, normalized_mutual_information, DiscretizeSpec,
    OnlineMoments,
};
use fstore_common::{Duration, FsError, Result, Timestamp, Value};
use fstore_storage::{OfflineStore, OnlineStore, ScanRequest};

/// Batch profile of one feature/column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnProfile {
    pub name: String,
    pub rows: usize,
    pub nulls: usize,
    pub mean: Option<f64>,
    pub std_dev: Option<f64>,
    pub min: Option<f64>,
    pub max: Option<f64>,
    pub p50: Option<f64>,
    pub p95: Option<f64>,
}

impl ColumnProfile {
    pub fn null_rate(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.nulls as f64 / self.rows as f64
        }
    }

    /// Profile a column of an offline table (numeric stats skip non-numeric
    /// values; null counting covers everything).
    pub fn of_column(offline: &OfflineStore, table: &str, column: &str) -> Result<ColumnProfile> {
        let values = offline.column_values(table, column, &ScanRequest::all())?;
        Ok(Self::of_values(column, &values))
    }

    /// Profile an in-memory column.
    pub fn of_values(name: &str, values: &[Value]) -> ColumnProfile {
        let nulls = values.iter().filter(|v| v.is_null()).count();
        let nums: Vec<f64> = values.iter().filter_map(Value::as_f64).collect();
        let m: OnlineMoments = nums.iter().copied().collect();
        let have = m.count() > 0;
        ColumnProfile {
            name: name.to_string(),
            rows: values.len(),
            nulls,
            mean: have.then(|| m.mean()),
            std_dev: have.then(|| m.std_dev()),
            min: m.min(),
            max: m.max(),
            p50: exact_quantile(&nums, 0.5),
            p95: exact_quantile(&nums, 0.95),
        }
    }
}

/// A detected feature-quality problem.
#[derive(Debug, Clone, PartialEq)]
pub enum QualityIssue {
    /// Null rate jumped relative to the reference profile.
    NullSpike {
        feature: String,
        reference_rate: f64,
        live_rate: f64,
    },
    /// Online value is older than `tolerance × cadence`.
    FrozenFeed {
        feature: String,
        age: Duration,
        cadence: Duration,
    },
    /// Two features are near-duplicates (high normalized MI).
    RedundantPair { a: String, b: String, nmi: f64 },
}

/// Configurable thresholds for the report.
#[derive(Debug, Clone, Copy)]
pub struct QualityThresholds {
    /// Absolute null-rate increase that trips [`QualityIssue::NullSpike`].
    pub null_rate_jump: f64,
    /// Multiple of the cadence after which a feed counts as frozen.
    pub freshness_tolerance: f64,
    /// NMI above which a feature pair is reported redundant.
    pub redundancy_nmi: f64,
}

impl Default for QualityThresholds {
    fn default() -> Self {
        QualityThresholds {
            null_rate_jump: 0.10,
            freshness_tolerance: 3.0,
            redundancy_nmi: 0.95,
        }
    }
}

/// The feature-quality report: profiles + detected issues.
#[derive(Debug, Clone, Default)]
pub struct FeatureQualityReport {
    pub profiles: Vec<ColumnProfile>,
    pub issues: Vec<QualityIssue>,
}

impl FeatureQualityReport {
    /// Compare live profiles against reference profiles (same feature
    /// names) and flag null spikes.
    pub fn check_null_spikes(
        reference: &[ColumnProfile],
        live: &[ColumnProfile],
        thresholds: &QualityThresholds,
        out: &mut Vec<QualityIssue>,
    ) {
        for live_p in live {
            if let Some(ref_p) = reference.iter().find(|p| p.name == live_p.name) {
                let (r, l) = (ref_p.null_rate(), live_p.null_rate());
                if l - r > thresholds.null_rate_jump {
                    out.push(QualityIssue::NullSpike {
                        feature: live_p.name.clone(),
                        reference_rate: r,
                        live_rate: l,
                    });
                }
            }
        }
    }

    /// Scan an online group for entries older than `tolerance × cadence`.
    pub fn check_frozen_feeds(
        online: &OnlineStore,
        group: &str,
        features: &[(&str, Duration)],
        now: Timestamp,
        thresholds: &QualityThresholds,
        out: &mut Vec<QualityIssue>,
    ) {
        for (feature, cadence) in features {
            let snap = online.feature_snapshot(group, feature);
            if snap.is_empty() {
                continue;
            }
            // worst-case (oldest) entry decides
            let oldest = snap.iter().map(|(_, e)| e.age(now)).max().unwrap();
            let limit = (cadence.as_millis() as f64 * thresholds.freshness_tolerance) as i64;
            if oldest.as_millis() > limit {
                out.push(QualityIssue::FrozenFeed {
                    feature: feature.to_string(),
                    age: oldest,
                    cadence: *cadence,
                });
            }
        }
    }

    /// Pairwise NMI over aligned numeric columns; pairs above the threshold
    /// are reported redundant. Returns the full matrix for inspection.
    pub fn check_redundancy(
        columns: &[(String, Vec<f64>)],
        thresholds: &QualityThresholds,
        out: &mut Vec<QualityIssue>,
    ) -> Result<Vec<Vec<f64>>> {
        let n = columns.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let len = columns[0].1.len();
        if columns.iter().any(|(_, c)| c.len() != len) {
            return Err(FsError::InvalidArgument(
                "redundancy check needs aligned columns".into(),
            ));
        }
        let spec = DiscretizeSpec::default();
        let discretized: Vec<Vec<usize>> = columns
            .iter()
            .map(|(_, c)| discretize_equal_width(c, spec))
            .collect::<Result<_>>()?;
        let mut matrix = vec![vec![0.0; n]; n];
        for i in 0..n {
            matrix[i][i] = 1.0;
            for j in i + 1..n {
                let nmi = normalized_mutual_information(&discretized[i], &discretized[j])?;
                matrix[i][j] = nmi;
                matrix[j][i] = nmi;
                if nmi > thresholds.redundancy_nmi {
                    out.push(QualityIssue::RedundantPair {
                        a: columns[i].0.clone(),
                        b: columns[j].0.clone(),
                        nmi,
                    });
                }
            }
        }
        Ok(matrix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fstore_common::EntityKey;

    fn profile(name: &str, rows: usize, nulls: usize) -> ColumnProfile {
        let mut values: Vec<Value> = (0..rows - nulls).map(|i| Value::Float(i as f64)).collect();
        values.extend(std::iter::repeat_n(Value::Null, nulls));
        ColumnProfile::of_values(name, &values)
    }

    #[test]
    fn profile_stats() {
        let values: Vec<Value> = vec![
            Value::Float(1.0),
            Value::Float(3.0),
            Value::Null,
            Value::from("junk"),
        ];
        let p = ColumnProfile::of_values("f", &values);
        assert_eq!(p.rows, 4);
        assert_eq!(p.nulls, 1);
        assert_eq!(p.mean, Some(2.0));
        assert_eq!(p.min, Some(1.0));
        assert_eq!(p.max, Some(3.0));
        assert!((p.null_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_profile() {
        let p = ColumnProfile::of_values("f", &[]);
        assert_eq!(p.rows, 0);
        assert_eq!(p.null_rate(), 0.0);
        assert_eq!(p.mean, None);
        assert_eq!(p.p95, None);
    }

    #[test]
    fn null_spike_detection() {
        let reference = vec![profile("f", 100, 2)];
        let quiet = vec![profile("f", 100, 5)];
        let spiking = vec![profile("f", 100, 40)];
        let th = QualityThresholds::default();
        let mut issues = Vec::new();
        FeatureQualityReport::check_null_spikes(&reference, &quiet, &th, &mut issues);
        assert!(issues.is_empty());
        FeatureQualityReport::check_null_spikes(&reference, &spiking, &th, &mut issues);
        assert_eq!(issues.len(), 1);
        match &issues[0] {
            QualityIssue::NullSpike {
                feature, live_rate, ..
            } => {
                assert_eq!(feature, "f");
                assert!((live_rate - 0.4).abs() < 1e-12);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn frozen_feed_detection() {
        let online = OnlineStore::default();
        let now = Timestamp::millis(10 * 3_600_000);
        online.put(
            "g",
            &EntityKey::new("u1"),
            "fresh",
            Value::Int(1),
            now - Duration::hours(1),
        );
        online.put(
            "g",
            &EntityKey::new("u1"),
            "frozen",
            Value::Int(1),
            now - Duration::hours(9),
        );
        let mut issues = Vec::new();
        FeatureQualityReport::check_frozen_feeds(
            &online,
            "g",
            &[
                ("fresh", Duration::hours(1)),
                ("frozen", Duration::hours(1)),
                ("absent", Duration::hours(1)),
            ],
            now,
            &QualityThresholds::default(),
            &mut issues,
        );
        assert_eq!(issues.len(), 1);
        assert!(
            matches!(&issues[0], QualityIssue::FrozenFeed { feature, .. } if feature == "frozen")
        );
    }

    #[test]
    fn redundancy_detection() {
        let a: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let dup: Vec<f64> = a.iter().map(|x| x * 2.0 + 1.0).collect(); // perfect copy
        let noise: Vec<f64> = (0..500).map(|i| ((i * 7919) % 500) as f64).collect();
        let mut issues = Vec::new();
        let m = FeatureQualityReport::check_redundancy(
            &[
                ("a".into(), a),
                ("dup".into(), dup),
                ("noise".into(), noise),
            ],
            &QualityThresholds::default(),
            &mut issues,
        )
        .unwrap();
        assert_eq!(issues.len(), 1);
        assert!(
            matches!(&issues[0], QualityIssue::RedundantPair { a, b, .. } if a == "a" && b == "dup")
        );
        assert!(m[0][1] > 0.95);
        assert!(m[0][2] < 0.5);
        assert_eq!(m[1][0], m[0][1], "matrix is symmetric");
    }

    #[test]
    fn redundancy_validates_alignment() {
        let mut issues = Vec::new();
        assert!(FeatureQualityReport::check_redundancy(
            &[("a".into(), vec![1.0]), ("b".into(), vec![1.0, 2.0])],
            &QualityThresholds::default(),
            &mut issues,
        )
        .is_err());
    }
}
