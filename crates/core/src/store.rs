//! The [`FeatureStore`] facade: one object wiring the registry, the dual
//! datastore, the materialization scheduler, serving, and the model store —
//! the system of Figure 1, top row.

use crate::materialize::{MaterializationRun, MaterializationScheduler, Materializer};
use crate::modelstore::ModelStore;
use crate::pit::{point_in_time_join, LabelEvent, PitFeature, TrainingSet};
use crate::quality::ColumnProfile;
use crate::registry::{FeatureDef, FeatureRegistry, FeatureSpec};
use crate::serving::FeatureServer;
use fstore_common::{Duration, ReadEpoch, Result, SimClock, Timestamp, Value};
use fstore_storage::{OfflineDb, OfflineStore, OnlineStore, TableConfig};
use std::sync::Arc;

/// An embedded feature store instance driven by a simulated clock.
///
/// The offline side is epoch-versioned: every ingest, materialization, and
/// backfill publishes a new immutable snapshot through [`OfflineDb`], and
/// readers ([`FeatureStore::training_set`], [`FeatureStore::profile`], any
/// holder of [`FeatureStore::offline_snapshot`]) run lock-free against the
/// snapshot they resolved.
pub struct FeatureStore {
    offline: OfflineDb,
    online: Arc<OnlineStore>,
    registry: FeatureRegistry,
    models: ModelStore,
    scheduler: MaterializationScheduler,
    clock: SimClock,
}

impl FeatureStore {
    pub fn new(start: Timestamp) -> Self {
        FeatureStore {
            offline: OfflineDb::new(),
            online: Arc::new(OnlineStore::default()),
            registry: FeatureRegistry::new(),
            models: ModelStore::new(),
            scheduler: MaterializationScheduler::new(),
            clock: SimClock::new(start),
        }
    }

    // ---- clock ---------------------------------------------------------

    pub fn now(&self) -> Timestamp {
        self.clock.now()
    }

    /// Advance the clock and run any materialization jobs that became due.
    pub fn advance(&mut self, d: Duration) -> Result<Vec<MaterializationRun>> {
        self.clock.advance(d);
        self.tick()
    }

    /// Run due materialization jobs at the current instant. Each job
    /// computes from a lock-free snapshot and takes the writer lock only to
    /// publish its results.
    pub fn tick(&mut self) -> Result<Vec<MaterializationRun>> {
        self.scheduler
            .tick_db(&self.offline, &self.online, self.clock.now())
    }

    // ---- raw data ------------------------------------------------------

    /// Create a raw source table in the offline store.
    pub fn create_source_table(&self, name: &str, config: TableConfig) -> Result<()> {
        self.offline.write(|off| off.create_table(name, config))
    }

    /// Ingest raw rows into a source table (one snapshot publication per
    /// batch: readers see either none or all of these rows).
    pub fn ingest(&self, table: &str, rows: &[Vec<Value>]) -> Result<()> {
        self.offline.write(|off| off.append_all(table, rows))
    }

    /// The shared offline handle (streaming pipelines and serving layers
    /// attach to this). Readers should prefer
    /// [`FeatureStore::offline_snapshot`].
    pub fn offline(&self) -> OfflineDb {
        self.offline.clone()
    }

    /// Resolve the current immutable offline snapshot; scans, joins, and
    /// profiles against it never block (and are never blocked by) writers.
    pub fn offline_snapshot(&self) -> Arc<OfflineStore> {
        self.offline.snapshot()
    }

    /// The offline store's current publication epoch.
    pub fn read_epoch(&self) -> ReadEpoch {
        self.offline.epoch()
    }

    pub fn online(&self) -> Arc<OnlineStore> {
        Arc::clone(&self.online)
    }

    // ---- features ------------------------------------------------------

    /// Publish a feature and schedule its materialization job.
    pub fn publish(&mut self, spec: FeatureSpec) -> Result<FeatureDef> {
        let snapshot = self.offline.snapshot();
        let def = self.registry.publish(spec, &snapshot, self.clock.now())?;
        self.scheduler.schedule(def.clone());
        Ok(def)
    }

    /// Materialize one feature immediately (out of cadence). Computes from a
    /// snapshot; the offline writer lock is held only to publish.
    pub fn materialize_now(&mut self, feature: &str) -> Result<MaterializationRun> {
        let def = self.registry.get(feature)?.clone();
        Materializer::run_db(&def, &self.offline, &self.online, self.clock.now())
    }

    /// Backfill a newly published feature's history from `from` to the
    /// current instant at the feature's own cadence, so point-in-time joins
    /// against past label events find values. Each backfill step computes
    /// from a snapshot and locks only to publish, so concurrent readers
    /// interleave with the backfill instead of stalling behind it.
    pub fn backfill(&mut self, feature: &str, from: Timestamp) -> Result<Vec<MaterializationRun>> {
        let def = self.registry.get(feature)?.clone();
        Materializer::backfill_db(
            &def,
            &self.offline,
            &self.online,
            from,
            self.clock.now(),
            def.cadence,
        )
    }

    pub fn registry(&self) -> &FeatureRegistry {
        &self.registry
    }

    pub fn registry_mut(&mut self) -> &mut FeatureRegistry {
        &mut self.registry
    }

    // ---- serving -------------------------------------------------------

    /// A serving handle over this store's online side. Served vectors are
    /// stamped with the offline store's publication epoch at serve time.
    pub fn server(&self) -> FeatureServer {
        let db = self.offline.clone();
        FeatureServer::new(Arc::clone(&self.online)).with_epoch_source(Arc::new(move || db.epoch()))
    }

    // ---- training sets -------------------------------------------------

    /// Build a leakage-free training set for a registered feature set. Runs
    /// against one consistent snapshot, lock-free.
    pub fn training_set(&self, feature_set: &str, labels: &[LabelEvent]) -> Result<TrainingSet> {
        let defs = self.registry.resolve_set(feature_set)?;
        let feats: Vec<PitFeature> = defs
            .iter()
            .map(|d| PitFeature::materialized(&d.name, d.version))
            .collect();
        let snapshot = self.offline.snapshot();
        point_in_time_join(&snapshot, labels, &feats)
    }

    // ---- quality -------------------------------------------------------

    /// Batch profile of one column of an offline table (lock-free snapshot
    /// read).
    pub fn profile(&self, table: &str, column: &str) -> Result<ColumnProfile> {
        let snapshot = self.offline.snapshot();
        ColumnProfile::of_column(&snapshot, table, column)
    }

    // ---- models --------------------------------------------------------

    pub fn models(&self) -> &ModelStore {
        &self.models
    }

    pub fn models_mut(&mut self) -> &mut ModelStore {
        &mut self.models
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fstore_common::{EntityKey, Schema, ValueType};
    use fstore_query::AggFunc;

    fn trip_row(user: &str, t: Timestamp, fare: f64) -> Vec<Value> {
        vec![Value::from(user), Value::Timestamp(t), Value::Float(fare)]
    }

    fn base_store() -> FeatureStore {
        let fs = FeatureStore::new(Timestamp::EPOCH);
        fs.create_source_table(
            "trips",
            TableConfig::new(Schema::of(&[
                ("user_id", ValueType::Str),
                ("ts", ValueType::Timestamp),
                ("fare", ValueType::Float),
            ]))
            .with_time_column("ts"),
        )
        .unwrap();
        fs
    }

    #[test]
    fn end_to_end_publish_materialize_serve() {
        let mut fs = base_store();
        fs.ingest(
            "trips",
            &[
                trip_row("u1", Timestamp::millis(1_000), 10.0),
                trip_row("u1", Timestamp::millis(2_000), 20.0),
                trip_row("u2", Timestamp::millis(1_500), 5.0),
            ],
        )
        .unwrap();
        fs.publish(
            FeatureSpec::new("avg_fare", "user_id", "trips", "fare")
                .aggregated(AggFunc::Avg, Duration::days(1))
                .cadence(Duration::hours(1)),
        )
        .unwrap();

        // first tick materializes immediately
        let runs = fs.advance(Duration::minutes(1)).unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].entities, 2);

        let v = fs
            .server()
            .serve("user_id", &EntityKey::new("u1"), &["avg_fare"], fs.now())
            .unwrap();
        assert_eq!(v.values[0], Value::Float(15.0));

        // within cadence: no rerun
        assert!(fs.advance(Duration::minutes(10)).unwrap().is_empty());
        // past cadence: reruns
        assert_eq!(fs.advance(Duration::hours(1)).unwrap().len(), 1);
    }

    #[test]
    fn training_set_via_feature_set() {
        let mut fs = base_store();
        fs.ingest("trips", &[trip_row("u1", Timestamp::millis(1_000), 10.0)])
            .unwrap();
        fs.publish(FeatureSpec::new("fare_last", "user_id", "trips", "fare"))
            .unwrap();
        fs.advance(Duration::minutes(1)).unwrap(); // materializes at t=60s
        let now = fs.now();
        fs.registry_mut()
            .register_set("s", &["fare_last"], now)
            .unwrap();

        let labels = vec![
            LabelEvent::new("u1", fs.now() + Duration::minutes(1), 1.0),
            LabelEvent::new("u1", Timestamp::millis(10), 0.0), // before materialization
        ];
        let ts = fs.training_set("s", &labels).unwrap();
        assert_eq!(ts.rows[0][2], Value::Float(10.0));
        assert_eq!(ts.rows[1][2], Value::Null, "no feature value existed yet");
    }

    #[test]
    fn materialize_now_is_out_of_cadence() {
        let mut fs = base_store();
        fs.ingest("trips", &[trip_row("u1", Timestamp::millis(100), 3.0)])
            .unwrap();
        fs.clock.advance(Duration::seconds(1)); // trips at t=100ms are now in the past
        fs.publish(FeatureSpec::new("f", "user_id", "trips", "fare * 10"))
            .unwrap();
        fs.scheduler.unschedule("f"); // isolate materialize_now from the scheduler
        let run = fs.materialize_now("f").unwrap();
        assert_eq!(run.entities, 1);
        let v = fs
            .server()
            .serve("user_id", &EntityKey::new("u1"), &["f"], fs.now())
            .unwrap();
        assert_eq!(v.values[0], Value::Float(30.0));
        assert!(fs.materialize_now("ghost").is_err());
    }

    #[test]
    fn profile_reads_offline_column() {
        let fs = base_store();
        fs.ingest(
            "trips",
            &[
                trip_row("u1", Timestamp::millis(1), 10.0),
                trip_row("u2", Timestamp::millis(2), 30.0),
            ],
        )
        .unwrap();
        let p = fs.profile("trips", "fare").unwrap();
        assert_eq!(p.rows, 2);
        assert_eq!(p.mean, Some(20.0));
        assert!(fs.profile("trips", "ghost").is_err());
    }

    #[test]
    fn backfill_through_facade() {
        let mut fs = base_store();
        fs.ingest(
            "trips",
            &[
                trip_row("u1", Timestamp::millis(1_000), 5.0),
                trip_row("u1", Timestamp::EPOCH + Duration::hours(3), 9.0),
            ],
        )
        .unwrap();
        fs.clock.advance(Duration::hours(6));
        fs.publish(FeatureSpec::new("f", "user_id", "trips", "fare").cadence(Duration::hours(2)))
            .unwrap();
        let runs = fs.backfill("f", Timestamp::EPOCH).unwrap();
        assert_eq!(runs.len(), 4, "0h, 2h, 4h, 6h");
        // history now answers PIT queries at hour 2 (only the 5.0 trip existed)
        let now = fs.now();
        fs.registry_mut().register_set("s", &["f"], now).unwrap();
        let ts = fs
            .training_set(
                "s",
                &[LabelEvent::new(
                    "u1",
                    Timestamp::EPOCH + Duration::hours(2),
                    1.0,
                )],
            )
            .unwrap();
        assert_eq!(ts.rows[0][2], Value::Float(5.0));
    }

    #[test]
    fn clock_is_monotonic_and_shared() {
        let mut fs = base_store();
        let t0 = fs.now();
        fs.advance(Duration::hours(2)).unwrap();
        assert_eq!(fs.now(), t0 + Duration::hours(2));
    }
}
