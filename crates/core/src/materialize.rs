//! Cadence-driven feature materialization (paper §2.2.1: "the FS
//! orchestrates the updates to the features based on the user-defined
//! cadence").
//!
//! A materialization run recomputes one feature from its offline source
//! as of "now", appends the fresh values to the feature's offline log table
//! (for training) and write-throughs to the online store (for serving).
//! The [`MaterializationScheduler`] runs due jobs as the simulated clock
//! advances, which is how models keep receiving up-to-date features while
//! data changes — the staleness story experiments E3/E4 measure.

use crate::registry::FeatureDef;
use fstore_common::hash::FxHashMap;
use fstore_common::{EntityKey, FieldDef, FsError, Result, Schema, Timestamp, Value, ValueType};
use fstore_query::Program;
use fstore_storage::{OfflineDb, OfflineStore, OnlineStore, ScanRequest, TableConfig};
use std::collections::BTreeMap;

/// Outcome of one materialization run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaterializationRun {
    pub feature: String,
    pub version: u32,
    pub ran_at: Timestamp,
    pub entities: usize,
    pub source_rows: usize,
}

/// Schema of the offline log table each feature materializes into.
pub fn feature_log_schema(value_type: ValueType) -> Schema {
    Schema::new(vec![
        FieldDef::not_null("entity", ValueType::Str),
        FieldDef::not_null("ts", ValueType::Timestamp),
        FieldDef::new("value", value_type),
    ])
    .expect("static schema is valid")
}

/// The computed (but not yet published) output of one materialization: one
/// value per entity, plus enough of the feature definition to publish it.
///
/// Splitting compute from publication is what lets the facade materialize
/// from a lock-free snapshot and take the offline writer lock only for the
/// append-and-publish step — see [`Materializer::run_db`].
#[derive(Debug, Clone)]
pub struct MaterializationPlan {
    def: FeatureDef,
    ran_at: Timestamp,
    source_rows: usize,
    /// `(entity, value)` in deterministic (entity-sorted) order.
    values: Vec<(String, Value)>,
}

impl MaterializationPlan {
    /// Publish the plan: write-through each value to the online store and
    /// append it to the feature's offline log table (created on first use).
    pub fn apply(
        &self,
        offline: &mut OfflineStore,
        online: &OnlineStore,
    ) -> Result<MaterializationRun> {
        let log_table = self.def.log_table();
        if !offline.has_table(&log_table) {
            offline.create_table(
                &log_table,
                TableConfig::new(feature_log_schema(self.def.value_type)).with_time_column("ts"),
            )?;
        }
        for (entity, value) in &self.values {
            online.put(
                self.def.online_group(),
                &EntityKey::new(entity.clone()),
                &self.def.name,
                value.clone(),
                self.ran_at,
            );
            offline.append(
                &log_table,
                &[
                    Value::Str(entity.clone()),
                    Value::Timestamp(self.ran_at),
                    value.clone(),
                ],
            )?;
        }
        Ok(MaterializationRun {
            feature: self.def.name.clone(),
            version: self.def.version,
            ran_at: self.ran_at,
            entities: self.values.len(),
            source_rows: self.source_rows,
        })
    }
}

/// Stateless executor of single materialization runs.
pub struct Materializer;

impl Materializer {
    /// Compute one materialization of `def` as of `now` from a read-only
    /// view of the offline store, without publishing anything.
    ///
    /// * Latest-row features: for each entity, evaluate the expression on
    ///   the most recent source row at or before `now`.
    /// * Aggregated features: evaluate the expression on every source row
    ///   in `(now - window, now]` and fold with the aggregate function.
    pub fn plan(
        def: &FeatureDef,
        offline: &OfflineStore,
        now: Timestamp,
    ) -> Result<MaterializationPlan> {
        let source_schema = offline.schema(&def.source_table)?.clone();
        let entity_idx = source_schema.index_of(&def.entity).ok_or_else(|| {
            FsError::Plan(format!(
                "entity column `{}` vanished from source",
                def.entity
            ))
        })?;
        let program = Program::compile(&def.expression, &source_schema)?;
        let agg = def.agg_func()?;

        // Pull the relevant source rows as of now.
        let mut req = ScanRequest::all().as_of(now);
        if let Some((_, window)) = &agg {
            let from = (now - *window).date();
            req = req.with_dates(from, now.date());
        }
        let scan = offline.scan(&def.source_table, &req)?;
        let time_idx = source_schema.index_of("ts");

        // Group rows by entity.
        let mut by_entity: FxHashMap<String, Vec<&Vec<Value>>> = FxHashMap::default();
        for row in &scan.rows {
            let key = match &row[entity_idx] {
                Value::Null => continue, // entity-less rows cannot materialize
                v => v.to_string(),
            };
            by_entity.entry(key).or_default().push(row);
        }

        // Deterministic output order.
        let by_entity: BTreeMap<String, Vec<&Vec<Value>>> = by_entity.into_iter().collect();
        let mut values = Vec::with_capacity(by_entity.len());
        for (entity, mut rows) in by_entity {
            let value = match &agg {
                Some((func, window)) => {
                    let cutoff = now - *window;
                    let mut acc = func.accumulator();
                    for row in &rows {
                        // date-range pruning is day-granular; apply the exact
                        // window bound here
                        if let Some(ti) = time_idx {
                            if let Some(ts) = row[ti].as_timestamp() {
                                if ts <= cutoff {
                                    continue;
                                }
                            }
                        }
                        acc.push(&program.eval(row)?);
                    }
                    acc.finish()
                }
                None => {
                    // latest row by time column (fall back to arrival order)
                    if let Some(ti) = time_idx {
                        rows.sort_by_key(|r| r[ti].as_timestamp());
                    }
                    match rows.last() {
                        Some(r) => program.eval(r)?,
                        None => Value::Null,
                    }
                }
            };
            values.push((entity, value));
        }

        Ok(MaterializationPlan {
            def: def.clone(),
            ran_at: now,
            source_rows: scan.rows.len(),
            values,
        })
    }

    /// Compute and publish in one call against an exclusively held store.
    pub fn run(
        def: &FeatureDef,
        offline: &mut OfflineStore,
        online: &OnlineStore,
        now: Timestamp,
    ) -> Result<MaterializationRun> {
        Materializer::plan(def, offline, now)?.apply(offline, online)
    }

    /// Run one materialization against a shared [`OfflineDb`]: the compute
    /// phase scans a lock-free snapshot; the writer lock is held only for
    /// the append-and-publish step. Concurrent readers are never blocked by
    /// the scan-and-evaluate work.
    pub fn run_db(
        def: &FeatureDef,
        offline: &OfflineDb,
        online: &OnlineStore,
        now: Timestamp,
    ) -> Result<MaterializationRun> {
        let plan = Materializer::plan(def, &offline.snapshot(), now)?;
        offline.write(|off| plan.apply(off, online))
    }
}

impl Materializer {
    /// Backfill a feature's history: run materializations at every instant
    /// in `[from, to]` stepped by `every`, as if the scheduler had been
    /// running all along. This is how a *newly published* feature gets a
    /// point-in-time joinable history (training sets need values "as of"
    /// label events that predate the feature's publication).
    ///
    /// Returns the runs executed, oldest first.
    pub fn backfill(
        def: &FeatureDef,
        offline: &mut OfflineStore,
        online: &OnlineStore,
        from: Timestamp,
        to: Timestamp,
        every: fstore_common::Duration,
    ) -> Result<Vec<MaterializationRun>> {
        check_backfill_range(from, to, every)?;
        let mut runs = Vec::new();
        let mut t = from;
        while t <= to {
            runs.push(Materializer::run(def, offline, online, t)?);
            t += every;
        }
        Ok(runs)
    }

    /// [`Materializer::backfill`] against a shared [`OfflineDb`]: each step
    /// plans from a fresh snapshot and locks only to publish, so readers can
    /// interleave with a long backfill instead of stalling behind it.
    pub fn backfill_db(
        def: &FeatureDef,
        offline: &OfflineDb,
        online: &OnlineStore,
        from: Timestamp,
        to: Timestamp,
        every: fstore_common::Duration,
    ) -> Result<Vec<MaterializationRun>> {
        check_backfill_range(from, to, every)?;
        let mut runs = Vec::new();
        let mut t = from;
        while t <= to {
            runs.push(Materializer::run_db(def, offline, online, t)?);
            t += every;
        }
        Ok(runs)
    }
}

fn check_backfill_range(
    from: Timestamp,
    to: Timestamp,
    every: fstore_common::Duration,
) -> Result<()> {
    if from > to {
        return Err(FsError::InvalidArgument(format!(
            "backfill range is empty ({} > {})",
            from.as_millis(),
            to.as_millis()
        )));
    }
    if !every.is_positive() {
        return Err(FsError::InvalidArgument(
            "backfill step must be positive".into(),
        ));
    }
    Ok(())
}

/// Tracks per-feature last-run times and executes due jobs on `tick`.
#[derive(Debug, Default)]
pub struct MaterializationScheduler {
    jobs: BTreeMap<String, ScheduledJob>,
}

#[derive(Debug)]
struct ScheduledJob {
    def: FeatureDef,
    last_run: Option<Timestamp>,
}

impl MaterializationScheduler {
    pub fn new() -> Self {
        MaterializationScheduler::default()
    }

    /// Register (or replace) the job for a feature definition.
    pub fn schedule(&mut self, def: FeatureDef) {
        self.jobs.insert(
            def.name.clone(),
            ScheduledJob {
                def,
                last_run: None,
            },
        );
    }

    pub fn unschedule(&mut self, feature: &str) -> bool {
        self.jobs.remove(feature).is_some()
    }

    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Last completed run time of a feature's job.
    pub fn last_run(&self, feature: &str) -> Option<Timestamp> {
        self.jobs.get(feature).and_then(|j| j.last_run)
    }

    /// Run every job whose cadence has elapsed (or that never ran). Returns
    /// the runs executed this tick, in feature-name order.
    pub fn tick(
        &mut self,
        offline: &mut OfflineStore,
        online: &OnlineStore,
        now: Timestamp,
    ) -> Result<Vec<MaterializationRun>> {
        let mut runs = Vec::new();
        for job in self.jobs.values_mut() {
            if Self::due(job, now) {
                runs.push(Materializer::run(&job.def, offline, online, now)?);
                job.last_run = Some(now);
            }
        }
        Ok(runs)
    }

    /// [`MaterializationScheduler::tick`] against a shared [`OfflineDb`]:
    /// each due job computes from a lock-free snapshot and takes the writer
    /// lock only to publish its results.
    pub fn tick_db(
        &mut self,
        offline: &OfflineDb,
        online: &OnlineStore,
        now: Timestamp,
    ) -> Result<Vec<MaterializationRun>> {
        let mut runs = Vec::new();
        for job in self.jobs.values_mut() {
            if Self::due(job, now) {
                runs.push(Materializer::run_db(&job.def, offline, online, now)?);
                job.last_run = Some(now);
            }
        }
        Ok(runs)
    }

    fn due(job: &ScheduledJob, now: Timestamp) -> bool {
        match job.last_run {
            None => true,
            Some(last) => now - last >= job.def.cadence,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{FeatureRegistry, FeatureSpec};
    use fstore_common::Duration;
    use fstore_query::AggFunc;

    fn setup() -> (OfflineStore, OnlineStore, FeatureRegistry) {
        let mut off = OfflineStore::new();
        off.create_table(
            "trips",
            TableConfig::new(Schema::of(&[
                ("user_id", ValueType::Str),
                ("ts", ValueType::Timestamp),
                ("fare", ValueType::Float),
            ]))
            .with_time_column("ts"),
        )
        .unwrap();
        (off, OnlineStore::default(), FeatureRegistry::new())
    }

    fn add_trip(off: &mut OfflineStore, user: &str, t: Timestamp, fare: f64) {
        off.append(
            "trips",
            &[Value::from(user), Value::Timestamp(t), Value::Float(fare)],
        )
        .unwrap();
    }

    #[test]
    fn latest_row_feature_materializes_latest_value() {
        let (mut off, online, mut reg) = setup();
        add_trip(&mut off, "u1", Timestamp::millis(1_000), 10.0);
        add_trip(&mut off, "u1", Timestamp::millis(5_000), 30.0);
        add_trip(&mut off, "u2", Timestamp::millis(2_000), 20.0);
        let def = reg
            .publish(
                FeatureSpec::new("last_fare", "user_id", "trips", "fare * 2"),
                &off,
                Timestamp::EPOCH,
            )
            .unwrap();

        let now = Timestamp::millis(10_000);
        let run = Materializer::run(&def, &mut off, &online, now).unwrap();
        assert_eq!(run.entities, 2);
        assert_eq!(run.source_rows, 3);

        let e = online
            .get("user_id", &EntityKey::new("u1"), "last_fare")
            .unwrap();
        assert_eq!(e.value, Value::Float(60.0));
        assert_eq!(e.written_at, now);
        let e2 = online
            .get("user_id", &EntityKey::new("u2"), "last_fare")
            .unwrap();
        assert_eq!(e2.value, Value::Float(40.0));

        // offline log got one row per entity
        assert_eq!(off.num_rows(&def.log_table()).unwrap(), 2);
    }

    #[test]
    fn as_of_excludes_future_rows() {
        let (mut off, online, mut reg) = setup();
        add_trip(&mut off, "u1", Timestamp::millis(1_000), 10.0);
        add_trip(&mut off, "u1", Timestamp::millis(99_000), 999.0);
        let def = reg
            .publish(
                FeatureSpec::new("f", "user_id", "trips", "fare"),
                &off,
                Timestamp::EPOCH,
            )
            .unwrap();
        Materializer::run(&def, &mut off, &online, Timestamp::millis(50_000)).unwrap();
        let e = online.get("user_id", &EntityKey::new("u1"), "f").unwrap();
        assert_eq!(e.value, Value::Float(10.0), "future row must not leak");
    }

    #[test]
    fn aggregated_feature_respects_window() {
        let (mut off, online, mut reg) = setup();
        // two old trips outside the window, two inside
        add_trip(&mut off, "u1", Timestamp::millis(1_000), 100.0);
        add_trip(&mut off, "u1", Timestamp::millis(2_000), 100.0);
        let day2 = Timestamp::millis(2 * 86_400_000);
        add_trip(&mut off, "u1", day2, 10.0);
        add_trip(&mut off, "u1", day2 + Duration::minutes(1), 20.0);
        let def = reg
            .publish(
                FeatureSpec::new("avg_fare_1d", "user_id", "trips", "fare")
                    .aggregated(AggFunc::Avg, Duration::days(1)),
                &off,
                Timestamp::EPOCH,
            )
            .unwrap();
        Materializer::run(&def, &mut off, &online, day2 + Duration::hours(1)).unwrap();
        let e = online
            .get("user_id", &EntityKey::new("u1"), "avg_fare_1d")
            .unwrap();
        assert_eq!(e.value, Value::Float(15.0));
    }

    #[test]
    fn null_entities_are_skipped() {
        let (mut off, online, mut reg) = setup();
        off.append(
            "trips",
            &[
                Value::Null,
                Value::Timestamp(Timestamp::millis(1)),
                Value::Float(5.0),
            ],
        )
        .unwrap();
        add_trip(&mut off, "u1", Timestamp::millis(2), 7.0);
        let def = reg
            .publish(
                FeatureSpec::new("f", "user_id", "trips", "fare"),
                &off,
                Timestamp::EPOCH,
            )
            .unwrap();
        let run = Materializer::run(&def, &mut off, &online, Timestamp::millis(10)).unwrap();
        assert_eq!(run.entities, 1);
    }

    #[test]
    fn scheduler_runs_on_cadence() {
        let (mut off, online, mut reg) = setup();
        add_trip(&mut off, "u1", Timestamp::millis(1), 5.0);
        let def = reg
            .publish(
                FeatureSpec::new("f", "user_id", "trips", "fare").cadence(Duration::hours(1)),
                &off,
                Timestamp::EPOCH,
            )
            .unwrap();
        let mut sched = MaterializationScheduler::new();
        sched.schedule(def);
        assert_eq!(sched.job_count(), 1);

        // first tick always runs
        let t0 = Timestamp::millis(10);
        assert_eq!(sched.tick(&mut off, &online, t0).unwrap().len(), 1);
        assert_eq!(sched.last_run("f"), Some(t0));
        // half an hour later: not due
        let t1 = t0 + Duration::minutes(30);
        assert!(sched.tick(&mut off, &online, t1).unwrap().is_empty());
        // one hour later: due again
        let t2 = t0 + Duration::hours(1);
        assert_eq!(sched.tick(&mut off, &online, t2).unwrap().len(), 1);
        assert_eq!(sched.last_run("f"), Some(t2));

        assert!(sched.unschedule("f"));
        assert!(!sched.unschedule("f"));
    }

    #[test]
    fn backfill_builds_pit_joinable_history() {
        let (mut off, online, mut reg) = setup();
        // trips across 3 days with rising fares
        for day in 0..3i64 {
            add_trip(
                &mut off,
                "u1",
                Timestamp::EPOCH + Duration::days(day) + Duration::hours(1),
                10.0 * (day + 1) as f64,
            );
        }
        let def = reg
            .publish(
                FeatureSpec::new("f", "user_id", "trips", "fare"),
                &off,
                Timestamp::EPOCH,
            )
            .unwrap();
        let runs = Materializer::backfill(
            &def,
            &mut off,
            &online,
            Timestamp::EPOCH + Duration::days(1),
            Timestamp::EPOCH + Duration::days(3),
            Duration::days(1),
        )
        .unwrap();
        assert_eq!(runs.len(), 3);
        assert_eq!(off.num_rows(&def.log_table()).unwrap(), 3);

        // PIT join against the backfilled history sees the right epoch
        let labels = vec![crate::pit::LabelEvent::new(
            "u1",
            Timestamp::EPOCH + Duration::days(2) + Duration::hours(12),
            1.0,
        )];
        let ts = crate::pit::point_in_time_join(
            &off,
            &labels,
            &[crate::pit::PitFeature::materialized("f", 1)],
        )
        .unwrap();
        // latest backfill run at or before the label is day 2 (fare 20.0)
        assert_eq!(ts.rows[0][2], Value::Float(20.0));
    }

    #[test]
    fn backfill_validates_inputs() {
        let (mut off, online, mut reg) = setup();
        add_trip(&mut off, "u1", Timestamp::millis(1), 1.0);
        let def = reg
            .publish(
                FeatureSpec::new("f", "user_id", "trips", "fare"),
                &off,
                Timestamp::EPOCH,
            )
            .unwrap();
        assert!(Materializer::backfill(
            &def,
            &mut off,
            &online,
            Timestamp::millis(10),
            Timestamp::millis(5),
            Duration::hours(1)
        )
        .is_err());
        assert!(Materializer::backfill(
            &def,
            &mut off,
            &online,
            Timestamp::millis(5),
            Timestamp::millis(10),
            Duration::ZERO
        )
        .is_err());
    }

    #[test]
    fn repeated_runs_append_history() {
        let (mut off, online, mut reg) = setup();
        add_trip(&mut off, "u1", Timestamp::millis(1), 5.0);
        let def = reg
            .publish(
                FeatureSpec::new("f", "user_id", "trips", "fare"),
                &off,
                Timestamp::EPOCH,
            )
            .unwrap();
        Materializer::run(&def, &mut off, &online, Timestamp::millis(100)).unwrap();
        add_trip(&mut off, "u1", Timestamp::millis(200), 9.0);
        Materializer::run(&def, &mut off, &online, Timestamp::millis(300)).unwrap();
        // history has both runs — that's what PIT joins read
        assert_eq!(off.num_rows(&def.log_table()).unwrap(), 2);
        let e = online.get("user_id", &EntityKey::new("u1"), "f").unwrap();
        assert_eq!(e.value, Value::Float(9.0));
    }
}
