//! Model storage for provenance and reproducibility (paper §2.2.2: "relevant
//! parameters and artifacts need to be stored", integrating the ModelDB /
//! ModelKB role into the feature store).
//!
//! Artifacts record *everything needed to reproduce a model*: serialized
//! parameters, the pinned feature set, the training-data time range, the
//! seed, and evaluation metrics — serialized to JSON for durability and
//! human inspection.

use fstore_common::{FsError, Result, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A stored model version.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ModelArtifact {
    pub name: String,
    pub version: u32,
    /// Model parameters as JSON (produced by `fstore-models` serializers).
    pub params: serde_json::Value,
    /// Feature set name + pinned `(feature, version)` pairs.
    pub feature_set: String,
    pub features: Vec<(String, u32)>,
    /// Embedding versions consumed, if any (`name@vN`) — the lineage used
    /// by E12's patch propagation.
    pub embeddings: Vec<String>,
    /// Training data time range `[from, to]`.
    pub training_range: (Timestamp, Timestamp),
    pub seed: u64,
    pub metrics: BTreeMap<String, f64>,
    pub created_at: Timestamp,
}

impl ModelArtifact {
    pub fn qualified_name(&self) -> String {
        format!("{}@v{}", self.name, self.version)
    }
}

/// Versioned catalog of model artifacts.
#[derive(Debug, Default)]
pub struct ModelStore {
    models: BTreeMap<String, Vec<ModelArtifact>>,
}

impl ModelStore {
    pub fn new() -> Self {
        ModelStore::default()
    }

    /// Store a new version; the artifact's `version` field is assigned here.
    pub fn save(&mut self, mut artifact: ModelArtifact) -> Result<ModelArtifact> {
        let versions = self.models.entry(artifact.name.clone()).or_default();
        artifact.version = versions.last().map_or(1, |a| a.version + 1);
        versions.push(artifact.clone());
        Ok(artifact)
    }

    pub fn latest(&self, name: &str) -> Result<&ModelArtifact> {
        self.models
            .get(name)
            .and_then(|v| v.last())
            .ok_or_else(|| FsError::not_found("model", name.to_string()))
    }

    pub fn get(&self, name: &str, version: u32) -> Result<&ModelArtifact> {
        self.models
            .get(name)
            .and_then(|v| v.iter().find(|a| a.version == version))
            .ok_or_else(|| FsError::not_found("model version", format!("{name}@v{version}")))
    }

    pub fn list(&self) -> Vec<&ModelArtifact> {
        self.models.values().filter_map(|v| v.last()).collect()
    }

    /// Models whose recorded lineage includes embedding `name@vN` — the
    /// downstream consumers an embedding patch must re-verify (E12).
    pub fn consumers_of_embedding(&self, qualified: &str) -> Vec<&ModelArtifact> {
        self.models
            .values()
            .flatten()
            .filter(|a| a.embeddings.iter().any(|e| e == qualified))
            .collect()
    }

    /// Export one model's full version history as JSON.
    pub fn export_json(&self, name: &str) -> Result<String> {
        let versions = self
            .models
            .get(name)
            .ok_or_else(|| FsError::not_found("model", name.to_string()))?;
        serde_json::to_string_pretty(versions).map_err(|e| FsError::Serde(e.to_string()))
    }

    /// Import artifacts previously exported with [`ModelStore::export_json`]
    /// (replaces any existing history for that model name).
    pub fn import_json(&mut self, json: &str) -> Result<usize> {
        let versions: Vec<ModelArtifact> =
            serde_json::from_str(json).map_err(|e| FsError::Serde(e.to_string()))?;
        let Some(first) = versions.first() else {
            return Err(FsError::InvalidArgument("empty model history".into()));
        };
        let n = versions.len();
        self.models.insert(first.name.clone(), versions);
        Ok(n)
    }
}

/// Convenience constructor for tests and examples.
pub fn artifact(name: &str, params: serde_json::Value) -> ModelArtifact {
    ModelArtifact {
        name: name.to_string(),
        version: 0,
        params,
        feature_set: String::new(),
        features: Vec::new(),
        embeddings: Vec::new(),
        training_range: (Timestamp::EPOCH, Timestamp::EPOCH),
        seed: 0,
        metrics: BTreeMap::new(),
        created_at: Timestamp::EPOCH,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn save_assigns_versions() {
        let mut store = ModelStore::new();
        let a1 = store.save(artifact("eta", json!({"w": [1.0]}))).unwrap();
        let a2 = store.save(artifact("eta", json!({"w": [2.0]}))).unwrap();
        assert_eq!(a1.version, 1);
        assert_eq!(a2.version, 2);
        assert_eq!(a2.qualified_name(), "eta@v2");
        assert_eq!(store.latest("eta").unwrap().version, 2);
        assert_eq!(store.get("eta", 1).unwrap().params, json!({"w": [1.0]}));
        assert!(store.get("eta", 3).is_err());
        assert!(store.latest("ghost").is_err());
    }

    #[test]
    fn list_returns_latest_of_each() {
        let mut store = ModelStore::new();
        store.save(artifact("a", json!(1))).unwrap();
        store.save(artifact("a", json!(2))).unwrap();
        store.save(artifact("b", json!(3))).unwrap();
        let names: Vec<String> = store.list().iter().map(|a| a.qualified_name()).collect();
        assert_eq!(names, vec!["a@v2".to_string(), "b@v1".to_string()]);
    }

    #[test]
    fn embedding_lineage_query() {
        let mut store = ModelStore::new();
        let mut a = artifact("search", json!({}));
        a.embeddings.push("ent_emb@v3".into());
        store.save(a).unwrap();
        store.save(artifact("plain", json!({}))).unwrap();
        let consumers = store.consumers_of_embedding("ent_emb@v3");
        assert_eq!(consumers.len(), 1);
        assert_eq!(consumers[0].name, "search");
        assert!(store.consumers_of_embedding("ent_emb@v4").is_empty());
    }

    #[test]
    fn export_import_round_trip() {
        let mut store = ModelStore::new();
        let mut a = artifact("m", json!({"w": [0.5, -0.5]}));
        a.metrics.insert("f1".into(), 0.91);
        a.seed = 42;
        store.save(a).unwrap();
        store.save(artifact("m", json!({"w": [1.0]}))).unwrap();
        let json = store.export_json("m").unwrap();

        let mut other = ModelStore::new();
        assert_eq!(other.import_json(&json).unwrap(), 2);
        assert_eq!(other.latest("m").unwrap(), store.latest("m").unwrap());
        assert_eq!(other.get("m", 1).unwrap().metrics["f1"], 0.91);

        assert!(other.import_json("[]").is_err());
        assert!(other.import_json("not json").is_err());
    }
}
