//! # fstore-core
//!
//! The feature store proper (paper §2.2): a registry for authoring and
//! publishing versioned feature definitions, a cadence-driven materializer
//! that keeps the dual datastore up to date, point-in-time joins for
//! leakage-free training sets, a low-latency serving layer with staleness
//! policies, feature-quality metrics, and a model store for provenance.
//!
//! The [`FeatureStore`] facade wires all of it together around a simulated
//! clock so every pipeline run is reproducible.

pub mod materialize;
pub mod modelstore;
pub mod pit;
pub mod quality;
pub mod registry;
pub mod serving;
pub mod store;

pub use materialize::{MaterializationRun, MaterializationScheduler, Materializer};
pub use modelstore::{ModelArtifact, ModelStore};
pub use pit::{naive_latest_join, point_in_time_join, LabelEvent, PitFeature, TrainingSet};
pub use quality::{ColumnProfile, FeatureQualityReport, QualityIssue};
pub use registry::{FeatureDef, FeatureRegistry, FeatureSetDef, FeatureSpec};
pub use serving::{FeatureServer, FeatureVector, StalenessPolicy};
pub use store::FeatureStore;
