//! Online feature serving with staleness policies (paper §2.2.2: features
//! must be "continuously provided to deployed models even as the feature
//! data is updated over time").

use fstore_common::{Duration, EntityKey, FsError, ReadEpoch, Result, Timestamp, Value};
use fstore_storage::OnlineStore;
use std::sync::Arc;

/// Supplies the publication epoch a served vector should be stamped with —
/// typically the offline store's [`fstore_storage::OfflineDb::epoch`], or a
/// serving stack's aggregate epoch.
pub type EpochSource = Arc<dyn Fn() -> ReadEpoch + Send + Sync>;

/// What to do when a requested feature is missing or older than the
/// configured maximum age.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StalenessPolicy {
    /// Serve whatever is there (missing features come back NULL). The
    /// freshness report still flags staleness.
    #[default]
    ServeAnyway,
    /// Replace stale/missing values with NULL (model imputes).
    NullOnStale,
    /// Fail the request — for models that cannot tolerate staleness.
    FailOnStale,
}

/// A served feature vector with its per-feature freshness.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureVector {
    pub entity: EntityKey,
    pub features: Vec<String>,
    pub values: Vec<Value>,
    /// Age of each value at serve time (`None` = missing).
    pub ages: Vec<Option<Duration>>,
    /// Names of features that were missing or over max age.
    pub stale: Vec<String>,
    /// Publication epoch this vector was answered at. Resolved once per
    /// request (once per *batch* for [`FeatureServer::serve_batch`]), so
    /// every value in one response belongs to a single consistent epoch.
    pub epoch: ReadEpoch,
}

impl FeatureVector {
    /// Dense numeric view for model input; NULL/non-numeric → `null_fill`.
    pub fn dense(&self, null_fill: f64) -> Vec<f64> {
        self.values
            .iter()
            .map(|v| v.as_f64().unwrap_or(null_fill))
            .collect()
    }
}

/// The serving layer over the online store.
#[derive(Clone)]
pub struct FeatureServer {
    online: Arc<OnlineStore>,
    max_age: Option<Duration>,
    policy: StalenessPolicy,
    epoch_source: Option<EpochSource>,
}

impl std::fmt::Debug for FeatureServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FeatureServer")
            .field("max_age", &self.max_age)
            .field("policy", &self.policy)
            .field("has_epoch_source", &self.epoch_source.is_some())
            .finish_non_exhaustive()
    }
}

impl FeatureServer {
    pub fn new(online: Arc<OnlineStore>) -> Self {
        FeatureServer {
            online,
            max_age: None,
            policy: StalenessPolicy::default(),
            epoch_source: None,
        }
    }

    /// Set the maximum tolerated feature age.
    pub fn with_max_age(mut self, age: Duration) -> Self {
        self.max_age = Some(age);
        self
    }

    pub fn with_policy(mut self, policy: StalenessPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Stamp served vectors with an epoch from this source (resolved once
    /// per `serve` call and once per `serve_batch` call). Without a source,
    /// vectors carry [`ReadEpoch::ZERO`].
    pub fn with_epoch_source(mut self, source: EpochSource) -> Self {
        self.epoch_source = Some(source);
        self
    }

    fn current_epoch(&self) -> ReadEpoch {
        self.epoch_source.as_ref().map_or(ReadEpoch::ZERO, |f| f())
    }

    /// Assemble a feature vector for `entity` at `now`, stamped with the
    /// configured epoch source's current epoch.
    pub fn serve(
        &self,
        group: &str,
        entity: &EntityKey,
        features: &[&str],
        now: Timestamp,
    ) -> Result<FeatureVector> {
        self.serve_at(group, entity, features, now, self.current_epoch())
    }

    /// Like [`serve`](Self::serve) but answered at an explicitly supplied
    /// epoch — the entry point serving layers use to keep one network
    /// response's parts on a single epoch.
    pub fn serve_at(
        &self,
        group: &str,
        entity: &EntityKey,
        features: &[&str],
        now: Timestamp,
        epoch: ReadEpoch,
    ) -> Result<FeatureVector> {
        let entries = self.online.get_many(group, entity, features);
        let mut values = Vec::with_capacity(features.len());
        let mut ages = Vec::with_capacity(features.len());
        let mut stale = Vec::new();
        for (name, entry) in features.iter().zip(entries) {
            match entry {
                None => {
                    stale.push(name.to_string());
                    values.push(Value::Null);
                    ages.push(None);
                }
                Some(e) => {
                    let age = e.age(now);
                    let is_stale = self.max_age.is_some_and(|m| age > m);
                    if is_stale {
                        stale.push(name.to_string());
                    }
                    ages.push(Some(age));
                    match (is_stale, self.policy) {
                        (true, StalenessPolicy::NullOnStale) => values.push(Value::Null),
                        _ => values.push(e.value),
                    }
                }
            }
        }
        if !stale.is_empty() && self.policy == StalenessPolicy::FailOnStale {
            return Err(FsError::Storage(format!(
                "stale/missing features for {entity}: {}",
                stale.join(", ")
            )));
        }
        Ok(FeatureVector {
            entity: entity.clone(),
            features: features.iter().map(|s| s.to_string()).collect(),
            values,
            ages,
            stale,
            epoch,
        })
    }

    /// Serve many entities (batch scoring path). The epoch is resolved once,
    /// so every vector in the batch carries the same one.
    pub fn serve_batch(
        &self,
        group: &str,
        entities: &[EntityKey],
        features: &[&str],
        now: Timestamp,
    ) -> Result<Vec<FeatureVector>> {
        self.serve_batch_at(group, entities, features, now, self.current_epoch())
    }

    /// [`serve_batch`](Self::serve_batch) at an explicitly supplied epoch.
    pub fn serve_batch_at(
        &self,
        group: &str,
        entities: &[EntityKey],
        features: &[&str],
        now: Timestamp,
        epoch: ReadEpoch,
    ) -> Result<Vec<FeatureVector>> {
        entities
            .iter()
            .map(|e| self.serve_at(group, e, features, now, epoch))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> Arc<OnlineStore> {
        let s = Arc::new(OnlineStore::default());
        let e = EntityKey::new("u1");
        s.put("user", &e, "a", Value::Float(1.0), Timestamp::millis(1_000));
        s.put("user", &e, "b", Value::Int(7), Timestamp::millis(5_000));
        s
    }

    #[test]
    fn serves_values_with_ages() {
        let srv = FeatureServer::new(store());
        let v = srv
            .serve(
                "user",
                &EntityKey::new("u1"),
                &["a", "b"],
                Timestamp::millis(6_000),
            )
            .unwrap();
        assert_eq!(v.values, vec![Value::Float(1.0), Value::Int(7)]);
        assert_eq!(
            v.ages,
            vec![Some(Duration::millis(5_000)), Some(Duration::millis(1_000))]
        );
        assert!(v.stale.is_empty());
        assert_eq!(v.dense(0.0), vec![1.0, 7.0]);
    }

    #[test]
    fn missing_features_are_null_and_flagged() {
        let srv = FeatureServer::new(store());
        let v = srv
            .serve(
                "user",
                &EntityKey::new("u1"),
                &["a", "ghost"],
                Timestamp::millis(6_000),
            )
            .unwrap();
        assert_eq!(v.values[1], Value::Null);
        assert_eq!(v.ages[1], None);
        assert_eq!(v.stale, vec!["ghost".to_string()]);
    }

    #[test]
    fn null_on_stale_policy() {
        let srv = FeatureServer::new(store())
            .with_max_age(Duration::millis(2_000))
            .with_policy(StalenessPolicy::NullOnStale);
        let v = srv
            .serve(
                "user",
                &EntityKey::new("u1"),
                &["a", "b"],
                Timestamp::millis(6_000),
            )
            .unwrap();
        assert_eq!(v.values[0], Value::Null, "a is 5s old > 2s max age");
        assert_eq!(v.values[1], Value::Int(7));
        assert_eq!(v.stale, vec!["a".to_string()]);
    }

    #[test]
    fn serve_anyway_keeps_stale_values_but_flags_them() {
        let srv = FeatureServer::new(store()).with_max_age(Duration::millis(2_000));
        let v = srv
            .serve(
                "user",
                &EntityKey::new("u1"),
                &["a"],
                Timestamp::millis(6_000),
            )
            .unwrap();
        assert_eq!(v.values[0], Value::Float(1.0));
        assert_eq!(v.stale, vec!["a".to_string()]);
    }

    #[test]
    fn fail_on_stale_policy() {
        let srv = FeatureServer::new(store())
            .with_max_age(Duration::millis(2_000))
            .with_policy(StalenessPolicy::FailOnStale);
        let err = srv
            .serve(
                "user",
                &EntityKey::new("u1"),
                &["a", "b"],
                Timestamp::millis(6_000),
            )
            .unwrap_err();
        assert!(err.to_string().contains("a"));
        // fresh-only request succeeds
        srv.serve(
            "user",
            &EntityKey::new("u1"),
            &["b"],
            Timestamp::millis(6_000),
        )
        .unwrap();
    }

    #[test]
    fn batch_serving() {
        let s = store();
        s.put(
            "user",
            &EntityKey::new("u2"),
            "a",
            Value::Float(2.0),
            Timestamp::millis(1),
        );
        let srv = FeatureServer::new(s);
        let vs = srv
            .serve_batch(
                "user",
                &[EntityKey::new("u1"), EntityKey::new("u2")],
                &["a"],
                Timestamp::millis(9_000),
            )
            .unwrap();
        assert_eq!(vs.len(), 2);
        assert_eq!(vs[1].values[0], Value::Float(2.0));
    }
}
