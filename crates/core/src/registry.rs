//! Feature authoring, publishing and versioning (paper §2.2.1).
//!
//! Users publish a [`FeatureSpec`] — entity, source table, a definitional
//! expression in the feature language, an optional window aggregation, and
//! an update cadence. Publishing validates the definition against the
//! source schema *once* and freezes it as an immutable, versioned
//! [`FeatureDef`]; re-publishing the same name bumps the version, keeping
//! every historical definition addressable (reproducibility).

use fstore_common::{Duration, FsError, Result, Timestamp, ValueType};
use fstore_query::{AggFunc, Program};
use fstore_storage::OfflineStore;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What a user submits to publish a feature.
#[derive(Debug, Clone)]
pub struct FeatureSpec {
    /// Feature name, unique within the registry (versions stack under it).
    pub name: String,
    /// Column in the source table identifying the entity (e.g. `user_id`).
    pub entity: String,
    /// Offline table the feature is derived from.
    pub source_table: String,
    /// Row-level expression in the feature language.
    pub expression: String,
    /// Optional window aggregation applied over the expression values:
    /// `(function, window length)`. `None` = latest-row feature.
    pub aggregation: Option<(AggFunc, Duration)>,
    /// How often materialization should refresh this feature.
    pub cadence: Duration,
    pub owner: String,
    pub description: String,
    pub tags: Vec<String>,
}

impl FeatureSpec {
    pub fn new(
        name: impl Into<String>,
        entity: impl Into<String>,
        source_table: impl Into<String>,
        expression: impl Into<String>,
    ) -> Self {
        FeatureSpec {
            name: name.into(),
            entity: entity.into(),
            source_table: source_table.into(),
            expression: expression.into(),
            aggregation: None,
            cadence: Duration::hours(1),
            owner: String::new(),
            description: String::new(),
            tags: Vec::new(),
        }
    }

    pub fn aggregated(mut self, func: AggFunc, window: Duration) -> Self {
        self.aggregation = Some((func, window));
        self
    }

    pub fn cadence(mut self, cadence: Duration) -> Self {
        self.cadence = cadence;
        self
    }

    pub fn owner(mut self, owner: impl Into<String>) -> Self {
        self.owner = owner.into();
        self
    }

    pub fn describe(mut self, d: impl Into<String>) -> Self {
        self.description = d.into();
        self
    }

    pub fn tag(mut self, t: impl Into<String>) -> Self {
        self.tags.push(t.into());
        self
    }
}

/// Serializable aggregation metadata stored on the published definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregationDef {
    /// Aggregate spec in [`AggFunc::parse`] syntax (e.g. `"sum"`, `"p95"`).
    pub func: String,
    pub window: Duration,
}

/// An immutable, published, versioned feature definition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureDef {
    pub name: String,
    pub version: u32,
    pub entity: String,
    pub source_table: String,
    pub expression: String,
    pub aggregation: Option<AggregationDef>,
    pub cadence: Duration,
    pub owner: String,
    pub description: String,
    pub tags: Vec<String>,
    pub created_at: Timestamp,
    /// Inferred output type of the expression (pre-aggregation).
    pub value_type: ValueType,
    /// Source columns the expression reads (lineage).
    pub inputs: Vec<String>,
    pub deprecated: bool,
}

impl FeatureDef {
    /// Fully-qualified name `name@v<version>`.
    pub fn qualified_name(&self) -> String {
        format!("{}@v{}", self.name, self.version)
    }

    /// The aggregate function, reparsed from its stored spec.
    pub fn agg_func(&self) -> Result<Option<(AggFunc, Duration)>> {
        match &self.aggregation {
            None => Ok(None),
            Some(a) => Ok(Some((AggFunc::parse(&a.func)?, a.window))),
        }
    }

    /// Offline log table this feature materializes into.
    pub fn log_table(&self) -> String {
        format!("feat__{}_v{}", self.name, self.version)
    }

    /// Online store group this feature serves from (one namespace per
    /// entity kind, mirroring how Feast/Michelangelo group by entity).
    pub fn online_group(&self) -> &str {
        &self.entity
    }
}

fn agg_spec_string(f: &AggFunc) -> String {
    match f {
        AggFunc::Count => "count".into(),
        AggFunc::CountAll => "count_all".into(),
        AggFunc::Sum => "sum".into(),
        AggFunc::Avg => "avg".into(),
        AggFunc::Min => "min".into(),
        AggFunc::Max => "max".into(),
        AggFunc::StdDev => "stddev".into(),
        AggFunc::Quantile(q) => format!("quantile({q})"),
        AggFunc::CountDistinct => "count_distinct".into(),
        AggFunc::Last => "last".into(),
    }
}

/// A named, versioned set of features used together by a model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureSetDef {
    pub name: String,
    /// `(feature name, version)` pairs, in serving order.
    pub features: Vec<(String, u32)>,
    pub created_at: Timestamp,
}

/// The central catalog of feature definitions and feature sets.
#[derive(Debug, Default)]
pub struct FeatureRegistry {
    features: BTreeMap<String, Vec<FeatureDef>>,
    sets: BTreeMap<String, FeatureSetDef>,
}

impl FeatureRegistry {
    pub fn new() -> Self {
        FeatureRegistry::default()
    }

    /// Publish a spec: validate against the live source schema, compile the
    /// expression, infer types, and freeze as the next version.
    pub fn publish(
        &mut self,
        spec: FeatureSpec,
        offline: &OfflineStore,
        now: Timestamp,
    ) -> Result<FeatureDef> {
        let schema = offline.schema(&spec.source_table)?;
        if schema.index_of(&spec.entity).is_none() {
            return Err(FsError::Plan(format!(
                "entity column `{}` not in source table `{}`",
                spec.entity, spec.source_table
            )));
        }
        let program = Program::compile(&spec.expression, schema)?;
        let value_type = program.output_type().ok_or_else(|| {
            FsError::Plan(format!("feature `{}` is the constant NULL", spec.name))
        })?;
        if let Some((func, window)) = &spec.aggregation {
            if !window.is_positive() {
                return Err(FsError::InvalidArgument(format!(
                    "aggregation window for `{}` must be positive",
                    spec.name
                )));
            }
            // Numeric-only aggregates must see numeric expressions.
            let numeric_ok = matches!(value_type, ValueType::Int | ValueType::Float)
                || matches!(
                    func,
                    AggFunc::Count
                        | AggFunc::CountAll
                        | AggFunc::CountDistinct
                        | AggFunc::Last
                        | AggFunc::Min
                        | AggFunc::Max
                );
            if !numeric_ok {
                return Err(FsError::Plan(format!(
                    "aggregate over non-numeric expression in `{}`",
                    spec.name
                )));
            }
        }
        if !spec.cadence.is_positive() {
            return Err(FsError::InvalidArgument(format!(
                "cadence for `{}` must be positive",
                spec.name
            )));
        }

        let versions = self.features.entry(spec.name.clone()).or_default();
        let version = versions.last().map_or(1, |d| d.version + 1);
        let def = FeatureDef {
            name: spec.name,
            version,
            entity: spec.entity,
            source_table: spec.source_table,
            expression: spec.expression,
            aggregation: spec.aggregation.as_ref().map(|(f, w)| AggregationDef {
                func: agg_spec_string(f),
                window: *w,
            }),
            cadence: spec.cadence,
            owner: spec.owner,
            description: spec.description,
            tags: spec.tags,
            created_at: now,
            value_type,
            inputs: program.inputs().to_vec(),
            deprecated: false,
        };
        versions.push(def.clone());
        Ok(def)
    }

    /// Latest version of a feature.
    pub fn get(&self, name: &str) -> Result<&FeatureDef> {
        self.features
            .get(name)
            .and_then(|v| v.last())
            .ok_or_else(|| FsError::not_found("feature", name.to_string()))
    }

    /// A specific version.
    pub fn get_version(&self, name: &str, version: u32) -> Result<&FeatureDef> {
        self.features
            .get(name)
            .and_then(|v| v.iter().find(|d| d.version == version))
            .ok_or_else(|| FsError::not_found("feature version", format!("{name}@v{version}")))
    }

    /// All latest-version features (including deprecated ones).
    pub fn list(&self) -> Vec<&FeatureDef> {
        self.features.values().filter_map(|v| v.last()).collect()
    }

    /// Latest-version features carrying `tag`.
    pub fn find_by_tag(&self, tag: &str) -> Vec<&FeatureDef> {
        self.list()
            .into_iter()
            .filter(|d| d.tags.iter().any(|t| t == tag))
            .collect()
    }

    /// Mark the latest version of `name` deprecated (it stays resolvable).
    pub fn deprecate(&mut self, name: &str) -> Result<()> {
        let versions = self
            .features
            .get_mut(name)
            .ok_or_else(|| FsError::not_found("feature", name.to_string()))?;
        versions
            .last_mut()
            .expect("non-empty version list")
            .deprecated = true;
        Ok(())
    }

    /// Register a feature set (resolves every member to its latest version).
    pub fn register_set(
        &mut self,
        name: impl Into<String>,
        features: &[&str],
        now: Timestamp,
    ) -> Result<FeatureSetDef> {
        let name = name.into();
        if self.sets.contains_key(&name) {
            return Err(FsError::already_exists("feature set", name));
        }
        let mut resolved = Vec::with_capacity(features.len());
        for f in features {
            let def = self.get(f)?;
            if def.deprecated {
                return Err(FsError::Plan(format!(
                    "feature `{f}` is deprecated and cannot join a new feature set"
                )));
            }
            resolved.push((def.name.clone(), def.version));
        }
        let set = FeatureSetDef {
            name: name.clone(),
            features: resolved,
            created_at: now,
        };
        self.sets.insert(name, set.clone());
        Ok(set)
    }

    pub fn get_set(&self, name: &str) -> Result<&FeatureSetDef> {
        self.sets
            .get(name)
            .ok_or_else(|| FsError::not_found("feature set", name.to_string()))
    }

    /// Resolve a set to its pinned feature definitions.
    pub fn resolve_set(&self, name: &str) -> Result<Vec<&FeatureDef>> {
        self.get_set(name)?
            .features
            .iter()
            .map(|(f, v)| self.get_version(f, *v))
            .collect()
    }

    /// Features whose lineage includes `column` of `table` — the impact set
    /// consulted when a source column goes bad (paper §2.2.3: "detect the
    /// offending set of features").
    pub fn impacted_by(&self, table: &str, column: &str) -> Vec<&FeatureDef> {
        self.list()
            .into_iter()
            .filter(|d| d.source_table == table && d.inputs.iter().any(|c| c == column))
            .collect()
    }

    /// Export the full catalog as JSON (provenance snapshot).
    pub fn export_json(&self) -> Result<String> {
        let all: Vec<&FeatureDef> = self.features.values().flatten().collect();
        serde_json::to_string_pretty(&all).map_err(|e| FsError::Serde(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fstore_common::{Schema, ValueType};
    use fstore_storage::TableConfig;

    fn offline() -> OfflineStore {
        let mut s = OfflineStore::new();
        s.create_table(
            "trips",
            TableConfig::new(Schema::of(&[
                ("user_id", ValueType::Str),
                ("ts", ValueType::Timestamp),
                ("fare", ValueType::Float),
                ("city", ValueType::Str),
            ]))
            .with_time_column("ts"),
        )
        .unwrap();
        s
    }

    fn spec() -> FeatureSpec {
        FeatureSpec::new("avg_fare_7d", "user_id", "trips", "fare")
            .aggregated(AggFunc::Avg, Duration::days(7))
            .cadence(Duration::hours(6))
            .owner("ml-platform")
            .describe("7-day average fare per user")
            .tag("pricing")
    }

    #[test]
    fn publish_compiles_and_versions() {
        let off = offline();
        let mut reg = FeatureRegistry::new();
        let d1 = reg.publish(spec(), &off, Timestamp::millis(1)).unwrap();
        assert_eq!(d1.version, 1);
        assert_eq!(d1.value_type, ValueType::Float);
        assert_eq!(d1.inputs, vec!["fare".to_string()]);
        assert_eq!(d1.qualified_name(), "avg_fare_7d@v1");
        let d2 = reg.publish(spec(), &off, Timestamp::millis(2)).unwrap();
        assert_eq!(d2.version, 2);
        assert_eq!(reg.get("avg_fare_7d").unwrap().version, 2);
        assert_eq!(
            reg.get_version("avg_fare_7d", 1).unwrap().created_at,
            Timestamp::millis(1)
        );
    }

    #[test]
    fn publish_validates() {
        let off = offline();
        let mut reg = FeatureRegistry::new();
        // unknown table
        assert!(reg
            .publish(
                FeatureSpec::new("f", "user_id", "ghost", "fare"),
                &off,
                Timestamp::EPOCH
            )
            .is_err());
        // unknown entity column
        assert!(reg
            .publish(
                FeatureSpec::new("f", "rider_id", "trips", "fare"),
                &off,
                Timestamp::EPOCH
            )
            .is_err());
        // bad expression
        assert!(reg
            .publish(
                FeatureSpec::new("f", "user_id", "trips", "fare +"),
                &off,
                Timestamp::EPOCH
            )
            .is_err());
        // type error
        assert!(reg
            .publish(
                FeatureSpec::new("f", "user_id", "trips", "city * 2"),
                &off,
                Timestamp::EPOCH
            )
            .is_err());
        // constant NULL
        assert!(reg
            .publish(
                FeatureSpec::new("f", "user_id", "trips", "NULL"),
                &off,
                Timestamp::EPOCH
            )
            .is_err());
        // sum over a string expression
        assert!(reg
            .publish(
                FeatureSpec::new("f", "user_id", "trips", "city")
                    .aggregated(AggFunc::Sum, Duration::days(1)),
                &off,
                Timestamp::EPOCH
            )
            .is_err());
        // count over a string expression is fine
        assert!(reg
            .publish(
                FeatureSpec::new("f", "user_id", "trips", "city")
                    .aggregated(AggFunc::CountDistinct, Duration::days(1)),
                &off,
                Timestamp::EPOCH
            )
            .is_ok());
        // zero cadence
        assert!(reg
            .publish(
                FeatureSpec::new("g", "user_id", "trips", "fare").cadence(Duration::ZERO),
                &off,
                Timestamp::EPOCH
            )
            .is_err());
        // zero window
        assert!(reg
            .publish(
                FeatureSpec::new("g", "user_id", "trips", "fare")
                    .aggregated(AggFunc::Avg, Duration::ZERO),
                &off,
                Timestamp::EPOCH
            )
            .is_err());
    }

    #[test]
    fn agg_round_trips_through_def() {
        let off = offline();
        let mut reg = FeatureRegistry::new();
        let d = reg
            .publish(
                spec().aggregated(AggFunc::Quantile(0.95), Duration::days(1)),
                &off,
                Timestamp::EPOCH,
            )
            .unwrap();
        let (f, w) = d.agg_func().unwrap().unwrap();
        assert_eq!(f, AggFunc::Quantile(0.95));
        assert_eq!(w, Duration::days(1));
    }

    #[test]
    fn sets_pin_versions() {
        let off = offline();
        let mut reg = FeatureRegistry::new();
        reg.publish(spec(), &off, Timestamp::EPOCH).unwrap();
        reg.publish(
            FeatureSpec::new("fare_now", "user_id", "trips", "fare"),
            &off,
            Timestamp::EPOCH,
        )
        .unwrap();
        let set = reg
            .register_set(
                "eta_model_v1",
                &["avg_fare_7d", "fare_now"],
                Timestamp::EPOCH,
            )
            .unwrap();
        assert_eq!(
            set.features,
            vec![("avg_fare_7d".to_string(), 1), ("fare_now".to_string(), 1)]
        );

        // republish: set keeps pointing at v1
        reg.publish(spec(), &off, Timestamp::millis(9)).unwrap();
        let defs = reg.resolve_set("eta_model_v1").unwrap();
        assert_eq!(defs[0].version, 1);

        assert!(reg
            .register_set("eta_model_v1", &["fare_now"], Timestamp::EPOCH)
            .is_err());
        assert!(reg
            .register_set("other", &["ghost"], Timestamp::EPOCH)
            .is_err());
    }

    #[test]
    fn deprecation_blocks_new_sets() {
        let off = offline();
        let mut reg = FeatureRegistry::new();
        reg.publish(spec(), &off, Timestamp::EPOCH).unwrap();
        reg.deprecate("avg_fare_7d").unwrap();
        assert!(reg.get("avg_fare_7d").unwrap().deprecated);
        assert!(reg
            .register_set("s", &["avg_fare_7d"], Timestamp::EPOCH)
            .is_err());
        assert!(reg.deprecate("ghost").is_err());
    }

    #[test]
    fn lineage_impact_set() {
        let off = offline();
        let mut reg = FeatureRegistry::new();
        reg.publish(spec(), &off, Timestamp::EPOCH).unwrap();
        reg.publish(
            FeatureSpec::new("city_len", "user_id", "trips", "length(city)"),
            &off,
            Timestamp::EPOCH,
        )
        .unwrap();
        let hit = reg.impacted_by("trips", "fare");
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].name, "avg_fare_7d");
        assert!(reg.impacted_by("trips", "ts").is_empty());
        assert!(reg.impacted_by("other", "fare").is_empty());
    }

    #[test]
    fn tags_and_export() {
        let off = offline();
        let mut reg = FeatureRegistry::new();
        reg.publish(spec(), &off, Timestamp::EPOCH).unwrap();
        assert_eq!(reg.find_by_tag("pricing").len(), 1);
        assert!(reg.find_by_tag("ghost").is_empty());
        let json = reg.export_json().unwrap();
        assert!(json.contains("avg_fare_7d"));
        let parsed: Vec<FeatureDef> = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed[0].name, "avg_fare_7d");
    }
}
