//! `fstore-repl` — snapshot-based replication with epoch-consistent
//! followers (paper §2.2.2: scaling the serving tier without giving up
//! the consistency story the epochs provide).
//!
//! The feature store's whole state already flows through epoch-versioned
//! snapshot publications (`SnapshotCell`), which makes replication a
//! matter of shipping publications rather than shipping mutations:
//!
//! * [`leader`] — [`ReplLeader`] hooks every
//!   component's publish path, diffs each new snapshot against the last,
//!   and appends epoch-tagged deltas to a bounded in-memory
//!   [`PubLog`](fstore_common::PubLog). It implements the serve crate's
//!   `ReplProvider`, so a leader is just an ordinary server with three
//!   extra endpoints.
//! * [`follower`] — [`Follower`] bootstraps from a
//!   full snapshot at replication epoch E, then replays deltas E+1..now
//!   into its own cells *at the leader's component epochs*. A follower
//!   that lags past the leader's retention window falls back to a fresh
//!   full snapshot (counted, exported via serving metrics). Because
//!   epochs are leader-dictated all the way down, a synced follower's
//!   responses are byte-identical to the leader's at the same epoch.
//!   [`Follower::bootstrap_with_cache`] restores the last pulled snapshot
//!   from a local [`SnapshotCache`] and catches up by delta, so restarts
//!   within the retention window skip the full wire transfer.
//! * [`codec`] — the JSON delta/snapshot bodies and their idempotent
//!   apply functions; index snapshots ship as deterministic build
//!   instructions, never as index bytes. (Re-exported from
//!   [`fstore_durable::codec`]: WAL recovery replays the same records.)
//!
//! A leader's publications can be write-ahead logged by layering it over
//! a recovered [`DurableLeader`](fstore_durable::DurableLeader)
//! ([`LeaderParts::from_durable`] + [`ReplLeader::attach_durable`]);
//! replication and durability then tap the same publish hooks.

pub mod codec;
pub mod follower;
pub mod leader;

pub use codec::{
    EmbeddingsDelta, FullSnapshot, IndexBuild, IndexDelta, OfflineDelta, OnlineDelta, OnlineRow,
    TableAppend, TableRepr, VersionRepr,
};
pub use follower::{Follower, SyncHandle, SyncReport};
pub use fstore_durable::SnapshotCache;
pub use leader::{LeaderParts, ReplLeader};
