//! The JSON delta/snapshot bodies and their idempotent apply functions.
//!
//! The implementation lives in [`fstore_durable::codec`]: the write-ahead
//! log and follower sync replay the *same* records through the *same*
//! apply path, and durability must not depend on replication — so the
//! shared codec sits in the lower crate and this module re-exports it.
//! Everything that was importable from here still is.

pub use fstore_durable::codec::*;
