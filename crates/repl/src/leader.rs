//! The leader side: publish hooks feeding the publication log, and the
//! [`ReplProvider`] implementation the serving layer answers followers
//! through.
//!
//! A [`ReplLeader`] wraps the four replicable components. Installing it
//! registers a publish hook on every snapshot cell (offline store,
//! embedding catalog, index catalog); each hook diffs the newly published
//! snapshot against the previous one and appends the delta — stamped with
//! the component's own cell epoch — to the shared [`PubLog`]. The online
//! store has no cell, so replicated online writes go through
//! [`ReplLeader::put_online`], which writes locally and logs in one step.
//!
//! Every publication is logged, even one whose diff is empty: the epoch
//! bump itself is state a follower must reproduce, or its echoed epochs
//! would drift below the leader's and byte-identity would break.

use crate::codec::{self, OnlineDelta};
use fstore_common::{
    ComponentKind, DeltaQuery, EntityKey, FsError, PubLog, Timestamp, Value, DEFAULT_LOG_RETENTION,
};
use fstore_core::FeatureServer;
use fstore_durable::DurableLeader;
use fstore_embed::{EmbeddingDb, EmbeddingStore};
use fstore_serve::{Clock, IndexCatalog, IndexMap, ReplLogState, ReplProvider, ServeEngine};
use fstore_storage::{OfflineDb, OfflineStore, OnlineStore};
use parking_lot::Mutex;
use std::sync::Arc;

/// The replicable components of one serving stack.
#[derive(Clone)]
pub struct LeaderParts {
    pub offline: OfflineDb,
    pub online: Arc<OnlineStore>,
    pub embeddings: EmbeddingDb,
    pub indexes: Arc<IndexCatalog>,
}

impl LeaderParts {
    /// Fresh, empty components sharing one embedding catalog between the
    /// embedding handle and the index catalog.
    pub fn new() -> Self {
        let embeddings = EmbeddingDb::new();
        LeaderParts {
            offline: OfflineDb::new(),
            online: Arc::new(OnlineStore::default()),
            indexes: Arc::new(IndexCatalog::new(embeddings.clone())),
            embeddings,
        }
    }

    /// The components a [`DurableLeader`] recovered, so a replication
    /// leader can be layered over the same cells. Pair with
    /// [`ReplLeader::attach_durable`] so online writes hit the WAL too.
    pub fn from_durable(durable: &DurableLeader) -> Self {
        LeaderParts {
            offline: durable.offline().clone(),
            online: Arc::clone(durable.online()),
            embeddings: durable.embeddings().clone(),
            indexes: Arc::clone(durable.indexes()),
        }
    }
}

impl Default for LeaderParts {
    fn default() -> Self {
        LeaderParts::new()
    }
}

/// A replication leader: the publication log plus the components feeding it.
pub struct ReplLeader {
    log: Arc<PubLog>,
    parts: LeaderParts,
    /// An attached durable leader, so replicated online writes are also
    /// WAL-logged (cell-backed components log through their own hooks).
    durable: Mutex<Option<Arc<DurableLeader>>>,
}

impl ReplLeader {
    /// Wrap `parts` as a leader with the default delta retention.
    pub fn new(parts: LeaderParts) -> Arc<Self> {
        ReplLeader::with_retention(parts, DEFAULT_LOG_RETENTION)
    }

    /// Wrap `parts` as a leader retaining at most `retention` deltas;
    /// followers that lag further re-bootstrap from a full snapshot.
    ///
    /// Installs publish hooks on every component cell, so publications
    /// *after* this call are replicated. State already present is covered
    /// by the full snapshot a follower bootstraps from.
    pub fn with_retention(parts: LeaderParts, retention: usize) -> Arc<Self> {
        let log = Arc::new(PubLog::new(retention));

        {
            let log = Arc::clone(&log);
            let base: Mutex<Arc<OfflineStore>> = Mutex::new(parts.offline.snapshot());
            parts.offline.add_publish_hook(move |v| {
                let mut base = base.lock();
                let body = codec::diff_offline(&base, &v.value)
                    .and_then(|delta| codec::encode(&delta))
                    .unwrap_or_else(|_| String::from("{}"));
                log.append(ComponentKind::Offline, v.epoch.as_u64(), body);
                *base = Arc::clone(&v.value);
            });
        }
        {
            let log = Arc::clone(&log);
            let base: Mutex<Arc<EmbeddingStore>> = Mutex::new(parts.embeddings.snapshot());
            parts.embeddings.add_publish_hook(move |v| {
                let mut base = base.lock();
                let delta = codec::diff_embeddings(&base, &v.value);
                let body = codec::encode(&delta).unwrap_or_else(|_| String::from("{}"));
                log.append(ComponentKind::Embeddings, v.epoch.as_u64(), body);
                *base = Arc::clone(&v.value);
            });
        }
        {
            let log = Arc::clone(&log);
            let base: Mutex<IndexMap> = Mutex::new(parts.indexes.current().value.as_ref().clone());
            parts.indexes.add_publish_hook(move |v| {
                let mut base = base.lock();
                let delta = codec::diff_indexes(&base, &v.value);
                let body = codec::encode(&delta).unwrap_or_else(|_| String::from("{}"));
                log.append(ComponentKind::Index, v.epoch.as_u64(), body);
                *base = v.value.as_ref().clone();
            });
        }

        Arc::new(ReplLeader {
            log,
            parts,
            durable: Mutex::new(None),
        })
    }

    /// Attach a [`DurableLeader`] built over the *same* components, making
    /// this leader's replicated online writes durable too. Hooks stack:
    /// cell-backed publications already reach both the publication log and
    /// the WAL through their own [`add_publish_hook`] registrations; the
    /// online store has no cell, so [`put_online`](Self::put_online)
    /// forwards each write explicitly once attached.
    ///
    /// [`add_publish_hook`]: fstore_storage::OfflineDb::add_publish_hook
    pub fn attach_durable(&self, durable: Arc<DurableLeader>) {
        *self.durable.lock() = Some(durable);
    }

    pub fn log(&self) -> &Arc<PubLog> {
        &self.log
    }

    pub fn parts(&self) -> &LeaderParts {
        &self.parts
    }

    /// Write one entity's features to the online store *and* record the
    /// write in the publication log, returning the publication sequence
    /// it landed at. Replicated online writes must go through here — a
    /// bare [`OnlineStore::put`] is invisible to followers (the online
    /// store has no snapshot cell to hook).
    ///
    /// With a durable leader attached, the write is WAL-logged before
    /// this returns and an `Err` means the commit marker is *not* known
    /// durable — a serving path that acknowledges clients must surface
    /// that instead of acking (the in-memory state may still vanish in a
    /// crash).
    pub fn put_online(
        &self,
        group: &str,
        entity: &EntityKey,
        values: &[(&str, Value)],
        now: Timestamp,
    ) -> Result<u64, FsError> {
        self.parts.online.put_row(group, entity, values, now);
        let delta = OnlineDelta {
            group: group.to_string(),
            entity: entity.as_str().to_string(),
            features: values
                .iter()
                .map(|(f, v)| ((*f).to_string(), v.clone(), now))
                .collect(),
        };
        let body = codec::encode(&delta).unwrap_or_else(|_| String::from("{}"));
        let seq = self.log.append(ComponentKind::Online, 0, body);
        if let Some(durable) = self.durable.lock().as_ref() {
            durable.log_online(&delta)?;
        }
        Ok(seq)
    }

    /// The attached durable leader, if any.
    pub fn durable(&self) -> Option<Arc<DurableLeader>> {
        self.durable.lock().clone()
    }

    /// A ready-to-start [`ServeEngine`] over the leader's components, with
    /// this leader answering the `Repl*` endpoints. Served feature vectors
    /// are stamped with the offline store's epoch — the same source a
    /// follower's engine uses, so a synced follower answers byte-identically.
    pub fn engine(self: &Arc<Self>, clock: Clock) -> ServeEngine {
        let offline = self.parts.offline.clone();
        ServeEngine::new(
            FeatureServer::new(Arc::clone(&self.parts.online))
                .with_epoch_source(Arc::new(move || offline.epoch())),
            clock,
        )
        .with_embeddings(self.parts.embeddings.clone())
        .with_index_catalog(Arc::clone(&self.parts.indexes))
        .with_replication(Arc::clone(self) as Arc<dyn ReplProvider>)
    }
}

/// The serving layer's write seam: a [`ReplLeader`] is what a fenced
/// [`WriteState`](fstore_serve::WriteState) applies accepted writes
/// through, so wire-level `PutOnline` lands in the online store, the
/// publication log (followers), and — with a durable leader attached —
/// the WAL, before the ack leaves the box.
impl fstore_serve::WriteProvider for ReplLeader {
    fn put_online(
        &self,
        group: &str,
        entity: &EntityKey,
        values: &[(String, Value)],
        now: Timestamp,
    ) -> Result<u64, FsError> {
        let borrowed: Vec<(&str, Value)> = values
            .iter()
            .map(|(f, v)| (f.as_str(), v.clone()))
            .collect();
        ReplLeader::put_online(self, group, entity, &borrowed, now)
    }
}

impl ReplProvider for ReplLeader {
    fn log_state(&self) -> ReplLogState {
        ReplLogState {
            leader_epoch: self.log.last_seq(),
            oldest_retained: self.log.oldest_retained(),
            retention: self.log.retention() as u32,
        }
    }

    fn full_snapshot(&self) -> Result<(u64, Vec<u8>), FsError> {
        // Freezing the log pins `repl_epoch` while the components are
        // captured: a publication that lands concurrently has already
        // installed its cell (hooks fire after install) but blocks on the
        // log, so its delta gets a seq > repl_epoch and is re-delivered.
        // Applies are idempotent, so the follower converges either way.
        let (repl_epoch, snapshot) = self.log.frozen(|repl_epoch| {
            let snapshot = codec::capture_snapshot(
                repl_epoch,
                &self.parts.offline,
                &self.parts.embeddings,
                &self.parts.online,
                &self.parts.indexes,
            );
            (repl_epoch, snapshot)
        });
        let payload = codec::encode(&snapshot?)?.into_bytes();
        Ok((repl_epoch, payload))
    }

    fn deltas_since(&self, from_epoch: u64) -> (u64, DeltaQuery) {
        let query = self.log.since(from_epoch);
        (self.log.last_seq(), query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fstore_common::{Schema, ValueType};
    use fstore_storage::TableConfig;

    #[test]
    fn publications_land_in_the_log_with_component_epochs() {
        let leader = ReplLeader::new(LeaderParts::new());
        let parts = leader.parts().clone();

        parts
            .offline
            .write(|s| s.create_table("t", TableConfig::new(Schema::of(&[("x", ValueType::Int)]))))
            .unwrap();
        parts
            .offline
            .write(|s| s.append("t", &[Value::Int(1)]))
            .unwrap();
        leader
            .put_online(
                "user",
                &EntityKey::new("u1"),
                &[("score", Value::Float(0.5))],
                Timestamp::millis(10),
            )
            .unwrap();

        let state = leader.log_state();
        assert_eq!(state.leader_epoch, 3);
        match leader.deltas_since(0).1 {
            DeltaQuery::Deltas(records) => {
                assert_eq!(records.len(), 3);
                assert_eq!(records[0].component, ComponentKind::Offline);
                assert_eq!(records[0].component_epoch, 1);
                assert_eq!(records[1].component_epoch, 2);
                assert_eq!(records[2].component, ComponentKind::Online);
            }
            q => panic!("unexpected {q:?}"),
        }
    }

    #[test]
    fn full_snapshot_carries_every_component_and_its_epoch() {
        let leader = ReplLeader::new(LeaderParts::new());
        let parts = leader.parts().clone();
        parts
            .offline
            .write(|s| {
                s.create_table("t", TableConfig::new(Schema::of(&[("x", ValueType::Int)])))?;
                s.append("t", &[Value::Int(7)])
            })
            .unwrap();
        leader
            .put_online(
                "user",
                &EntityKey::new("u1"),
                &[("score", Value::Int(3))],
                Timestamp::millis(5),
            )
            .unwrap();

        let (repl_epoch, payload) = leader.full_snapshot().unwrap();
        assert_eq!(repl_epoch, 2);
        let snap: codec::FullSnapshot =
            codec::decode(std::str::from_utf8(&payload).unwrap()).unwrap();
        assert_eq!(snap.offline_epoch, 1);
        assert_eq!(snap.online.len(), 1);
        let restored = OfflineStore::from_snapshot_json(&snap.offline_json).unwrap();
        assert_eq!(restored.num_rows("t").unwrap(), 1);
    }
}
