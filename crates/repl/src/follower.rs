//! The follower runtime: bootstrap from a full snapshot, then replay
//! epoch-tagged deltas into local snapshot cells.
//!
//! A follower owns its own copies of the four components and keeps them
//! converged with a leader over the ordinary wire protocol — replication
//! needs no second transport. Its lifecycle:
//!
//! 1. [`Follower::bootstrap`] pulls a [`FullSnapshot`] and installs every
//!    component at the leader's component epoch.
//! 2. [`Follower::sync_once`] (or the [`SyncHandle`] loop from
//!    [`Follower::start_sync`]) polls `ReplDeltas { from: applied }` and
//!    applies records in sequence order, each at its leader-dictated
//!    component epoch — so every response the follower serves echoes an
//!    epoch the leader actually published.
//! 3. A follower that lagged past the leader's retention window is told so
//!    (`lagged`) and recovers by re-pulling a full snapshot; the fallback
//!    is counted and exported through [`ServingMetrics`].
//!
//! [`FullSnapshot`]: crate::codec::FullSnapshot

use crate::codec::{self, EmbeddingsDelta, FullSnapshot, IndexDelta, OfflineDelta, OnlineDelta};
use fstore_common::rng::{Rng, Xoshiro256};
use fstore_common::{ComponentKind, DeltaRecord, FsError, ReadEpoch, Result};
use fstore_core::FeatureServer;
use fstore_durable::SnapshotCache;
use fstore_embed::{EmbeddingDb, EmbeddingStore};
use fstore_serve::{Clock, FeatureClient, IndexCatalog, RetryPolicy, ServeEngine, ServingMetrics};
use fstore_storage::{OfflineDb, OfflineStore, OnlineStore};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What one [`Follower::sync_once`] round did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncReport {
    /// Deltas applied this round.
    pub applied: usize,
    /// The round recovered from lag by re-pulling a full snapshot.
    pub resynced: bool,
    /// The leader's replication epoch when it answered.
    pub leader_epoch: u64,
    /// `leader_epoch - applied_epoch` after the round.
    pub lag: u64,
}

/// A replica of one leader's serving state.
pub struct Follower {
    leader_addr: String,
    offline: OfflineDb,
    online: Arc<OnlineStore>,
    embeddings: EmbeddingDb,
    indexes: Arc<IndexCatalog>,
    /// Replication epoch of the last applied delta (or bootstrap snapshot).
    applied: AtomicU64,
    /// The leader's replication epoch as of the last exchange.
    leader_epoch: AtomicU64,
    /// Times this follower fell past retention and re-bootstrapped.
    fallbacks: AtomicU64,
    /// Where full snapshots are persisted between runs, if anywhere.
    cache: Mutex<Option<SnapshotCache>>,
    /// Bootstraps served from the local snapshot cache (no wire transfer).
    disk_bootstraps: AtomicU64,
    /// Full snapshots pulled over the wire (bootstrap or lag fallback).
    wire_bootstraps: AtomicU64,
    metrics: Mutex<Option<Arc<ServingMetrics>>>,
}

impl Follower {
    fn empty(leader_addr: String) -> Follower {
        let embeddings = EmbeddingDb::new();
        Follower {
            leader_addr,
            offline: OfflineDb::new(),
            online: Arc::new(OnlineStore::default()),
            indexes: Arc::new(IndexCatalog::new(embeddings.clone())),
            embeddings,
            applied: AtomicU64::new(0),
            leader_epoch: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            cache: Mutex::new(None),
            disk_bootstraps: AtomicU64::new(0),
            wire_bootstraps: AtomicU64::new(0),
            metrics: Mutex::new(None),
        }
    }

    /// Connect to a leader and bootstrap from a full snapshot.
    pub fn bootstrap(leader_addr: impl Into<String>) -> Result<Follower> {
        let follower = Follower::empty(leader_addr.into());
        let mut client = follower.connect()?;
        follower.pull_full_snapshot(&mut client)?;
        Ok(follower)
    }

    /// Bootstrap through a persistent snapshot cache: install the cached
    /// snapshot from disk (no wire transfer) and catch up through ordinary
    /// delta sync. A missing or corrupt cache — or one that has lagged past
    /// the leader's retention window (the first sync round answers
    /// `lagged`) — falls back to a full wire pull, which repopulates the
    /// cache. Every wire pull keeps the cache fresh, so the *next* restart
    /// bootstraps from disk.
    pub fn bootstrap_with_cache(
        leader_addr: impl Into<String>,
        cache: SnapshotCache,
    ) -> Result<Follower> {
        let follower = Follower::empty(leader_addr.into());
        let cached = cache.load().unwrap_or(None); // corrupt cache == no cache
        *follower.cache.lock() = Some(cache);

        let mut client = follower.connect()?;
        match cached {
            Some((repl_epoch, payload)) => {
                let text = std::str::from_utf8(&payload)
                    .map_err(|e| FsError::Serde(format!("cached snapshot not UTF-8: {e}")))?;
                let snapshot: FullSnapshot = codec::decode(text)?;
                follower.install_full_snapshot(&snapshot)?;
                follower.applied.store(repl_epoch, Ordering::Release);
                follower
                    .leader_epoch
                    .fetch_max(repl_epoch, Ordering::AcqRel);
                follower.disk_bootstraps.fetch_add(1, Ordering::AcqRel);
                // Catch up from the cached epoch; a `lagged` answer inside
                // sync_once re-pulls the full snapshot (counted as a wire
                // bootstrap and a fallback).
                follower.sync_once(&mut client)?;
            }
            None => follower.pull_full_snapshot(&mut client)?,
        }
        Ok(follower)
    }

    /// Open a fresh connection to the leader (sync loops reuse one; callers
    /// doing manual rounds can too).
    pub fn connect(&self) -> Result<FeatureClient> {
        FeatureClient::connect(&self.leader_addr)
            .map_err(|e| FsError::Storage(format!("connect to leader {}: {e}", self.leader_addr)))
    }

    fn pull_full_snapshot(&self, client: &mut FeatureClient) -> Result<()> {
        let (repl_epoch, payload) = client
            .repl_snapshot()
            .map_err(|e| FsError::Storage(format!("pull full snapshot: {e}")))?;
        let text = std::str::from_utf8(&payload)
            .map_err(|e| FsError::Serde(format!("snapshot payload not UTF-8: {e}")))?;
        let snapshot: FullSnapshot = codec::decode(text)?;
        self.install_full_snapshot(&snapshot)?;
        self.applied.store(repl_epoch, Ordering::Release);
        self.leader_epoch.fetch_max(repl_epoch, Ordering::AcqRel);
        self.wire_bootstraps.fetch_add(1, Ordering::AcqRel);
        if let Some(cache) = self.cache.lock().as_ref() {
            // Best-effort: a failed cache write only costs the next
            // restart a wire pull.
            let _ = cache.store(repl_epoch, &payload);
        }
        self.push_metrics();
        Ok(())
    }

    /// Install a full snapshot: every component at the leader's epoch.
    /// Embeddings go in before indexes — index builds resolve their source
    /// table from the local embedding catalog.
    fn install_full_snapshot(&self, snapshot: &FullSnapshot) -> Result<()> {
        let offline = OfflineStore::from_snapshot_json(&snapshot.offline_json)?;
        self.offline
            .restore(offline, ReadEpoch(snapshot.offline_epoch));

        let mut store = EmbeddingStore::new();
        codec::apply_embeddings(
            &mut store,
            &EmbeddingsDelta {
                versions: snapshot.embeddings.clone(),
            },
        )?;
        self.embeddings
            .restore(store, ReadEpoch(snapshot.embeddings_epoch));

        for row in &snapshot.online {
            self.online.put(
                &row.group,
                &fstore_common::EntityKey::new(row.entity.clone()),
                &row.feature,
                row.value.clone(),
                row.written_at,
            );
        }

        for build in &snapshot.indexes {
            self.indexes
                .install_replica(
                    &build.table,
                    &build.spec,
                    build.built_from_version,
                    build.generation,
                )
                .map_err(|e| FsError::Storage(format!("replica index build: {e}")))?;
        }
        Ok(())
    }

    /// Apply one delta record at its leader-dictated component epoch.
    fn apply_delta(&self, record: &DeltaRecord) -> Result<()> {
        let epoch = ReadEpoch(record.component_epoch);
        match record.component {
            ComponentKind::Offline => {
                let delta: OfflineDelta = codec::decode(&record.body)?;
                self.offline
                    .apply_replica(epoch, |s| codec::apply_offline(s, &delta))
            }
            ComponentKind::Embeddings => {
                let delta: EmbeddingsDelta = codec::decode(&record.body)?;
                self.embeddings
                    .apply_replica(epoch, |s| codec::apply_embeddings(s, &delta))
            }
            ComponentKind::Index => {
                let delta: IndexDelta = codec::decode(&record.body)?;
                for build in &delta.builds {
                    self.indexes
                        .install_replica(
                            &build.table,
                            &build.spec,
                            build.built_from_version,
                            build.generation,
                        )
                        .map_err(|e| FsError::Storage(format!("replica index build: {e}")))?;
                }
                Ok(())
            }
            ComponentKind::Online => {
                let delta: OnlineDelta = codec::decode(&record.body)?;
                codec::apply_online(&self.online, &delta);
                Ok(())
            }
        }
    }

    /// One replication round: poll the leader for deltas past the applied
    /// epoch and replay them in order. A `lagged` answer (or a delta that
    /// will not apply) falls back to a fresh full snapshot.
    ///
    /// The subscribe (leader log state) and the delta poll are pipelined
    /// onto one write/read exchange ([`FeatureClient::repl_sync`]), so a
    /// sync round costs a single network round trip.
    pub fn sync_once(&self, client: &mut FeatureClient) -> Result<SyncReport> {
        let (state, batch) = client
            .repl_sync(self.applied.load(Ordering::Acquire))
            .map_err(|e| FsError::Storage(format!("poll deltas: {e}")))?;
        self.leader_epoch
            .fetch_max(state.leader_epoch.max(batch.leader_epoch), Ordering::AcqRel);

        let mut applied = 0usize;
        let mut resynced = false;
        if batch.lagged {
            self.resync(client)?;
            resynced = true;
        } else {
            for delta in &batch.deltas {
                let record = delta.to_record();
                if record.seq <= self.applied.load(Ordering::Acquire) {
                    continue; // re-delivered; already applied
                }
                if let Err(e) = self.apply_delta(&record) {
                    // A delta that cannot apply means local state diverged
                    // (or was corrupted); a full snapshot re-grounds it.
                    let _ = e;
                    self.resync(client)?;
                    resynced = true;
                    break;
                }
                self.applied.store(record.seq, Ordering::Release);
                applied += 1;
            }
        }
        self.push_metrics();
        Ok(SyncReport {
            applied,
            resynced,
            leader_epoch: self.leader_epoch.load(Ordering::Acquire),
            lag: self.lag(),
        })
    }

    /// Recover via full-snapshot fallback (counted in the metrics).
    fn resync(&self, client: &mut FeatureClient) -> Result<()> {
        self.fallbacks.fetch_add(1, Ordering::AcqRel);
        if let Some(m) = self.metrics.lock().as_ref() {
            m.record_repl_fallback();
        }
        self.pull_full_snapshot(client)
    }

    /// Spawn a background loop calling [`sync_once`](Self::sync_once)
    /// every `interval`, reconnecting on connection loss.
    ///
    /// Failed rounds (connect refused, sync error) back off with jittered
    /// exponential delays instead of hammering a down leader at the poll
    /// rate — a restarting leader would otherwise face a thundering herd
    /// of followers all polling at the same instant. The consecutive
    /// failure count is exported through the attached [`ServingMetrics`]
    /// so operators can see a follower that cannot reach its leader.
    pub fn start_sync(self: &Arc<Self>, interval: Duration) -> SyncHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let follower = Arc::clone(self);
        let stop2 = Arc::clone(&stop);
        let backoff = RetryPolicy {
            // The loop itself is the retry budget; the policy only shapes
            // the delay curve.
            max_attempts: u32::MAX,
            base_backoff: interval.max(Duration::from_millis(1)),
            multiplier: 2.0,
            max_backoff: (interval * 32).max(Duration::from_millis(250)),
            jitter: 0.25,
        };
        let thread = std::thread::Builder::new()
            .name("fstore-repl-sync".to_string())
            .spawn(move || {
                let mut rng = Xoshiro256::seeded(0x5f0_110_3e7 ^ interval.as_nanos() as u64);
                let mut client = None;
                let mut failures: u32 = 0;
                while !stop2.load(Ordering::Acquire) {
                    if client.is_none() {
                        client = follower.connect().ok();
                        if client.is_none() {
                            failures = failures.saturating_add(1);
                        }
                    }
                    if let Some(c) = client.as_mut() {
                        if follower.sync_once(c).is_ok() {
                            failures = 0;
                        } else {
                            client = None; // reconnect next round
                            failures = failures.saturating_add(1);
                        }
                    }
                    if let Some(m) = follower.metrics.lock().as_ref() {
                        m.set_repl_consecutive_failures(u64::from(failures));
                    }
                    let delay = if failures == 0 {
                        interval
                    } else {
                        backoff.backoff(failures.saturating_sub(1), rng.next_f64())
                    };
                    sleep_responsive(&stop2, delay);
                }
            })
            .expect("spawn repl sync thread");
        SyncHandle {
            stop,
            thread: Some(thread),
        }
    }

    /// Export replication progress through a server's metrics (call with
    /// the handle's metrics after starting the follower's server).
    pub fn attach_metrics(&self, metrics: Arc<ServingMetrics>) {
        *self.metrics.lock() = Some(metrics);
        self.push_metrics();
    }

    fn push_metrics(&self) {
        if let Some(m) = self.metrics.lock().as_ref() {
            m.set_repl_progress(
                self.applied.load(Ordering::Acquire),
                self.leader_epoch.load(Ordering::Acquire),
            );
        }
    }

    /// Replication epoch of the last applied delta.
    pub fn applied_epoch(&self) -> u64 {
        self.applied.load(Ordering::Acquire)
    }

    /// The leader's replication epoch as of the last exchange.
    pub fn leader_epoch(&self) -> u64 {
        self.leader_epoch.load(Ordering::Acquire)
    }

    /// Deltas behind the leader (as of the last exchange).
    pub fn lag(&self) -> u64 {
        self.leader_epoch().saturating_sub(self.applied_epoch())
    }

    /// Full-snapshot fallbacks taken since bootstrap.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks.load(Ordering::Acquire)
    }

    /// Bootstraps served from the local snapshot cache — state restored
    /// from disk with no full wire transfer.
    pub fn disk_bootstraps(&self) -> u64 {
        self.disk_bootstraps.load(Ordering::Acquire)
    }

    /// Full snapshots pulled over the wire (initial bootstrap and every
    /// lag fallback).
    pub fn wire_bootstraps(&self) -> u64 {
        self.wire_bootstraps.load(Ordering::Acquire)
    }

    pub fn offline(&self) -> &OfflineDb {
        &self.offline
    }

    pub fn online(&self) -> &Arc<OnlineStore> {
        &self.online
    }

    pub fn embeddings(&self) -> &EmbeddingDb {
        &self.embeddings
    }

    pub fn indexes(&self) -> &Arc<IndexCatalog> {
        &self.indexes
    }

    /// The follower's components, in the shape a [`ReplLeader`] takes —
    /// the handles are shared (snapshot cells and `Arc`s), not copied, so
    /// a leader built over them continues exactly where the follower
    /// stopped.
    ///
    /// [`ReplLeader`]: crate::ReplLeader
    pub fn parts(&self) -> crate::LeaderParts {
        crate::LeaderParts {
            offline: self.offline.clone(),
            online: Arc::clone(&self.online),
            embeddings: self.embeddings.clone(),
            indexes: Arc::clone(&self.indexes),
        }
    }

    /// Promote this follower to a replication leader in place: wrap its
    /// components in a fresh [`ReplLeader`] (new publication log, new
    /// publish hooks) retaining `retention` deltas. Every epoch the
    /// follower replicated is already folded into the components, so other
    /// followers bootstrap from the promoted leader's full snapshot.
    ///
    /// Stop the sync loop first ([`SyncHandle::stop`]) — a promotion while
    /// deltas from the old leader are still being applied would interleave
    /// two writers.
    ///
    /// [`ReplLeader`]: crate::ReplLeader
    pub fn promote(&self, retention: usize) -> Arc<crate::ReplLeader> {
        crate::ReplLeader::with_retention(self.parts(), retention)
    }

    /// A ready-to-start [`ServeEngine`] over the follower's components.
    /// Feature vectors are stamped with the (replicated) offline epoch —
    /// the same source the leader's engine uses, so answers at equal
    /// epochs are byte-identical.
    pub fn engine(&self, clock: Clock) -> ServeEngine {
        let offline = self.offline.clone();
        ServeEngine::new(
            FeatureServer::new(Arc::clone(&self.online))
                .with_epoch_source(Arc::new(move || offline.epoch())),
            clock,
        )
        .with_embeddings(self.embeddings.clone())
        .with_index_catalog(Arc::clone(&self.indexes))
    }
}

impl std::fmt::Debug for Follower {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Follower")
            .field("leader", &self.leader_addr)
            .field("applied", &self.applied_epoch())
            .field("leader_epoch", &self.leader_epoch())
            .field("fallbacks", &self.fallbacks())
            .finish()
    }
}

/// Sleep `total`, but wake every few milliseconds to honour a stop
/// request — backoff delays must not stretch shutdown.
fn sleep_responsive(stop: &AtomicBool, total: Duration) {
    let slice = Duration::from_millis(10);
    let mut remaining = total;
    while remaining > Duration::ZERO && !stop.load(Ordering::Acquire) {
        let step = remaining.min(slice);
        std::thread::sleep(step);
        remaining = remaining.saturating_sub(step);
    }
}

/// Stops the background sync loop on [`stop`](Self::stop) or drop.
pub struct SyncHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl SyncHandle {
    /// Signal the loop and join it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for SyncHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}
