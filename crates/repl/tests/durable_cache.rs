//! Replication meets durability: followers that restart from a local
//! snapshot cache (wire transfer only when behind retention), and a
//! replication leader layered over a durable one so the same publications
//! feed the publication log and the WAL.

use fstore_common::{EntityKey, Schema, Timestamp, Value, ValueType};
use fstore_durable::{DurableConfig, DurableLeader, SnapshotCache};
use fstore_repl::{Follower, LeaderParts, ReplLeader};
use fstore_serve::{fixed_clock, start, ServeConfig};
use fstore_storage::TableConfig;
use std::path::PathBuf;
use std::sync::Arc;

fn now_ts() -> Timestamp {
    Timestamp::millis(1_000_000)
}

fn serve_config() -> ServeConfig {
    ServeConfig::builder()
        .addr("127.0.0.1:0")
        .workers(2)
        .queue_depth(64)
        .max_batch(8)
        .build()
        .unwrap()
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fstore_durable_cache_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn seeded_leader(retention: usize) -> Arc<ReplLeader> {
    let leader = ReplLeader::with_retention(LeaderParts::new(), retention);
    leader
        .parts()
        .offline
        .write(|s| {
            s.create_table(
                "events",
                TableConfig::new(Schema::of(&[("n", ValueType::Int)])),
            )
        })
        .unwrap();
    leader
        .parts()
        .offline
        .write(|s| s.append("events", &[Value::Int(1)]))
        .unwrap();
    leader
        .put_online(
            "user",
            &EntityKey::new("u1"),
            &[("score", Value::Float(0.5))],
            now_ts(),
        )
        .unwrap();
    leader
}

#[test]
fn follower_restart_bootstraps_from_disk_not_the_wire() {
    let leader = seeded_leader(256);
    let handle = start(leader.engine(fixed_clock(now_ts())), serve_config()).unwrap();
    let addr = handle.addr().to_string();
    let cache_path = temp_path("restart.cache");
    std::fs::remove_file(&cache_path).ok();

    // First run: nothing cached yet, so bootstrap pulls over the wire —
    // and leaves the snapshot on disk.
    let first = Follower::bootstrap_with_cache(&addr, SnapshotCache::new(&cache_path)).unwrap();
    assert_eq!(first.wire_bootstraps(), 1);
    assert_eq!(first.disk_bootstraps(), 0);
    assert!(
        cache_path.exists(),
        "bootstrap did not persist the snapshot"
    );
    let applied_then = first.applied_epoch();
    drop(first);

    // The leader moves on — but stays within the retention window.
    for i in 0..5 {
        leader
            .parts()
            .offline
            .write(|s| s.append("events", &[Value::Int(10 + i)]))
            .unwrap();
    }

    // Restart: state comes from disk, catch-up comes from deltas. The
    // wire counter proves no full snapshot crossed the network.
    let second = Follower::bootstrap_with_cache(&addr, SnapshotCache::new(&cache_path)).unwrap();
    assert_eq!(second.disk_bootstraps(), 1, "cache was not used");
    assert_eq!(second.wire_bootstraps(), 0, "full snapshot re-pulled");
    assert_eq!(second.fallbacks(), 0);
    assert!(second.applied_epoch() >= applied_then);

    let mut client = second.connect().unwrap();
    for _ in 0..10 {
        second.sync_once(&mut client).unwrap();
        if second.lag() == 0 {
            break;
        }
    }
    assert_eq!(second.lag(), 0);
    assert_eq!(
        second.offline().read().value.num_rows("events").unwrap(),
        6,
        "delta catch-up missed rows"
    );

    handle.shutdown();
    std::fs::remove_file(&cache_path).ok();
}

#[test]
fn stale_cache_past_retention_falls_back_to_the_wire() {
    let leader = seeded_leader(4);
    let handle = start(leader.engine(fixed_clock(now_ts())), serve_config()).unwrap();
    let addr = handle.addr().to_string();
    let cache_path = temp_path("stale.cache");
    std::fs::remove_file(&cache_path).ok();

    let first = Follower::bootstrap_with_cache(&addr, SnapshotCache::new(&cache_path)).unwrap();
    drop(first);

    // Blow far past the retention window while the follower is down.
    for i in 0..20 {
        leader
            .parts()
            .offline
            .write(|s| s.append("events", &[Value::Int(100 + i)]))
            .unwrap();
    }

    // The cached snapshot installs, but the first catch-up round learns it
    // lagged out and re-grounds from a fresh wire snapshot — which also
    // refreshes the cache for the next restart.
    let second = Follower::bootstrap_with_cache(&addr, SnapshotCache::new(&cache_path)).unwrap();
    assert_eq!(second.disk_bootstraps(), 1);
    assert_eq!(
        second.wire_bootstraps(),
        1,
        "lag fallback must hit the wire"
    );
    assert_eq!(second.fallbacks(), 1);
    assert_eq!(second.lag(), 0);
    assert_eq!(
        second.offline().read().value.num_rows("events").unwrap(),
        21
    );

    let refreshed = SnapshotCache::new(&cache_path).load().unwrap().unwrap();
    assert_eq!(refreshed.0, second.applied_epoch(), "cache not refreshed");

    handle.shutdown();
    std::fs::remove_file(&cache_path).ok();
}

#[test]
fn replication_leader_over_a_durable_one_survives_a_crash() {
    let dir = std::env::temp_dir().join(format!(
        "fstore_durable_cache_repl_crash_{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();

    {
        let (durable, report) = DurableLeader::open(&dir, DurableConfig::default()).unwrap();
        assert!(report.cold_start);
        // Replication taps the same cells durability already hooked.
        let leader = ReplLeader::new(LeaderParts::from_durable(&durable));
        leader.attach_durable(Arc::clone(&durable));

        leader
            .parts()
            .offline
            .write(|s| {
                s.create_table(
                    "events",
                    TableConfig::new(Schema::of(&[("n", ValueType::Int)])),
                )
            })
            .unwrap();
        leader
            .parts()
            .offline
            .write(|s| s.append("events", &[Value::Int(7)]))
            .unwrap();
        leader
            .put_online(
                "user",
                &EntityKey::new("u1"),
                &[("score", Value::Float(0.5))],
                now_ts(),
            )
            .unwrap();

        // Both streams saw all three publications.
        assert_eq!(leader.log().last_seq(), 3);
        assert_eq!(durable.published_seq(), 3);
        // Crash: no checkpoint.
    }

    let (revived, report) = DurableLeader::open(&dir, DurableConfig::default()).unwrap();
    assert_eq!(report.recovered_epoch, 3);
    assert_eq!(
        revived.offline().read().value.num_rows("events").unwrap(),
        1
    );
    let online = revived
        .online()
        .get("user", &EntityKey::new("u1"), "score")
        .map(|e| e.value.clone());
    assert_eq!(online, Some(Value::Float(0.5)));

    std::fs::remove_dir_all(&dir).ok();
}
