//! Leader + follower over real sockets: bootstrap mid-storm, epoch
//! monotonicity, byte-identity at equal epochs, and full-snapshot
//! fallback after lagging past retention.

use fstore_common::{EntityKey, ReadEpoch, Schema, Timestamp, Value, ValueType};
use fstore_embed::{EmbeddingProvenance, EmbeddingTable};
use fstore_repl::{Follower, LeaderParts, ReplLeader};
use fstore_serve::{fixed_clock, start, FeatureClient, IndexSpec, Request, Response, ServeConfig};
use fstore_storage::TableConfig;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn now_ts() -> Timestamp {
    Timestamp::millis(1_000_000)
}

fn serve_config() -> ServeConfig {
    ServeConfig::builder()
        .addr("127.0.0.1:0")
        .workers(2)
        .queue_depth(64)
        .max_batch(8)
        .build()
        .unwrap()
}

fn publish_embedding(leader: &ReplLeader, version_seed: u32) {
    let mut table = EmbeddingTable::new(4).unwrap();
    for i in 0..6 {
        table
            .insert(
                format!("e{i}"),
                vec![
                    (i + version_seed) as f32,
                    i as f32 * 0.5,
                    version_seed as f32,
                    1.0,
                ],
            )
            .unwrap();
    }
    leader
        .parts()
        .embeddings
        .publish("emb", table, EmbeddingProvenance::default(), now_ts())
        .unwrap();
}

#[test]
fn follower_bootstraps_mid_storm_and_converges_byte_identically() {
    let leader = ReplLeader::with_retention(LeaderParts::new(), 256);

    // Seed pre-subscription state: an offline table, embeddings + index,
    // and one online row. All of it must arrive via the full snapshot.
    leader
        .parts()
        .offline
        .write(|s| {
            s.create_table(
                "events",
                TableConfig::new(Schema::of(&[("n", ValueType::Int)])),
            )
        })
        .unwrap();
    publish_embedding(&leader, 0);
    leader
        .parts()
        .indexes
        .build("emb", &IndexSpec::Flat)
        .unwrap();
    leader
        .put_online(
            "user",
            &EntityKey::new("u1"),
            &[("score", Value::Float(0.25))],
            now_ts(),
        )
        .unwrap();

    let handle = start(leader.engine(fixed_clock(now_ts())), serve_config()).unwrap();
    let addr = handle.addr().to_string();

    // Publish storm while the follower bootstraps and catches up.
    let storming = Arc::new(AtomicBool::new(true));
    let storm = {
        let leader = Arc::clone(&leader);
        let storming = Arc::clone(&storming);
        std::thread::spawn(move || {
            let mut i = 0i64;
            while storming.load(Ordering::Acquire) {
                leader
                    .parts()
                    .offline
                    .write(|s| s.append("events", &[Value::Int(i)]))
                    .unwrap();
                if i % 7 == 0 {
                    leader
                        .put_online(
                            "user",
                            &EntityKey::new(format!("u{}", i % 5)),
                            &[("score", Value::Float(i as f64))],
                            now_ts(),
                        )
                        .unwrap();
                }
                i += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };

    let follower = Arc::new(Follower::bootstrap(&addr).unwrap());
    let mut sync_client = follower.connect().unwrap();

    // Applied epochs must be monotone and never ahead of the leader's.
    let mut last_applied = follower.applied_epoch();
    for _ in 0..20 {
        let report = follower.sync_once(&mut sync_client).unwrap();
        assert!(follower.applied_epoch() >= last_applied, "epoch regressed");
        assert!(
            follower.applied_epoch() <= report.leader_epoch,
            "follower ahead of leader"
        );
        last_applied = follower.applied_epoch();
        std::thread::sleep(Duration::from_millis(5));
    }

    // Stop the storm, drain the remaining deltas: follower converges to
    // the leader's exact replication epoch.
    storming.store(false, Ordering::Release);
    storm.join().unwrap();
    for _ in 0..50 {
        follower.sync_once(&mut sync_client).unwrap();
        if follower.lag() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(follower.lag(), 0, "follower did not converge");
    assert_eq!(follower.fallbacks(), 0, "in-window catch-up used fallback");

    // Replicated state matches the leader exactly.
    let leader_offline = leader.parts().offline.read();
    let follower_offline = follower.offline().read();
    assert_eq!(follower_offline.epoch, leader_offline.epoch);
    assert_eq!(
        follower_offline.value.num_rows("events").unwrap(),
        leader_offline.value.num_rows("events").unwrap()
    );

    // Byte-identity: the follower's server answers every endpoint with
    // exactly the leader's bytes (same epochs, same fixed clock).
    let follower_handle = start(follower.engine(fixed_clock(now_ts())), serve_config()).unwrap();
    let mut to_leader = FeatureClient::connect(handle.addr()).unwrap();
    let mut to_follower = FeatureClient::connect(follower_handle.addr()).unwrap();
    let requests = [
        Request::GetFeatures {
            group: "user".into(),
            entity: "u1".into(),
            features: vec!["score".into()],
        },
        Request::GetEmbedding {
            table: "emb".into(),
            key: "e3".into(),
        },
        Request::SearchNearest {
            table: "emb".into(),
            query: vec![2.0, 1.0, 0.0, 1.0],
            k: 3,
            options: Default::default(),
        },
    ];
    for request in &requests {
        let a = to_leader.call(request).unwrap();
        let b = to_follower.call(request).unwrap();
        assert!(
            !matches!(a, Response::Error { .. }),
            "leader errored: {a:?}"
        );
        assert_eq!(a.encode(), b.encode(), "divergent answer for {request:?}");
    }

    follower_handle.shutdown();
    handle.shutdown();
}

#[test]
fn lagged_follower_recovers_via_full_snapshot_fallback() {
    // Tiny retention: a few publishes push a stalled follower out of the
    // delta window.
    let leader = ReplLeader::with_retention(LeaderParts::new(), 4);
    leader
        .parts()
        .offline
        .write(|s| {
            s.create_table(
                "events",
                TableConfig::new(Schema::of(&[("n", ValueType::Int)])),
            )
        })
        .unwrap();

    let handle = start(leader.engine(fixed_clock(now_ts())), serve_config()).unwrap();
    let follower = Follower::bootstrap(handle.addr().to_string()).unwrap();
    let mut client = follower.connect().unwrap();

    // The follower stalls while the leader publishes far past retention.
    for i in 0..20i64 {
        leader
            .parts()
            .offline
            .write(|s| s.append("events", &[Value::Int(i)]))
            .unwrap();
    }

    let report = follower.sync_once(&mut client).unwrap();
    assert!(report.resynced, "expected a full-snapshot fallback");
    assert_eq!(follower.fallbacks(), 1);
    assert_eq!(
        follower.lag(),
        0,
        "fallback must land on the leader's epoch"
    );
    assert_eq!(
        follower.offline().read().value.num_rows("events").unwrap(),
        20
    );
    assert_eq!(follower.offline().epoch(), ReadEpoch(21));

    // Subsequent in-window publishes flow as ordinary deltas again.
    leader
        .parts()
        .offline
        .write(|s| s.append("events", &[Value::Int(99)]))
        .unwrap();
    let report = follower.sync_once(&mut client).unwrap();
    assert!(!report.resynced);
    assert_eq!(report.applied, 1);
    assert_eq!(
        follower.offline().read().value.num_rows("events").unwrap(),
        21
    );

    handle.shutdown();
}

#[test]
fn background_sync_loop_tracks_a_live_leader() {
    let leader = ReplLeader::with_retention(LeaderParts::new(), 256);
    leader
        .parts()
        .offline
        .write(|s| {
            s.create_table(
                "events",
                TableConfig::new(Schema::of(&[("n", ValueType::Int)])),
            )
        })
        .unwrap();
    let handle = start(leader.engine(fixed_clock(now_ts())), serve_config()).unwrap();

    let follower = Arc::new(Follower::bootstrap(handle.addr().to_string()).unwrap());
    let sync = follower.start_sync(Duration::from_millis(2));

    for i in 0..30i64 {
        leader
            .parts()
            .offline
            .write(|s| s.append("events", &[Value::Int(i)]))
            .unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    // Publishes stopped; the loop must drain the tail. Wait on the
    // leader's actual last seq — `lag()` reflects the previous exchange
    // and can read 0 for one poll interval after a publish.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while follower.applied_epoch() != leader.log().last_seq()
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(5));
    }
    sync.stop();
    assert_eq!(
        follower.applied_epoch(),
        leader.log().last_seq(),
        "sync loop never converged"
    );
    assert_eq!(follower.lag(), 0, "lag nonzero after convergence");
    assert_eq!(
        follower.offline().read().value.num_rows("events").unwrap(),
        30
    );
    handle.shutdown();
}
