//! Follower resilience: the background sync loop backs off while its
//! leader is down, exports the consecutive-failure count through the
//! serving metrics, and resumes cleanly when the leader returns on the
//! same address.

use fstore_common::{Schema, Value, ValueType};
use fstore_repl::{Follower, LeaderParts, ReplLeader};
use fstore_serve::{fixed_clock, start, ServeConfig, ServingMetrics};
use fstore_storage::TableConfig;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn now_ts() -> fstore_common::Timestamp {
    fstore_common::Timestamp::millis(1_000_000)
}

fn serve_config(addr: &str) -> ServeConfig {
    ServeConfig::builder()
        .addr(addr)
        .workers(2)
        .queue_depth(64)
        .build()
        .unwrap()
}

#[test]
fn sync_loop_backs_off_while_leader_is_down_and_recovers_on_restart() {
    let leader = ReplLeader::with_retention(LeaderParts::new(), 256);
    leader
        .parts()
        .offline
        .write(|s| {
            s.create_table(
                "events",
                TableConfig::new(Schema::of(&[("n", ValueType::Int)])),
            )
        })
        .unwrap();

    let handle = start(
        leader.engine(fixed_clock(now_ts())),
        serve_config("127.0.0.1:0"),
    )
    .unwrap();
    let addr = handle.addr().to_string();

    let follower = Arc::new(Follower::bootstrap(&addr).unwrap());
    let metrics = Arc::new(ServingMetrics::new());
    follower.attach_metrics(Arc::clone(&metrics));
    let sync = follower.start_sync(Duration::from_millis(5));

    // Healthy loop: a publish lands on the follower.
    leader
        .parts()
        .offline
        .write(|s| s.append("events", &[Value::Int(1)]))
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while follower.applied_epoch() != leader.log().last_seq() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(follower.applied_epoch(), leader.log().last_seq());
    assert_eq!(metrics.repl_consecutive_failures(), 0);

    // Kill the leader's server. The loop must start failing — and the
    // failure streak must show up in the exported metrics.
    handle.shutdown();
    let deadline = Instant::now() + Duration::from_secs(10);
    while metrics.repl_consecutive_failures() < 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        metrics.repl_consecutive_failures() >= 2,
        "failure streak never exported; loop may be wedged"
    );

    // Leader comes back on the same address with more data published
    // while it was "down" (state survives; only the server died).
    leader
        .parts()
        .offline
        .write(|s| s.append("events", &[Value::Int(2)]))
        .unwrap();
    let handle = start(leader.engine(fixed_clock(now_ts())), serve_config(&addr)).unwrap();

    // The backed-off loop reconnects (within its capped delay), drains
    // the missed delta, and the failure streak resets.
    let deadline = Instant::now() + Duration::from_secs(10);
    while (follower.applied_epoch() != leader.log().last_seq()
        || metrics.repl_consecutive_failures() != 0)
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        follower.applied_epoch(),
        leader.log().last_seq(),
        "follower never caught up after leader restart"
    );
    assert_eq!(
        metrics.repl_consecutive_failures(),
        0,
        "failure streak must reset after recovery"
    );
    assert_eq!(
        follower.offline().read().value.num_rows("events").unwrap(),
        2
    );

    sync.stop();
    handle.shutdown();
}
