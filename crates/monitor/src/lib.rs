//! # fstore-monitor
//!
//! Model monitoring and maintenance (paper §2.2.3 for tabular features,
//! §3.1.3 for embeddings):
//!
//! * [`drift`] — reference-vs-live drift detection. Tabular detectors (KS,
//!   PSI, chi-square) and embedding-aware detectors (mean-cosine shift,
//!   MMD) live side by side because E10's point is that the former are
//!   blind to semantic drift;
//! * [`mmd`] — maximum mean discrepancy with an RBF kernel;
//! * [`skew`] — training/serving skew: the offline distribution a model was
//!   trained on vs the live values the online store is serving;
//! * [`slices`] — fine-grained subpopulation analysis (Robustness-Gym
//!   style): user-defined slice functions plus automatic slice discovery;
//! * [`patch`] — acting on what monitoring finds: targeted augmentation,
//!   slice reweighting, a weak-supervision label model, and **embedding
//!   patching** (fix the embedding once, every downstream consumer heals —
//!   the paper's product-consistency argument).

pub mod drift;
pub mod mmd;
pub mod patch;
pub mod skew;
pub mod slices;

pub use drift::{DriftAlert, DriftMonitor, DriftReport, EmbeddingDriftMonitor};
pub use mmd::mmd_rbf;
pub use patch::{augment_slice, reweight_slice, EmbeddingPatcher, LabelModel};
pub use skew::{skew_report, SkewReport};
pub use slices::{discover_slices, SliceMetrics, SliceSpec};
