//! Training/serving skew (paper §2.2.3: "critical model metrics such as
//! training-deployment data skew"): compare the offline distribution a
//! model trained on against the values the online store is serving now.

use crate::drift::{DriftAlert, DriftMonitor, DriftReport, DriftThresholds};
use fstore_common::{FsError, Result, Value};
use fstore_storage::{OfflineStore, OnlineStore, ScanRequest};

/// Skew check result for one feature.
#[derive(Debug, Clone)]
pub struct SkewReport {
    pub feature: String,
    pub training_rows: usize,
    pub serving_rows: usize,
    pub reports: Vec<DriftReport>,
    pub alert: DriftAlert,
}

/// Compare a feature's offline training log (`feat__<name>_v<version>`)
/// against the live values currently served from the online store.
pub fn skew_report(
    offline: &OfflineStore,
    online: &OnlineStore,
    feature: &str,
    version: u32,
    group: &str,
    thresholds: DriftThresholds,
) -> Result<SkewReport> {
    let table = format!("feat__{feature}_v{version}");
    let training: Vec<f64> = offline
        .column_values(&table, "value", &ScanRequest::all())?
        .iter()
        .filter_map(Value::as_f64)
        .collect();
    if training.len() < 20 {
        return Err(FsError::Monitor(format!(
            "not enough training history for `{feature}` ({} rows)",
            training.len()
        )));
    }
    let serving: Vec<f64> = online
        .feature_snapshot(group, feature)
        .iter()
        .filter_map(|(_, e)| e.value.as_f64())
        .collect();
    if serving.is_empty() {
        return Err(FsError::Monitor(format!(
            "feature `{feature}` is not being served"
        )));
    }
    let monitor = DriftMonitor::fit(feature, &training, thresholds)?;
    let reports = monitor.check(&serving)?;
    let alert = reports
        .iter()
        .map(|r| r.alert)
        .max()
        .unwrap_or(DriftAlert::Ok);
    Ok(SkewReport {
        feature: feature.to_string(),
        training_rows: training.len(),
        serving_rows: serving.len(),
        reports,
        alert,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fstore_common::{EntityKey, FieldDef, Rng, Schema, Timestamp, ValueType, Xoshiro256};
    use fstore_storage::TableConfig;

    fn feature_log_schema() -> Schema {
        Schema::new(vec![
            FieldDef::not_null("entity", ValueType::Str),
            FieldDef::not_null("ts", ValueType::Timestamp),
            FieldDef::new("value", ValueType::Float),
        ])
        .unwrap()
    }

    fn setup(offline_mean: f64, online_mean: f64) -> (OfflineStore, OnlineStore) {
        let mut off = OfflineStore::new();
        off.create_table(
            "feat__score_v1",
            TableConfig::new(feature_log_schema()).with_time_column("ts"),
        )
        .unwrap();
        let mut rng = Xoshiro256::seeded(2);
        for i in 0..1000 {
            off.append(
                "feat__score_v1",
                &[
                    Value::from(format!("u{i}")),
                    Value::Timestamp(Timestamp::millis(i)),
                    Value::Float(rng.normal() + offline_mean),
                ],
            )
            .unwrap();
        }
        let online = OnlineStore::default();
        for i in 0..800 {
            online.put(
                "user",
                &EntityKey::new(format!("u{i}")),
                "score",
                Value::Float(rng.normal() + online_mean),
                Timestamp::millis(1_000),
            );
        }
        (off, online)
    }

    #[test]
    fn no_skew_is_quiet() {
        let (off, online) = setup(5.0, 5.0);
        let r = skew_report(
            &off,
            &online,
            "score",
            1,
            "user",
            DriftThresholds::default(),
        )
        .unwrap();
        assert_eq!(r.alert, DriftAlert::Ok);
        assert_eq!(r.training_rows, 1000);
        assert_eq!(r.serving_rows, 800);
    }

    #[test]
    fn skew_is_flagged() {
        let (off, online) = setup(5.0, 9.0);
        let r = skew_report(
            &off,
            &online,
            "score",
            1,
            "user",
            DriftThresholds::default(),
        )
        .unwrap();
        assert_eq!(r.alert, DriftAlert::Critical);
    }

    #[test]
    fn missing_serving_side_errors() {
        let (off, _unused) = setup(5.0, 5.0);
        let empty = OnlineStore::default();
        assert!(skew_report(&off, &empty, "score", 1, "user", DriftThresholds::default()).is_err());
    }

    #[test]
    fn missing_training_side_errors() {
        let online = OnlineStore::default();
        online.put(
            "user",
            &EntityKey::new("u"),
            "score",
            Value::Float(1.0),
            Timestamp::EPOCH,
        );
        let off = OfflineStore::new();
        assert!(skew_report(
            &off,
            &online,
            "score",
            1,
            "user",
            DriftThresholds::default()
        )
        .is_err());
    }
}
