//! Fine-grained subpopulation (slice) analysis — the Robustness-Gym-style
//! monitoring of paper §3.1.3: users define slice functions, the system
//! also *discovers* underperforming slices over discrete metadata, and
//! slices are ranked by their accuracy gap against the overall population.

use fstore_common::{FsError, Result};
use std::collections::BTreeMap;

/// A named subpopulation: row indices into an evaluation set.
#[derive(Debug, Clone)]
pub struct SliceSpec {
    pub name: String,
    pub indices: Vec<usize>,
}

impl SliceSpec {
    /// Build from a predicate over per-row metadata.
    pub fn from_predicate<T>(
        name: impl Into<String>,
        rows: &[T],
        pred: impl Fn(&T) -> bool,
    ) -> Self {
        SliceSpec {
            name: name.into(),
            indices: rows
                .iter()
                .enumerate()
                .filter_map(|(i, r)| pred(r).then_some(i))
                .collect(),
        }
    }
}

/// Per-slice performance relative to the full population.
#[derive(Debug, Clone)]
pub struct SliceMetrics {
    pub name: String,
    pub support: usize,
    pub accuracy: f64,
    pub overall_accuracy: f64,
    /// `overall − slice` (positive = slice underperforms).
    pub gap: f64,
}

/// Evaluate explicit slices against predictions.
pub fn slice_metrics(
    truth: &[usize],
    preds: &[usize],
    slices: &[SliceSpec],
) -> Result<Vec<SliceMetrics>> {
    if truth.len() != preds.len() || truth.is_empty() {
        return Err(FsError::Monitor(
            "aligned non-empty truth/preds required".into(),
        ));
    }
    let overall =
        truth.iter().zip(preds).filter(|(t, p)| t == p).count() as f64 / truth.len() as f64;
    slices
        .iter()
        .map(|s| {
            if s.indices.is_empty() {
                return Err(FsError::Monitor(format!("slice `{}` is empty", s.name)));
            }
            let mut hit = 0usize;
            for &i in &s.indices {
                if i >= truth.len() {
                    return Err(FsError::Monitor(format!(
                        "slice `{}` index {i} out of range",
                        s.name
                    )));
                }
                if truth[i] == preds[i] {
                    hit += 1;
                }
            }
            let acc = hit as f64 / s.indices.len() as f64;
            Ok(SliceMetrics {
                name: s.name.clone(),
                support: s.indices.len(),
                accuracy: acc,
                overall_accuracy: overall,
                gap: overall - acc,
            })
        })
        .collect()
}

/// Automatic slice discovery over discrete metadata columns: every
/// single-value slice and every two-column conjunction with support ≥
/// `min_support`, ranked by accuracy gap (worst first).
pub fn discover_slices(
    metadata: &[(String, Vec<String>)],
    truth: &[usize],
    preds: &[usize],
    min_support: usize,
) -> Result<Vec<SliceMetrics>> {
    if metadata.is_empty() {
        return Err(FsError::Monitor("no metadata columns".into()));
    }
    let n = truth.len();
    if n == 0 || preds.len() != n || metadata.iter().any(|(_, col)| col.len() != n) {
        return Err(FsError::Monitor(
            "metadata/labels must align and be non-empty".into(),
        ));
    }
    if min_support == 0 {
        return Err(FsError::Monitor("min_support must be positive".into()));
    }

    let mut specs: Vec<SliceSpec> = Vec::new();
    // order 1: column = value
    for (name, col) in metadata {
        let mut groups: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, v) in col.iter().enumerate() {
            groups.entry(v).or_default().push(i);
        }
        for (value, indices) in groups {
            if indices.len() >= min_support {
                specs.push(SliceSpec {
                    name: format!("{name}={value}"),
                    indices,
                });
            }
        }
    }
    // order 2: conjunctions of two different columns
    for a in 0..metadata.len() {
        for b in a + 1..metadata.len() {
            let (na, ca) = &metadata[a];
            let (nb, cb) = &metadata[b];
            let mut groups: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
            for i in 0..n {
                groups.entry((&ca[i], &cb[i])).or_default().push(i);
            }
            for ((va, vb), indices) in groups {
                if indices.len() >= min_support {
                    specs.push(SliceSpec {
                        name: format!("{na}={va} & {nb}={vb}"),
                        indices,
                    });
                }
            }
        }
    }

    let mut metrics = slice_metrics(truth, preds, &specs)?;
    metrics.sort_by(|x, y| y.gap.total_cmp(&x.gap).then_with(|| x.name.cmp(&y.name)));
    Ok(metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 100 rows; city=sf rows 0..50, nyc 50..100; model fails on nyc+night.
    type Fixture = (Vec<(String, Vec<String>)>, Vec<usize>, Vec<usize>);

    fn fixture() -> Fixture {
        let n = 100;
        let city: Vec<String> = (0..n)
            .map(|i| if i < 50 { "sf".into() } else { "nyc".into() })
            .collect();
        let time: Vec<String> = (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    "day".into()
                } else {
                    "night".into()
                }
            })
            .collect();
        let truth = vec![1usize; n];
        let preds: Vec<usize> = (0..n)
            .map(|i| {
                // nyc at night: always wrong; everything else right
                if i >= 50 && i % 2 == 1 {
                    0
                } else {
                    1
                }
            })
            .collect();
        (
            vec![("city".into(), city), ("time".into(), time)],
            truth,
            preds,
        )
    }

    #[test]
    fn explicit_slice_metrics() {
        let (_, truth, preds) = fixture();
        let slices = vec![
            SliceSpec {
                name: "first_half".into(),
                indices: (0..50).collect(),
            },
            SliceSpec {
                name: "second_half".into(),
                indices: (50..100).collect(),
            },
        ];
        let m = slice_metrics(&truth, &preds, &slices).unwrap();
        assert_eq!(m[0].accuracy, 1.0);
        assert_eq!(m[1].accuracy, 0.5);
        assert!((m[1].gap - 0.25).abs() < 1e-12, "overall 0.75 − slice 0.5");
    }

    #[test]
    fn from_predicate_builder() {
        let rows = vec![1, 5, 2, 8];
        let s = SliceSpec::from_predicate("big", &rows, |&x| x > 3);
        assert_eq!(s.indices, vec![1, 3]);
    }

    #[test]
    fn discovery_finds_the_planted_slice() {
        let (meta, truth, preds) = fixture();
        let found = discover_slices(&meta, &truth, &preds, 10).unwrap();
        // the worst slice must be the planted conjunction
        assert_eq!(found[0].name, "city=nyc & time=night");
        assert_eq!(found[0].accuracy, 0.0);
        assert_eq!(found[0].support, 25);
        assert!(found[0].gap > 0.7);
        // one-feature parents rank below the conjunction
        let nyc = found.iter().find(|m| m.name == "city=nyc").unwrap();
        assert!(nyc.gap < found[0].gap);
    }

    #[test]
    fn min_support_prunes() {
        let (meta, truth, preds) = fixture();
        let found = discover_slices(&meta, &truth, &preds, 30).unwrap();
        assert!(found.iter().all(|m| m.support >= 30));
        assert!(
            !found.iter().any(|m| m.name.contains('&')),
            "conjunctions have support 25"
        );
    }

    #[test]
    fn validation() {
        let (meta, truth, preds) = fixture();
        assert!(discover_slices(&[], &truth, &preds, 5).is_err());
        assert!(discover_slices(&meta, &truth, &preds, 0).is_err());
        assert!(discover_slices(&meta, &truth[..50], &preds, 5).is_err());
        assert!(slice_metrics(
            &truth,
            &preds,
            &[SliceSpec {
                name: "e".into(),
                indices: vec![]
            }]
        )
        .is_err());
        assert!(slice_metrics(
            &truth,
            &preds,
            &[SliceSpec {
                name: "oob".into(),
                indices: vec![999]
            }]
        )
        .is_err());
    }
}
