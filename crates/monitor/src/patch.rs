//! Patching: acting on what monitoring found (paper §3.1.3 and §4,
//! "End-to-End Model Patching Through Data").
//!
//! Three data-management levers from Orr et al.'s proof of concept:
//!
//! * **targeted augmentation** — oversample an underperforming slice with
//!   feature-space jitter (ARDA/model-patching style);
//! * **slice reweighting** — per-example weights for trainers that support
//!   them (slice-based learning's cheap cousin);
//! * **weak supervision** — a Snorkel-style label model that denoises
//!   multiple noisy labeling sources into training labels;
//!
//! plus the embedding-ecosystem lever the paper argues is special:
//! **embedding patching** — correct the embedding rows of the bad slice
//! once and republish, so *every* downstream consumer heals together
//! (product consistency, E12).

use fstore_common::{FsError, Result, Rng, Timestamp, Xoshiro256};
use fstore_embed::store::EmbeddingProvenance;
use fstore_embed::EmbeddingStore;

/// Oversample `slice` rows `factor`× with Gaussian jitter of `jitter` per
/// dimension; returns the augmented `(xs, ys)` (originals first).
pub fn augment_slice(
    xs: &[Vec<f64>],
    ys: &[usize],
    slice: &[usize],
    factor: usize,
    jitter: f64,
    seed: u64,
) -> Result<(Vec<Vec<f64>>, Vec<usize>)> {
    if xs.len() != ys.len() || xs.is_empty() {
        return Err(FsError::Monitor(
            "aligned non-empty training data required".into(),
        ));
    }
    if factor == 0 {
        return Err(FsError::Monitor(
            "augmentation factor must be positive".into(),
        ));
    }
    if jitter < 0.0 {
        return Err(FsError::Monitor("jitter must be non-negative".into()));
    }
    let mut rng = Xoshiro256::seeded(seed);
    let mut out_x = xs.to_vec();
    let mut out_y = ys.to_vec();
    for &i in slice {
        if i >= xs.len() {
            return Err(FsError::Monitor(format!("slice index {i} out of range")));
        }
        for _ in 0..factor {
            let x: Vec<f64> = xs[i].iter().map(|&v| v + rng.normal() * jitter).collect();
            out_x.push(x);
            out_y.push(ys[i]);
        }
    }
    Ok((out_x, out_y))
}

/// Per-example weights: `weight` on slice rows, 1.0 elsewhere.
pub fn reweight_slice(n: usize, slice: &[usize], weight: f64) -> Result<Vec<f64>> {
    if weight <= 0.0 || !weight.is_finite() {
        return Err(FsError::Monitor(
            "weight must be positive and finite".into(),
        ));
    }
    let mut w = vec![1.0; n];
    for &i in slice {
        if i >= n {
            return Err(FsError::Monitor(format!("slice index {i} out of range")));
        }
        w[i] = weight;
    }
    Ok(w)
}

/// A Snorkel-style label model over noisy binary labeling sources.
///
/// Sources vote `Some(class)` or abstain (`None`). The model estimates
/// per-source accuracies from agreement with the current consensus
/// (hard-EM for a few rounds, initialized at majority vote) and produces
/// weighted-vote probabilistic labels.
#[derive(Debug, Clone)]
pub struct LabelModel {
    pub source_accuracy: Vec<f64>,
    num_classes: usize,
}

impl LabelModel {
    /// Fit on a votes matrix: `votes[source][example]`.
    pub fn fit(votes: &[Vec<Option<usize>>], num_classes: usize, rounds: usize) -> Result<Self> {
        if votes.is_empty() || votes[0].is_empty() {
            return Err(FsError::Monitor(
                "label model needs sources and examples".into(),
            ));
        }
        let n = votes[0].len();
        if votes.iter().any(|v| v.len() != n) {
            return Err(FsError::Monitor("ragged votes matrix".into()));
        }
        if num_classes < 2 {
            return Err(FsError::Monitor("need at least 2 classes".into()));
        }
        for v in votes.iter().flatten().flatten() {
            if *v >= num_classes {
                return Err(FsError::Monitor(format!("vote {v} out of class range")));
            }
        }

        let mut model = LabelModel {
            source_accuracy: vec![0.7; votes.len()],
            num_classes,
        };
        for _ in 0..rounds.max(1) {
            let consensus: Vec<Option<usize>> = (0..n)
                .map(|i| model.predict_one(votes, i).map(|(c, _)| c))
                .collect();
            for (s, svotes) in votes.iter().enumerate() {
                let mut agree = 1.0f64; // +1 smoothing
                let mut total = 2.0f64;
                for (v, c) in svotes.iter().zip(&consensus) {
                    if let (Some(v), Some(c)) = (v, c) {
                        total += 1.0;
                        if v == c {
                            agree += 1.0;
                        }
                    }
                }
                // clamp away from 0.5 degeneracy and 1.0 overconfidence
                model.source_accuracy[s] = (agree / total).clamp(0.05, 0.95);
            }
        }
        Ok(model)
    }

    /// Weighted-vote label for example `i`: `(class, confidence)`; `None`
    /// when every source abstained.
    fn predict_one(&self, votes: &[Vec<Option<usize>>], i: usize) -> Option<(usize, f64)> {
        let mut scores = vec![0.0f64; self.num_classes];
        let mut any = false;
        for (s, svotes) in votes.iter().enumerate() {
            if let Some(c) = svotes[i] {
                any = true;
                let a = self.source_accuracy[s];
                // log-odds weight of a source with accuracy a
                let w = (a / (1.0 - a)).ln();
                scores[c] += w;
            }
        }
        if !any {
            return None;
        }
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(c, _)| c)
            .unwrap();
        let total: f64 = scores.iter().map(|s| s.exp()).sum();
        Some((best, scores[best].exp() / total))
    }

    /// Probabilistic labels for the whole matrix.
    pub fn predict(&self, votes: &[Vec<Option<usize>>]) -> Result<Vec<Option<(usize, f64)>>> {
        if votes.len() != self.source_accuracy.len() {
            return Err(FsError::Monitor("source count mismatch".into()));
        }
        let n = votes[0].len();
        Ok((0..n).map(|i| self.predict_one(votes, i)).collect())
    }

    /// Plain majority vote baseline (`None` on full abstention; ties to the
    /// lower class id).
    pub fn majority_vote(votes: &[Vec<Option<usize>>], num_classes: usize) -> Vec<Option<usize>> {
        let n = votes.first().map_or(0, Vec::len);
        (0..n)
            .map(|i| {
                let mut counts = vec![0usize; num_classes];
                let mut any = false;
                for svotes in votes {
                    if let Some(c) = svotes[i] {
                        counts[c] += 1;
                        any = true;
                    }
                }
                any.then(|| {
                    counts
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
                        .map(|(c, _)| c)
                        .unwrap()
                })
            })
            .collect()
    }
}

/// Patches embedding rows and republishes — the §3.1.3 / E12 mechanism.
pub struct EmbeddingPatcher {
    /// Blend factor: patched = (1−α)·old + α·target.
    pub alpha: f32,
}

impl Default for EmbeddingPatcher {
    fn default() -> Self {
        EmbeddingPatcher { alpha: 0.8 }
    }
}

impl EmbeddingPatcher {
    /// Move each `bad_keys` row toward the centroid of `exemplar_keys`
    /// (well-behaved entities of the same semantic class) and publish the
    /// result as a new version of `name` with `parent` provenance.
    ///
    /// Returns the new qualified version (`name@vN`).
    pub fn patch_toward_exemplars(
        &self,
        store: &mut EmbeddingStore,
        name: &str,
        bad_keys: &[String],
        exemplar_keys: &[String],
        now: Timestamp,
    ) -> Result<String> {
        if !(0.0..=1.0).contains(&self.alpha) {
            return Err(FsError::Monitor("alpha must be in [0,1]".into()));
        }
        if bad_keys.is_empty() || exemplar_keys.is_empty() {
            return Err(FsError::Monitor(
                "need both bad keys and exemplar keys".into(),
            ));
        }
        let current = store.latest(name)?;
        let parent_version = current.version;
        let table = &current.table;
        let dim = table.dim();

        // exemplar centroid
        let mut centroid = vec![0.0f32; dim];
        for k in exemplar_keys {
            let v = table
                .get(k)
                .ok_or_else(|| FsError::not_found("exemplar embedding", k.clone()))?;
            for (c, &x) in centroid.iter_mut().zip(v) {
                *c += x;
            }
        }
        for c in &mut centroid {
            *c /= exemplar_keys.len() as f32;
        }

        // copy-on-write patch
        let mut patched = table.clone();
        for k in bad_keys {
            let old = patched
                .get(k)
                .ok_or_else(|| FsError::not_found("embedding to patch", k.clone()))?
                .to_vec();
            let new: Vec<f32> = old
                .iter()
                .zip(&centroid)
                .map(|(&o, &c)| (1.0 - self.alpha) * o + self.alpha * c)
                .collect();
            patched.replace(k, new)?;
        }

        let provenance = EmbeddingProvenance {
            trainer: "patch".into(),
            config: format!("{{\"alpha\":{}}}", self.alpha),
            corpus_hash: current.provenance.corpus_hash,
            seed: current.provenance.seed,
            parent: Some(parent_version),
            notes: format!(
                "patched {} rows toward {} exemplars",
                bad_keys.len(),
                exemplar_keys.len()
            ),
        };
        store.publish(name, patched, provenance, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fstore_embed::EmbeddingTable;

    #[test]
    fn augment_grows_only_the_slice() {
        let xs = vec![vec![0.0], vec![1.0], vec![2.0]];
        let ys = vec![0, 1, 1];
        let (ax, ay) = augment_slice(&xs, &ys, &[2], 3, 0.0, 1).unwrap();
        assert_eq!(ax.len(), 6);
        assert_eq!(&ax[3..], &[vec![2.0], vec![2.0], vec![2.0]]);
        assert_eq!(&ay[3..], &[1, 1, 1]);
    }

    #[test]
    fn augment_jitters_deterministically() {
        let xs = vec![vec![0.0; 4]];
        let ys = vec![0];
        let (a, _) = augment_slice(&xs, &ys, &[0], 2, 0.5, 9).unwrap();
        let (b, _) = augment_slice(&xs, &ys, &[0], 2, 0.5, 9).unwrap();
        assert_eq!(a, b);
        assert_ne!(a[1], a[2], "distinct jitter per copy");
        assert!(a[1].iter().all(|x| x.abs() < 5.0));
    }

    #[test]
    fn augment_validation() {
        let xs = vec![vec![0.0]];
        assert!(augment_slice(&xs, &[0, 1], &[0], 1, 0.1, 0).is_err());
        assert!(augment_slice(&xs, &[0], &[5], 1, 0.1, 0).is_err());
        assert!(augment_slice(&xs, &[0], &[0], 0, 0.1, 0).is_err());
        assert!(augment_slice(&xs, &[0], &[0], 1, -0.1, 0).is_err());
    }

    #[test]
    fn reweight_basics() {
        let w = reweight_slice(4, &[1, 3], 5.0).unwrap();
        assert_eq!(w, vec![1.0, 5.0, 1.0, 5.0]);
        assert!(reweight_slice(2, &[9], 2.0).is_err());
        assert!(reweight_slice(2, &[0], 0.0).is_err());
    }

    /// 3 sources over 60 examples: two 90%-accurate, one adversarial (30%).
    fn noisy_votes(seed: u64) -> (Vec<Vec<Option<usize>>>, Vec<usize>) {
        let mut rng = Xoshiro256::seeded(seed);
        let truth: Vec<usize> = (0..60).map(|_| rng.below(2) as usize).collect();
        let source = |acc: f64, rng: &mut Xoshiro256| -> Vec<Option<usize>> {
            truth
                .iter()
                .map(|&t| {
                    if rng.chance(0.1) {
                        None // abstain
                    } else if rng.chance(acc) {
                        Some(t)
                    } else {
                        Some(1 - t)
                    }
                })
                .collect()
        };
        let votes = vec![
            source(0.9, &mut rng),
            source(0.9, &mut rng),
            source(0.3, &mut rng),
        ];
        (votes, truth)
    }

    #[test]
    fn label_model_learns_source_quality() {
        let (votes, truth) = noisy_votes(3);
        let model = LabelModel::fit(&votes, 2, 5).unwrap();
        assert!(
            model.source_accuracy[0] > 0.75,
            "{:?}",
            model.source_accuracy
        );
        assert!(model.source_accuracy[1] > 0.75);
        assert!(
            model.source_accuracy[2] < 0.5,
            "adversarial source must be downweighted"
        );

        let labels = model.predict(&votes).unwrap();
        let mut lm_correct = 0;
        let mut mv_correct = 0;
        let mv = LabelModel::majority_vote(&votes, 2);
        let mut n = 0;
        for i in 0..truth.len() {
            if let (Some((c, conf)), Some(m)) = (labels[i], mv[i]) {
                n += 1;
                assert!((0.0..=1.0).contains(&conf));
                if c == truth[i] {
                    lm_correct += 1;
                }
                if m == truth[i] {
                    mv_correct += 1;
                }
            }
        }
        assert!(n > 30);
        assert!(
            lm_correct >= mv_correct,
            "label model ({lm_correct}) must not lose to majority vote ({mv_correct})"
        );
        assert!(lm_correct as f64 / n as f64 > 0.8);
    }

    #[test]
    fn label_model_validation() {
        assert!(LabelModel::fit(&[], 2, 3).is_err());
        assert!(LabelModel::fit(&[vec![]], 2, 3).is_err());
        assert!(LabelModel::fit(&[vec![Some(0)], vec![Some(0), Some(1)]], 2, 3).is_err());
        assert!(LabelModel::fit(&[vec![Some(5)]], 2, 3).is_err());
        assert!(LabelModel::fit(&[vec![Some(0)]], 1, 3).is_err());
        let m = LabelModel::fit(&[vec![Some(0), None]], 2, 1).unwrap();
        assert_eq!(m.predict(&[vec![Some(0), None]]).unwrap()[1], None);
        assert!(m.predict(&[vec![Some(0)], vec![Some(0)]]).is_err());
    }

    #[test]
    fn embedding_patch_publishes_new_version() {
        let mut store = EmbeddingStore::new();
        let mut t = EmbeddingTable::new(2).unwrap();
        t.insert("bad", vec![-1.0, 0.0]).unwrap();
        t.insert("good1", vec![1.0, 0.0]).unwrap();
        t.insert("good2", vec![1.0, 0.2]).unwrap();
        store
            .publish("ent", t, EmbeddingProvenance::default(), Timestamp::EPOCH)
            .unwrap();

        let patcher = EmbeddingPatcher { alpha: 1.0 };
        let q = patcher
            .patch_toward_exemplars(
                &mut store,
                "ent",
                &["bad".into()],
                &["good1".into(), "good2".into()],
                Timestamp::millis(5),
            )
            .unwrap();
        assert_eq!(q, "ent@v2");
        let v2 = store.latest("ent").unwrap();
        assert_eq!(v2.provenance.parent, Some(1));
        assert_eq!(v2.provenance.trainer, "patch");
        let patched = v2.table.get("bad").unwrap();
        assert!((patched[0] - 1.0).abs() < 1e-6);
        assert!((patched[1] - 0.1).abs() < 1e-6);
        // v1 untouched (copy-on-write)
        assert_eq!(
            store.get("ent", 1).unwrap().table.get("bad"),
            Some(&[-1.0, 0.0][..])
        );
        // unchanged rows carried over
        assert_eq!(v2.table.get("good1"), Some(&[1.0, 0.0][..]));
    }

    #[test]
    fn embedding_patch_validation() {
        let mut store = EmbeddingStore::new();
        let mut t = EmbeddingTable::new(2).unwrap();
        t.insert("a", vec![0.0, 0.0]).unwrap();
        store
            .publish("e", t, EmbeddingProvenance::default(), Timestamp::EPOCH)
            .unwrap();
        let p = EmbeddingPatcher::default();
        assert!(p
            .patch_toward_exemplars(&mut store, "e", &[], &["a".into()], Timestamp::EPOCH)
            .is_err());
        assert!(p
            .patch_toward_exemplars(
                &mut store,
                "e",
                &["ghost".into()],
                &["a".into()],
                Timestamp::EPOCH
            )
            .is_err());
        assert!(p
            .patch_toward_exemplars(
                &mut store,
                "ghost",
                &["a".into()],
                &["a".into()],
                Timestamp::EPOCH
            )
            .is_err());
        let bad_alpha = EmbeddingPatcher { alpha: 2.0 };
        assert!(bad_alpha
            .patch_toward_exemplars(
                &mut store,
                "e",
                &["a".into()],
                &["a".into()],
                Timestamp::EPOCH
            )
            .is_err());
    }
}
