//! Reference-vs-live drift monitors.
//!
//! A monitor is fitted on a *reference window* (the distribution the model
//! was trained/validated on) and then fed live windows. Tabular monitors
//! run KS + PSI per numeric feature; the embedding monitor runs
//! mean-cosine-shift + MMD on vectors. E10 shows why both exist: semantic
//! drift can leave every marginal untouched.

use crate::mmd::mmd_rbf;
use fstore_common::stats::{ks_p_value, ks_statistic, population_stability_index, Histogram};
use fstore_common::{FsError, Result};
use fstore_models::linalg::cosine;

/// Alert severity, thresholded on the detector statistic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DriftAlert {
    Ok,
    Warning,
    Critical,
}

/// One detector's output for one window.
#[derive(Debug, Clone)]
pub struct DriftReport {
    pub feature: String,
    pub detector: &'static str,
    pub statistic: f64,
    pub p_value: Option<f64>,
    pub alert: DriftAlert,
}

/// Thresholds for the tabular monitor.
#[derive(Debug, Clone, Copy)]
pub struct DriftThresholds {
    /// KS p-value below which we warn / go critical.
    pub ks_warn_p: f64,
    pub ks_critical_p: f64,
    /// PSI levels (industry: 0.1 / 0.25).
    pub psi_warn: f64,
    pub psi_critical: f64,
}

impl Default for DriftThresholds {
    fn default() -> Self {
        DriftThresholds {
            ks_warn_p: 0.05,
            ks_critical_p: 0.001,
            psi_warn: 0.1,
            psi_critical: 0.25,
        }
    }
}

/// Per-feature tabular drift monitor (KS + PSI against a frozen reference).
pub struct DriftMonitor {
    feature: String,
    reference: Vec<f64>,
    reference_hist: Histogram,
    thresholds: DriftThresholds,
}

impl DriftMonitor {
    /// Fit on the reference sample (≥ 20 points to be meaningful).
    pub fn fit(
        feature: impl Into<String>,
        reference: &[f64],
        thresholds: DriftThresholds,
    ) -> Result<Self> {
        if reference.len() < 20 {
            return Err(FsError::Monitor(format!(
                "reference window too small ({} < 20)",
                reference.len()
            )));
        }
        Ok(DriftMonitor {
            feature: feature.into(),
            reference_hist: Histogram::fit(reference, 10)?,
            reference: reference.to_vec(),
            thresholds,
        })
    }

    /// Check a live window; returns one report per detector.
    pub fn check(&self, live: &[f64]) -> Result<Vec<DriftReport>> {
        if live.is_empty() {
            return Err(FsError::Monitor("empty live window".into()));
        }
        let mut out = Vec::with_capacity(2);

        // KS
        let ks = ks_statistic(&self.reference, live)?;
        let p = ks_p_value(ks, self.reference.len(), live.len());
        let alert = if p < self.thresholds.ks_critical_p {
            DriftAlert::Critical
        } else if p < self.thresholds.ks_warn_p {
            DriftAlert::Warning
        } else {
            DriftAlert::Ok
        };
        out.push(DriftReport {
            feature: self.feature.clone(),
            detector: "ks",
            statistic: ks,
            p_value: Some(p),
            alert,
        });

        // PSI over the reference histogram geometry
        let mut live_hist = self.reference_hist.empty_like();
        live_hist.add_all(live);
        let psi = population_stability_index(
            &self.reference_hist.proportions_with_tails(1e-3),
            &live_hist.proportions_with_tails(1e-3),
        )?;
        let alert = if psi > self.thresholds.psi_critical {
            DriftAlert::Critical
        } else if psi > self.thresholds.psi_warn {
            DriftAlert::Warning
        } else {
            DriftAlert::Ok
        };
        out.push(DriftReport {
            feature: self.feature.clone(),
            detector: "psi",
            statistic: psi,
            p_value: None,
            alert,
        });
        Ok(out)
    }

    /// Worst alert across detectors for a live window.
    pub fn alert_level(&self, live: &[f64]) -> Result<DriftAlert> {
        Ok(self
            .check(live)?
            .into_iter()
            .map(|r| r.alert)
            .max()
            .unwrap_or(DriftAlert::Ok))
    }
}

/// Thresholds for the embedding monitor.
#[derive(Debug, Clone, Copy)]
pub struct EmbeddingDriftThresholds {
    /// Mean cosine similarity of live mean-vector to reference mean-vector
    /// below which we warn / go critical.
    pub mean_cos_warn: f64,
    pub mean_cos_critical: f64,
    /// MMD² levels.
    pub mmd_warn: f64,
    pub mmd_critical: f64,
}

impl Default for EmbeddingDriftThresholds {
    fn default() -> Self {
        EmbeddingDriftThresholds {
            mean_cos_warn: 0.95,
            mean_cos_critical: 0.8,
            mmd_warn: 0.05,
            mmd_critical: 0.2,
        }
    }
}

/// Embedding-space drift monitor: mean-direction shift + MMD (paper §3.1:
/// "existing FS metrics such as null value count do not capture drifts or
/// changes in embeddings").
pub struct EmbeddingDriftMonitor {
    name: String,
    reference: Vec<Vec<f64>>,
    reference_mean: Vec<f64>,
    thresholds: EmbeddingDriftThresholds,
}

impl EmbeddingDriftMonitor {
    pub fn fit(
        name: impl Into<String>,
        reference: &[Vec<f64>],
        thresholds: EmbeddingDriftThresholds,
    ) -> Result<Self> {
        if reference.len() < 10 {
            return Err(FsError::Monitor(
                "embedding reference window too small".into(),
            ));
        }
        let d = reference[0].len();
        if d == 0 || reference.iter().any(|v| v.len() != d) {
            return Err(FsError::Monitor("ragged embedding reference".into()));
        }
        let mut mean = vec![0.0; d];
        for v in reference {
            for (m, &x) in mean.iter_mut().zip(v) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= reference.len() as f64;
        }
        Ok(EmbeddingDriftMonitor {
            name: name.into(),
            reference: reference.to_vec(),
            reference_mean: mean,
            thresholds,
        })
    }

    pub fn check(&self, live: &[Vec<f64>]) -> Result<Vec<DriftReport>> {
        if live.is_empty() {
            return Err(FsError::Monitor("empty live embedding window".into()));
        }
        let d = self.reference_mean.len();
        if live.iter().any(|v| v.len() != d) {
            return Err(FsError::Monitor("live embedding dim mismatch".into()));
        }
        let mut live_mean = vec![0.0; d];
        for v in live {
            for (m, &x) in live_mean.iter_mut().zip(v) {
                *m += x;
            }
        }
        for m in &mut live_mean {
            *m /= live.len() as f64;
        }
        let mean_cos = cosine(&self.reference_mean, &live_mean);
        let alert = if mean_cos < self.thresholds.mean_cos_critical {
            DriftAlert::Critical
        } else if mean_cos < self.thresholds.mean_cos_warn {
            DriftAlert::Warning
        } else {
            DriftAlert::Ok
        };
        let mut out = vec![DriftReport {
            feature: self.name.clone(),
            detector: "mean_cosine",
            statistic: mean_cos,
            p_value: None,
            alert,
        }];

        let mmd = mmd_rbf(&self.reference, live, None)?;
        let alert = if mmd > self.thresholds.mmd_critical {
            DriftAlert::Critical
        } else if mmd > self.thresholds.mmd_warn {
            DriftAlert::Warning
        } else {
            DriftAlert::Ok
        };
        out.push(DriftReport {
            feature: self.name.clone(),
            detector: "mmd",
            statistic: mmd,
            p_value: None,
            alert,
        });
        Ok(out)
    }

    pub fn alert_level(&self, live: &[Vec<f64>]) -> Result<DriftAlert> {
        Ok(self
            .check(live)?
            .into_iter()
            .map(|r| r.alert)
            .max()
            .unwrap_or(DriftAlert::Ok))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fstore_common::{Rng, Xoshiro256};

    fn normals(n: usize, mean: f64, seed: u64) -> Vec<f64> {
        let mut rng = Xoshiro256::seeded(seed);
        (0..n).map(|_| rng.normal() + mean).collect()
    }

    #[test]
    fn tabular_quiet_on_same_distribution() {
        let m =
            DriftMonitor::fit("fare", &normals(500, 0.0, 1), DriftThresholds::default()).unwrap();
        assert_eq!(
            m.alert_level(&normals(500, 0.0, 2)).unwrap(),
            DriftAlert::Ok
        );
    }

    #[test]
    fn tabular_alarms_on_shift() {
        let m =
            DriftMonitor::fit("fare", &normals(500, 0.0, 3), DriftThresholds::default()).unwrap();
        assert_eq!(
            m.alert_level(&normals(500, 2.0, 4)).unwrap(),
            DriftAlert::Critical
        );
        let reports = m.check(&normals(500, 2.0, 4)).unwrap();
        assert_eq!(reports.len(), 2);
        assert!(reports
            .iter()
            .any(|r| r.detector == "ks" && r.p_value.unwrap() < 0.001));
        assert!(reports
            .iter()
            .any(|r| r.detector == "psi" && r.statistic > 0.25));
    }

    #[test]
    fn tabular_warning_band() {
        let m = DriftMonitor::fit("f", &normals(2000, 0.0, 5), DriftThresholds::default()).unwrap();
        // modest shift → at least a warning, exact level depends on power
        let lvl = m.alert_level(&normals(2000, 0.15, 6)).unwrap();
        assert!(
            lvl >= DriftAlert::Warning,
            "small shift should at least warn: {lvl:?}"
        );
    }

    #[test]
    fn validation() {
        assert!(DriftMonitor::fit("f", &[1.0; 5], DriftThresholds::default()).is_err());
        let m = DriftMonitor::fit("f", &normals(50, 0.0, 7), DriftThresholds::default()).unwrap();
        assert!(m.check(&[]).is_err());
    }

    fn embed_sample(n: usize, d: usize, direction: f64, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = Xoshiro256::seeded(seed);
        (0..n)
            .map(|_| {
                let mut v: Vec<f64> = (0..d).map(|_| rng.normal() * 0.3).collect();
                v[0] += direction.cos() * 2.0;
                v[1] += direction.sin() * 2.0;
                v
            })
            .collect()
    }

    #[test]
    fn embedding_quiet_on_same() {
        let m = EmbeddingDriftMonitor::fit(
            "emb",
            &embed_sample(100, 4, 0.0, 8),
            EmbeddingDriftThresholds::default(),
        )
        .unwrap();
        assert_eq!(
            m.alert_level(&embed_sample(100, 4, 0.0, 9)).unwrap(),
            DriftAlert::Ok
        );
    }

    #[test]
    fn embedding_alarms_on_semantic_rotation() {
        let m = EmbeddingDriftMonitor::fit(
            "emb",
            &embed_sample(100, 4, 0.0, 10),
            EmbeddingDriftThresholds::default(),
        )
        .unwrap();
        // rotate the dominant direction 90°
        let lvl = m
            .alert_level(&embed_sample(100, 4, std::f64::consts::FRAC_PI_2, 11))
            .unwrap();
        assert_eq!(lvl, DriftAlert::Critical);
    }

    #[test]
    fn embedding_validation() {
        assert!(EmbeddingDriftMonitor::fit(
            "e",
            &embed_sample(5, 4, 0.0, 12),
            EmbeddingDriftThresholds::default()
        )
        .is_err());
        let m = EmbeddingDriftMonitor::fit(
            "e",
            &embed_sample(50, 4, 0.0, 13),
            EmbeddingDriftThresholds::default(),
        )
        .unwrap();
        assert!(m.check(&[]).is_err());
        assert!(m.check(&[vec![1.0; 3]]).is_err());
    }

    #[test]
    fn alert_ordering() {
        assert!(DriftAlert::Critical > DriftAlert::Warning);
        assert!(DriftAlert::Warning > DriftAlert::Ok);
    }
}
