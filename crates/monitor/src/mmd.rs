//! Maximum mean discrepancy with an RBF kernel — the distribution test that
//! works where per-dimension tests cannot: in embedding space.

use fstore_common::{FsError, Result};

/// Unbiased-ish (V-statistic) MMD² between samples `x` and `y` with an RBF
/// kernel. `bandwidth = None` uses the median heuristic over the pooled
/// pairwise distances. Returns a non-negative score; 0 ⇔ same distribution
/// (in the kernel's RKHS).
pub fn mmd_rbf(x: &[Vec<f64>], y: &[Vec<f64>], bandwidth: Option<f64>) -> Result<f64> {
    if x.is_empty() || y.is_empty() {
        return Err(FsError::Monitor("MMD requires non-empty samples".into()));
    }
    let d = x[0].len();
    if d == 0 || x.iter().chain(y).any(|v| v.len() != d) {
        return Err(FsError::Monitor(
            "MMD requires aligned non-empty dimensions".into(),
        ));
    }

    let gamma = match bandwidth {
        Some(b) => {
            if b <= 0.0 {
                return Err(FsError::Monitor("bandwidth must be positive".into()));
            }
            1.0 / (2.0 * b * b)
        }
        None => {
            let sigma = median_pairwise_distance(x, y);
            if sigma <= 0.0 {
                // all points identical → distributions identical
                return Ok(0.0);
            }
            1.0 / (2.0 * sigma * sigma)
        }
    };

    let k = |a: &[f64], b: &[f64]| (-gamma * sq_dist(a, b)).exp();
    let mean_kernel = |s: &[Vec<f64>], t: &[Vec<f64>]| -> f64 {
        let mut total = 0.0;
        for a in s {
            for b in t {
                total += k(a, b);
            }
        }
        total / (s.len() * t.len()) as f64
    };
    let mmd2 = mean_kernel(x, x) + mean_kernel(y, y) - 2.0 * mean_kernel(x, y);
    Ok(mmd2.max(0.0))
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Median pairwise Euclidean distance over a pooled subsample (the median
/// heuristic; subsampled to keep this O(1e6) pairs max).
fn median_pairwise_distance(x: &[Vec<f64>], y: &[Vec<f64>]) -> f64 {
    let pooled: Vec<&Vec<f64>> = x.iter().chain(y).collect();
    let cap = 200.min(pooled.len());
    let stride = pooled.len().div_ceil(cap);
    let sample: Vec<&Vec<f64>> = pooled.iter().step_by(stride).copied().collect();
    let mut dists = Vec::with_capacity(sample.len() * (sample.len() - 1) / 2);
    for i in 0..sample.len() {
        for j in i + 1..sample.len() {
            dists.push(sq_dist(sample[i], sample[j]).sqrt());
        }
    }
    if dists.is_empty() {
        return 0.0;
    }
    dists.sort_by(f64::total_cmp);
    dists[dists.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fstore_common::{Rng, Xoshiro256};

    fn gaussian_sample(n: usize, d: usize, mean: f64, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = Xoshiro256::seeded(seed);
        (0..n)
            .map(|_| (0..d).map(|_| rng.normal() + mean).collect())
            .collect()
    }

    #[test]
    fn same_distribution_is_near_zero() {
        let x = gaussian_sample(150, 4, 0.0, 1);
        let y = gaussian_sample(150, 4, 0.0, 2);
        let m = mmd_rbf(&x, &y, None).unwrap();
        assert!(m < 0.01, "null MMD {m}");
    }

    #[test]
    fn shifted_distribution_is_large() {
        let x = gaussian_sample(150, 4, 0.0, 3);
        let y = gaussian_sample(150, 4, 2.0, 4);
        let m = mmd_rbf(&x, &y, None).unwrap();
        assert!(m > 0.1, "shifted MMD {m}");
    }

    #[test]
    fn monotone_in_shift() {
        let x = gaussian_sample(100, 4, 0.0, 5);
        let small = mmd_rbf(&x, &gaussian_sample(100, 4, 0.5, 6), Some(1.0)).unwrap();
        let large = mmd_rbf(&x, &gaussian_sample(100, 4, 3.0, 7), Some(1.0)).unwrap();
        assert!(
            large > small,
            "MMD must grow with shift: {small} vs {large}"
        );
    }

    #[test]
    fn identical_points_zero() {
        let x = vec![vec![1.0, 2.0]; 10];
        assert_eq!(mmd_rbf(&x, &x, None).unwrap(), 0.0);
    }

    #[test]
    fn validation() {
        let x = vec![vec![1.0]];
        assert!(mmd_rbf(&[], &x, None).is_err());
        assert!(mmd_rbf(&x, &[], None).is_err());
        assert!(mmd_rbf(&x, &[vec![1.0, 2.0]], None).is_err());
        assert!(mmd_rbf(&x, &x, Some(0.0)).is_err());
    }

    #[test]
    fn detects_rotation_drift_that_marginals_miss() {
        // 2-D correlated Gaussian vs its 90°-rotated version: identical
        // per-dimension marginals, different joint distribution.
        let mut rng = Xoshiro256::seeded(8);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..200 {
            let a = rng.normal();
            let b = rng.normal() * 0.1;
            x.push(vec![a + b, a - b]); // along (1,1)
            let c = rng.normal();
            let d = rng.normal() * 0.1;
            y.push(vec![c + d, -(c - d)]); // along (1,-1)
        }
        let m = mmd_rbf(&x, &y, None).unwrap();
        assert!(m > 0.05, "rotation drift MMD {m}");
        // while the per-dimension KS stays quiet
        let xs0: Vec<f64> = x.iter().map(|v| v[0]).collect();
        let ys0: Vec<f64> = y.iter().map(|v| v[0]).collect();
        let ks = fstore_common::stats::ks_statistic(&xs0, &ys0).unwrap();
        assert!(ks < 0.12, "marginal KS should be quiet: {ks}");
    }
}
