//! A minimal stream runtime: a worker thread draining a crossbeam channel
//! into a [`StreamPipeline`]. Producers (ingest adapters, generators) send
//! [`Event`]s; [`StreamRuntime::shutdown`] stops the worker even if
//! producer handles are still alive — the worker drains what is already
//! queued, flushes open windows, and returns the final report.

use crate::event::Event;
use crate::pipeline::{StreamPipeline, StreamPipelineReport};
use crossbeam::channel::{bounded, RecvTimeoutError, Sender};
use fstore_common::{FsError, Result};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Handle to a running stream worker.
pub struct StreamRuntime {
    sender: Option<Sender<Event>>,
    stop: Arc<AtomicBool>,
    worker: Option<JoinHandle<Result<StreamPipelineReport>>>,
}

impl StreamRuntime {
    /// Spawn a worker draining into `pipeline`. `capacity` bounds the
    /// in-flight queue (backpressure: senders block when it is full).
    pub fn spawn(mut pipeline: StreamPipeline, capacity: usize) -> Self {
        let (tx, rx) = bounded::<Event>(capacity.max(1));
        let stop = Arc::new(AtomicBool::new(false));
        let stop_worker = Arc::clone(&stop);
        let worker = std::thread::spawn(move || -> Result<StreamPipelineReport> {
            loop {
                match rx.recv_timeout(std::time::Duration::from_millis(20)) {
                    Ok(event) => {
                        pipeline.push(&event)?;
                    }
                    Err(RecvTimeoutError::Disconnected) => break,
                    Err(RecvTimeoutError::Timeout) => {
                        if stop_worker.load(Ordering::Acquire) {
                            // drain anything that raced in, then stop
                            while let Ok(event) = rx.try_recv() {
                                pipeline.push(&event)?;
                            }
                            break;
                        }
                    }
                }
            }
            pipeline.flush()?;
            Ok(pipeline.report())
        });
        StreamRuntime {
            sender: Some(tx),
            stop,
            worker: Some(worker),
        }
    }

    /// A cloneable sender for producers.
    pub fn sender(&self) -> Sender<Event> {
        self.sender
            .as_ref()
            .expect("runtime already shut down")
            .clone()
    }

    /// Send one event from this handle.
    pub fn send(&self, event: Event) -> Result<()> {
        self.sender
            .as_ref()
            .ok_or_else(|| FsError::Stream("runtime already shut down".into()))?
            .send(event)
            .map_err(|_| FsError::Stream("stream worker terminated".into()))
    }

    /// Close the stream and wait for the worker; returns the final report.
    /// Safe even while producer handles from [`StreamRuntime::sender`] are
    /// still alive — their next `send` fails once the worker exits.
    pub fn shutdown(mut self) -> Result<StreamPipelineReport> {
        self.stop.store(true, Ordering::Release);
        drop(self.sender.take());
        match self.worker.take().expect("shutdown called twice").join() {
            Ok(r) => r,
            Err(_) => Err(FsError::Stream("stream worker panicked".into())),
        }
    }
}

impl Drop for StreamRuntime {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        drop(self.sender.take());
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::StreamAggregator;
    use crate::window::WindowSpec;
    use fstore_common::{Duration, EntityKey, Timestamp, Value};
    use fstore_query::AggFunc;
    use fstore_storage::{OfflineDb, OnlineStore};
    use std::sync::Arc;

    fn make_pipeline(
        online: &Arc<OnlineStore>,
        offline: &OfflineDb,
        feature: &str,
    ) -> StreamPipeline {
        let agg = StreamAggregator::new(
            feature,
            AggFunc::Count,
            WindowSpec::tumbling(Duration::minutes(1)),
            Duration::ZERO,
        )
        .unwrap();
        StreamPipeline::new(agg, "user", Arc::clone(online), offline.clone()).unwrap()
    }

    #[test]
    fn runtime_drains_flushes_and_reports() {
        let online = Arc::new(OnlineStore::default());
        let offline = OfflineDb::new();
        let pipeline = make_pipeline(&online, &offline, "clicks_1m");
        let rt = StreamRuntime::spawn(pipeline, 64);

        let tx = rt.sender();
        let producer = std::thread::spawn(move || {
            for i in 0..120 {
                tx.send(Event::new("u1", Timestamp::millis(i * 1_000), 1.0))
                    .unwrap();
            }
            // producer drops its sender when done
        });
        producer.join().unwrap();
        let report = rt.shutdown().unwrap();

        assert_eq!(report.events_in, 120);
        assert_eq!(report.windows_emitted, 2, "two minutes of data");
        assert_eq!(report.late_dropped, 0);
        let e = online
            .get("user", &EntityKey::new("u1"), "clicks_1m")
            .unwrap();
        assert_eq!(e.value, Value::Int(60));
    }

    #[test]
    fn shutdown_with_live_external_senders_does_not_hang() {
        let online = Arc::new(OnlineStore::default());
        let offline = OfflineDb::new();
        let pipeline = make_pipeline(&online, &offline, "f");
        let rt = StreamRuntime::spawn(pipeline, 4);
        // an external producer handle that outlives the runtime
        let tx = rt.sender();
        rt.send(Event::new("u", Timestamp::EPOCH, 1.0)).unwrap();
        let report = rt.shutdown().unwrap(); // must not deadlock on `tx`
        assert_eq!(report.events_in, 1);
        // the worker is gone: the straggler's send now fails
        assert!(tx.send(Event::new("u", Timestamp::EPOCH, 1.0)).is_err());
    }

    #[test]
    fn queued_events_survive_shutdown() {
        let online = Arc::new(OnlineStore::default());
        let offline = OfflineDb::new();
        let pipeline = make_pipeline(&online, &offline, "g");
        let rt = StreamRuntime::spawn(pipeline, 64);
        for i in 0..10 {
            rt.send(Event::new("u", Timestamp::millis(i), 1.0)).unwrap();
        }
        let report = rt.shutdown().unwrap();
        assert_eq!(
            report.events_in, 10,
            "everything queued before shutdown is processed"
        );
        assert_eq!(report.windows_emitted, 1);
    }
}
