//! The dual-write sink: finalized windows are persisted to the online store
//! (for serving) and logged to the offline store (for training) — the exact
//! contract the paper gives for streaming features (§2.2.1).

use crate::aggregator::{StreamAggregator, WindowEmit};
use crate::event::Event;
use fstore_common::{FieldDef, Result, Schema, Value, ValueType};
use fstore_storage::{OfflineDb, OnlineStore, TableConfig};
use std::sync::Arc;

/// Schema of the offline log every streaming feature writes to.
pub fn stream_log_schema() -> Schema {
    Schema::new(vec![
        FieldDef::not_null("entity", ValueType::Str),
        FieldDef::not_null("window_start", ValueType::Timestamp),
        FieldDef::not_null("window_end", ValueType::Timestamp),
        FieldDef::new("value", ValueType::Float),
        FieldDef::not_null("events", ValueType::Int),
    ])
    .expect("static schema is valid")
}

/// Counters describing what a pipeline has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamPipelineReport {
    pub events_in: u64,
    pub windows_emitted: u64,
    pub late_dropped: u64,
    pub online_writes: u64,
    pub offline_rows: u64,
}

/// Wires a [`StreamAggregator`] to the dual datastore.
///
/// * online: `put(group, entity, feature, value, window_end)` — the feature
///   becomes servable the instant its window closes, stamped with the window
///   end (its logical freshness).
/// * offline: appended to table `stream_log_<feature>` partitioned by
///   `window_end`, for later training-set construction.
pub struct StreamPipeline {
    aggregator: StreamAggregator,
    group: String,
    log_table: String,
    online: Arc<OnlineStore>,
    offline: OfflineDb,
    report: StreamPipelineReport,
}

impl StreamPipeline {
    pub fn new(
        aggregator: StreamAggregator,
        group: impl Into<String>,
        online: Arc<OnlineStore>,
        offline: OfflineDb,
    ) -> Result<Self> {
        let log_table = format!("stream_log_{}", aggregator.feature());
        if !offline.snapshot().has_table(&log_table) {
            offline.write(|off| {
                if off.has_table(&log_table) {
                    return Ok(());
                }
                off.create_table(
                    &log_table,
                    TableConfig::new(stream_log_schema()).with_time_column("window_end"),
                )
            })?;
        }
        Ok(StreamPipeline {
            aggregator,
            group: group.into(),
            log_table,
            online,
            offline,
            report: StreamPipelineReport::default(),
        })
    }

    pub fn report(&self) -> StreamPipelineReport {
        self.report
    }

    pub fn log_table(&self) -> &str {
        &self.log_table
    }

    /// Ingest one event; performs the dual write for any closed windows and
    /// returns them.
    pub fn push(&mut self, event: &Event) -> Result<Vec<WindowEmit>> {
        self.report.events_in += 1;
        let emits = self.aggregator.push(event);
        self.sink(&emits)?;
        self.report.late_dropped = self.aggregator.late_dropped();
        Ok(emits)
    }

    /// Close all open windows (end of stream) and sink them.
    pub fn flush(&mut self) -> Result<Vec<WindowEmit>> {
        let emits = self.aggregator.flush();
        self.sink(&emits)?;
        Ok(emits)
    }

    fn sink(&mut self, emits: &[WindowEmit]) -> Result<()> {
        if emits.is_empty() {
            return Ok(());
        }
        for e in emits {
            self.online.put(
                &self.group,
                &e.entity,
                &e.feature,
                e.value.clone(),
                e.window_end,
            );
            self.report.online_writes += 1;
        }
        // One publication per emit batch: readers see either none or all of
        // this batch's log rows.
        self.offline.write(|off| {
            for e in emits {
                off.append(
                    &self.log_table,
                    &[
                        Value::Str(e.entity.as_str().to_string()),
                        Value::Timestamp(e.window_start),
                        Value::Timestamp(e.window_end),
                        e.value.clone(),
                        Value::Int(e.events as i64),
                    ],
                )?;
            }
            Ok(())
        })?;
        self.report.offline_rows += emits.len() as u64;
        self.report.windows_emitted += emits.len() as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::WindowSpec;
    use fstore_common::{Duration, EntityKey, Timestamp};
    use fstore_query::AggFunc;
    use fstore_storage::ScanRequest;

    fn ms(x: i64) -> Timestamp {
        Timestamp::millis(x)
    }

    fn pipeline() -> StreamPipeline {
        let agg = StreamAggregator::new(
            "trip_count_1m",
            AggFunc::Count,
            WindowSpec::tumbling(Duration::minutes(1)),
            Duration::ZERO,
        )
        .unwrap();
        StreamPipeline::new(
            agg,
            "user",
            Arc::new(OnlineStore::default()),
            OfflineDb::new(),
        )
        .unwrap()
    }

    #[test]
    fn dual_write_happens_on_window_close() {
        let mut p = pipeline();
        p.push(&Event::new("u1", ms(1_000), 1.0)).unwrap();
        p.push(&Event::new("u1", ms(2_000), 1.0)).unwrap();
        // advance past the first minute
        let emits = p.push(&Event::new("u1", ms(61_000), 1.0)).unwrap();
        assert_eq!(emits.len(), 1);

        // online: value servable, freshness = window end
        let e = p
            .online
            .get("user", &EntityKey::new("u1"), "trip_count_1m")
            .unwrap();
        assert_eq!(e.value, Value::Int(2));
        assert_eq!(e.written_at, ms(60_000));

        // offline: one log row
        let off = p.offline.snapshot();
        let res = off
            .scan("stream_log_trip_count_1m", &ScanRequest::all())
            .unwrap();
        assert_eq!(res.rows.len(), 1);
        assert_eq!(res.rows[0][0], Value::from("u1"));
        assert_eq!(res.rows[0][4], Value::Int(2));
    }

    #[test]
    fn flush_sinks_open_windows() {
        let mut p = pipeline();
        p.push(&Event::new("u1", ms(5), 1.0)).unwrap();
        let emits = p.flush().unwrap();
        assert_eq!(emits.len(), 1);
        let rep = p.report();
        assert_eq!(rep.events_in, 1);
        assert_eq!(rep.windows_emitted, 1);
        assert_eq!(rep.online_writes, 1);
        assert_eq!(rep.offline_rows, 1);
    }

    #[test]
    fn online_value_refreshes_as_windows_roll() {
        let mut p = pipeline();
        for minute in 0..3 {
            for i in 0..=minute {
                p.push(&Event::new("u", ms(minute * 60_000 + i * 100), 1.0))
                    .unwrap();
            }
        }
        p.push(&Event::new("u", ms(200_000), 1.0)).unwrap();
        let e = p
            .online
            .get("user", &EntityKey::new("u"), "trip_count_1m")
            .unwrap();
        assert_eq!(
            e.value,
            Value::Int(3),
            "latest closed window (minute 2) serves"
        );
        assert_eq!(e.written_at, ms(180_000));
    }

    #[test]
    fn reuses_existing_log_table() {
        let online = Arc::new(OnlineStore::default());
        let offline = OfflineDb::new();
        let mk = || {
            StreamAggregator::new(
                "f",
                AggFunc::Count,
                WindowSpec::tumbling(Duration::minutes(1)),
                Duration::ZERO,
            )
            .unwrap()
        };
        let _p1 = StreamPipeline::new(mk(), "g", Arc::clone(&online), offline.clone()).unwrap();
        // second pipeline on the same feature shares the log table
        let _p2 = StreamPipeline::new(mk(), "g", online, offline).unwrap();
    }
}
