//! Window specifications and assignment.

use fstore_common::{Duration, FsError, Result, Timestamp};

/// How events are grouped into time windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowSpec {
    /// Non-overlapping windows of `size`, aligned to the epoch.
    Tumbling { size: Duration },
    /// Overlapping windows of `size` starting every `slide` (a "hopping"
    /// window when `slide < size`; equivalent to tumbling when equal).
    Sliding { size: Duration, slide: Duration },
}

impl WindowSpec {
    pub fn tumbling(size: Duration) -> Self {
        WindowSpec::Tumbling { size }
    }

    pub fn sliding(size: Duration, slide: Duration) -> Self {
        WindowSpec::Sliding { size, slide }
    }

    pub fn validate(&self) -> Result<()> {
        match *self {
            WindowSpec::Tumbling { size } if size.is_positive() => Ok(()),
            WindowSpec::Sliding { size, slide } if size.is_positive() && slide.is_positive() => {
                if slide.as_millis() > size.as_millis() {
                    Err(FsError::Stream(format!(
                        "slide ({} ms) must not exceed window size ({} ms)",
                        slide.as_millis(),
                        size.as_millis()
                    )))
                } else {
                    Ok(())
                }
            }
            _ => Err(FsError::Stream("window durations must be positive".into())),
        }
    }

    pub fn size(&self) -> Duration {
        match *self {
            WindowSpec::Tumbling { size } | WindowSpec::Sliding { size, .. } => size,
        }
    }

    /// Window start timestamps that contain instant `t`, ascending.
    pub fn assign(&self, t: Timestamp) -> Vec<Timestamp> {
        match *self {
            WindowSpec::Tumbling { size } => {
                let s = size.as_millis();
                vec![Timestamp::millis(t.as_millis().div_euclid(s) * s)]
            }
            WindowSpec::Sliding { size, slide } => {
                let (sz, sl) = (size.as_millis(), slide.as_millis());
                let last_start = t.as_millis().div_euclid(sl) * sl;
                let mut starts = Vec::new();
                let mut start = last_start;
                // every window with start in (t - size, t]
                while start > t.as_millis() - sz {
                    starts.push(Timestamp::millis(start));
                    start -= sl;
                }
                starts.reverse();
                starts
            }
        }
    }

    /// End (exclusive) of a window beginning at `start`.
    pub fn end_of(&self, start: Timestamp) -> Timestamp {
        start + self.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: i64) -> Timestamp {
        Timestamp::millis(x)
    }

    #[test]
    fn validation() {
        assert!(WindowSpec::tumbling(Duration::millis(10))
            .validate()
            .is_ok());
        assert!(WindowSpec::tumbling(Duration::ZERO).validate().is_err());
        assert!(
            WindowSpec::sliding(Duration::millis(10), Duration::millis(5))
                .validate()
                .is_ok()
        );
        assert!(
            WindowSpec::sliding(Duration::millis(5), Duration::millis(10))
                .validate()
                .is_err()
        );
    }

    #[test]
    fn tumbling_assignment() {
        let w = WindowSpec::tumbling(Duration::millis(10));
        assert_eq!(w.assign(ms(0)), vec![ms(0)]);
        assert_eq!(w.assign(ms(9)), vec![ms(0)]);
        assert_eq!(w.assign(ms(10)), vec![ms(10)]);
        assert_eq!(w.assign(ms(-1)), vec![ms(-10)], "negative times floor");
        assert_eq!(w.end_of(ms(10)), ms(20));
    }

    #[test]
    fn sliding_assignment_covers_overlaps() {
        let w = WindowSpec::sliding(Duration::millis(10), Duration::millis(5));
        // t=12 → windows starting at 5 and 10 (starts in (2, 12])
        assert_eq!(w.assign(ms(12)), vec![ms(5), ms(10)]);
        // t=10 → starts 5 and 10
        assert_eq!(w.assign(ms(10)), vec![ms(5), ms(10)]);
        // t=4 → starts -5 and 0
        assert_eq!(w.assign(ms(4)), vec![ms(-5), ms(0)]);
    }

    #[test]
    fn sliding_equal_slide_is_tumbling() {
        let s = WindowSpec::sliding(Duration::millis(10), Duration::millis(10));
        let t = WindowSpec::tumbling(Duration::millis(10));
        for x in [0i64, 3, 9, 10, 25] {
            assert_eq!(s.assign(ms(x)), t.assign(ms(x)), "t={x}");
        }
    }

    #[test]
    fn every_assigned_window_contains_the_instant() {
        let w = WindowSpec::sliding(Duration::millis(30), Duration::millis(7));
        for t in 0..200i64 {
            let starts = w.assign(ms(t));
            assert!(!starts.is_empty());
            for s in starts {
                assert!(
                    s <= ms(t) && ms(t) < w.end_of(s),
                    "t={t} start={}",
                    s.as_millis()
                );
            }
        }
    }
}
