//! # fstore-stream
//!
//! Streaming features (paper §2.2.1): raw events flow in ordered roughly by
//! event time, user-supplied aggregation functions run over per-entity time
//! windows, and finalized window values are **dual-written** — persisted to
//! the online store for serving and logged to the offline store for
//! training — exactly the pipeline the paper describes for streaming
//! features. Watermarks bound out-of-orderness; events later than the
//! allowed lateness are counted and dropped, never silently merged into a
//! closed window.

pub mod aggregator;
pub mod event;
pub mod pipeline;
pub mod runtime;
pub mod window;

pub use aggregator::{StreamAggregator, WindowEmit};
pub use event::Event;
pub use pipeline::{StreamPipeline, StreamPipelineReport};
pub use runtime::StreamRuntime;
pub use window::WindowSpec;
