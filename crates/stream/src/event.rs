//! Stream events.

use fstore_common::{EntityKey, Timestamp, Value};

/// One raw event on a stream: an entity, the instant it happened, and a
/// value (e.g. a trip fare, a click, a rating).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub entity: EntityKey,
    pub event_time: Timestamp,
    pub value: Value,
}

impl Event {
    pub fn new(
        entity: impl Into<EntityKey>,
        event_time: Timestamp,
        value: impl Into<Value>,
    ) -> Self {
        Event {
            entity: entity.into(),
            event_time,
            value: value.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_coerces() {
        let e = Event::new("u1", Timestamp::millis(5), 3.5);
        assert_eq!(e.entity.as_str(), "u1");
        assert_eq!(e.value, Value::Float(3.5));
    }
}
