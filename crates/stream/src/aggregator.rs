//! Watermarked, per-entity window aggregation.

use crate::event::Event;
use crate::window::WindowSpec;
use fstore_common::hash::FxHashMap;
use fstore_common::{Duration, EntityKey, Result, Timestamp, Value};
use fstore_query::{AggAccumulator, AggFunc};
use std::collections::BTreeMap;

/// A finalized window value, ready for the dual write.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowEmit {
    pub feature: String,
    pub entity: EntityKey,
    pub window_start: Timestamp,
    pub window_end: Timestamp,
    pub value: Value,
    /// Number of events that contributed.
    pub events: u64,
}

struct OpenWindow {
    accs: FxHashMap<EntityKey, (AggAccumulator, u64)>,
}

/// Applies one aggregate function over one window spec, per entity, with a
/// watermark that trails the maximum seen event time by the allowed
/// lateness. Windows are finalized (emitted exactly once) when the
/// watermark passes their end; events arriving after their window closed
/// are counted in [`StreamAggregator::late_dropped`] and discarded.
pub struct StreamAggregator {
    feature: String,
    func: AggFunc,
    window: WindowSpec,
    allowed_lateness: Duration,
    /// open windows keyed by (end, start) so finalization pops in end order
    open: BTreeMap<(Timestamp, Timestamp), OpenWindow>,
    max_event_time: Option<Timestamp>,
    late_dropped: u64,
    events_seen: u64,
}

impl StreamAggregator {
    pub fn new(
        feature: impl Into<String>,
        func: AggFunc,
        window: WindowSpec,
        allowed_lateness: Duration,
    ) -> Result<Self> {
        window.validate()?;
        Ok(StreamAggregator {
            feature: feature.into(),
            func,
            window,
            allowed_lateness,
            open: BTreeMap::new(),
            max_event_time: None,
            late_dropped: 0,
            events_seen: 0,
        })
    }

    pub fn feature(&self) -> &str {
        &self.feature
    }

    /// Current watermark: max event time minus allowed lateness.
    pub fn watermark(&self) -> Option<Timestamp> {
        self.max_event_time.map(|t| t - self.allowed_lateness)
    }

    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    pub fn open_windows(&self) -> usize {
        self.open.len()
    }

    /// Ingest one event; returns any windows the advancing watermark closed.
    pub fn push(&mut self, event: &Event) -> Vec<WindowEmit> {
        self.events_seen += 1;
        // Drop events already behind the watermark's closed windows.
        if let Some(w) = self.watermark() {
            if self
                .window
                .assign(event.event_time)
                .iter()
                .all(|&s| self.window.end_of(s) <= w)
            {
                self.late_dropped += 1;
                return Vec::new();
            }
        }
        for start in self.window.assign(event.event_time) {
            let end = self.window.end_of(start);
            // Skip sub-windows that already closed (partial lateness).
            if self.watermark().is_some_and(|w| end <= w) {
                continue;
            }
            let win = self.open.entry((end, start)).or_insert_with(|| OpenWindow {
                accs: FxHashMap::default(),
            });
            let (acc, n) = win
                .accs
                .entry(event.entity.clone())
                .or_insert_with(|| (self.func.accumulator(), 0));
            acc.push(&event.value);
            *n += 1;
        }
        // Advance the watermark and finalize.
        let advanced = self.max_event_time.is_none_or(|m| event.event_time > m);
        if advanced {
            self.max_event_time = Some(event.event_time);
        }
        self.finalize_up_to_watermark()
    }

    fn finalize_up_to_watermark(&mut self) -> Vec<WindowEmit> {
        let Some(wm) = self.watermark() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        while let Some((&(end, start), _)) = self.open.first_key_value() {
            if end > wm {
                break;
            }
            let win = self.open.remove(&(end, start)).unwrap();
            self.emit_window(start, end, win, &mut out);
        }
        out
    }

    /// Force-close every open window (end of stream).
    pub fn flush(&mut self) -> Vec<WindowEmit> {
        let mut out = Vec::new();
        let open = std::mem::take(&mut self.open);
        for ((end, start), win) in open {
            self.emit_window(start, end, win, &mut out);
        }
        out
    }

    fn emit_window(
        &self,
        start: Timestamp,
        end: Timestamp,
        win: OpenWindow,
        out: &mut Vec<WindowEmit>,
    ) {
        let mut emits: Vec<WindowEmit> = win
            .accs
            .into_iter()
            .map(|(entity, (acc, events))| WindowEmit {
                feature: self.feature.clone(),
                entity,
                window_start: start,
                window_end: end,
                value: acc.finish(),
                events,
            })
            .collect();
        emits.sort_by(|a, b| a.entity.cmp(&b.entity));
        out.extend(emits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: i64) -> Timestamp {
        Timestamp::millis(x)
    }

    fn agg(func: AggFunc, size: i64, lateness: i64) -> StreamAggregator {
        StreamAggregator::new(
            "f",
            func,
            WindowSpec::tumbling(Duration::millis(size)),
            Duration::millis(lateness),
        )
        .unwrap()
    }

    #[test]
    fn tumbling_sum_per_entity() {
        let mut a = agg(AggFunc::Sum, 10, 0);
        assert!(a.push(&Event::new("u1", ms(1), 1.0)).is_empty());
        assert!(a.push(&Event::new("u2", ms(2), 2.0)).is_empty());
        assert!(a.push(&Event::new("u1", ms(5), 3.0)).is_empty());
        // event at t=12 advances watermark to 12 → window [0,10) closes
        let emits = a.push(&Event::new("u1", ms(12), 9.0));
        assert_eq!(emits.len(), 2);
        assert_eq!(emits[0].entity.as_str(), "u1");
        assert_eq!(emits[0].value, Value::Float(4.0));
        assert_eq!(emits[0].events, 2);
        assert_eq!(emits[1].entity.as_str(), "u2");
        assert_eq!(emits[1].value, Value::Float(2.0));
        assert_eq!(
            (emits[0].window_start, emits[0].window_end),
            (ms(0), ms(10))
        );
    }

    #[test]
    fn lateness_holds_windows_open() {
        let mut a = agg(AggFunc::Count, 10, 5);
        a.push(&Event::new("u", ms(1), 1.0));
        // t=12: watermark 7 < 10 → window still open
        assert!(a.push(&Event::new("u", ms(12), 1.0)).is_empty());
        // out-of-order event for the old window is still accepted
        assert!(a.push(&Event::new("u", ms(9), 1.0)).is_empty());
        assert_eq!(a.late_dropped(), 0);
        // t=15: watermark 10 → closes [0,10) with 2 events
        let emits = a.push(&Event::new("u", ms(15), 1.0));
        assert_eq!(emits.len(), 1);
        assert_eq!(emits[0].value, Value::Int(2));
    }

    #[test]
    fn too_late_events_are_dropped_and_counted() {
        let mut a = agg(AggFunc::Count, 10, 0);
        a.push(&Event::new("u", ms(1), 1.0));
        a.push(&Event::new("u", ms(25), 1.0)); // closes [0,10), watermark 25
        let emits = a.push(&Event::new("u", ms(3), 1.0)); // for closed window
        assert!(emits.is_empty());
        assert_eq!(a.late_dropped(), 1);
        // flush emits only the open [20,30) window
        let emits = a.flush();
        assert_eq!(emits.len(), 1);
        assert_eq!(emits[0].window_start, ms(20));
        assert_eq!(emits[0].value, Value::Int(1));
    }

    #[test]
    fn sliding_windows_emit_overlapping_counts() {
        let mut a = StreamAggregator::new(
            "f",
            AggFunc::Count,
            WindowSpec::sliding(Duration::millis(10), Duration::millis(5)),
            Duration::ZERO,
        )
        .unwrap();
        let mut emits = Vec::new();
        emits.extend(a.push(&Event::new("u", ms(3), 1.0))); // windows [-5,5) and [0,10)
        emits.extend(a.push(&Event::new("u", ms(7), 1.0))); // windows [0,10) and [5,15)
        emits.extend(a.push(&Event::new("u", ms(20), 1.0)));
        emits.extend(a.flush());
        let find = |start: i64| {
            emits
                .iter()
                .find(|e| e.window_start == ms(start))
                .map(|e| e.value.clone())
        };
        assert_eq!(find(-5), Some(Value::Int(1)));
        assert_eq!(find(0), Some(Value::Int(2)));
        assert_eq!(find(5), Some(Value::Int(1)));
    }

    #[test]
    fn watermark_never_regresses() {
        let mut a = agg(AggFunc::Count, 10, 0);
        a.push(&Event::new("u", ms(50), 1.0));
        a.push(&Event::new("u", ms(45), 1.0)); // older event, watermark stays 50
        assert_eq!(a.watermark(), Some(ms(50)));
    }

    #[test]
    fn emits_are_exactly_once_per_window_entity() {
        let mut a = agg(AggFunc::Count, 10, 0);
        let mut all = Vec::new();
        for t in 0..100 {
            all.extend(a.push(&Event::new("u", ms(t), 1.0)));
        }
        all.extend(a.flush());
        let mut starts: Vec<i64> = all.iter().map(|e| e.window_start.as_millis()).collect();
        starts.sort_unstable();
        let mut dedup = starts.clone();
        dedup.dedup();
        assert_eq!(starts, dedup, "duplicate window emission");
        assert_eq!(starts.len(), 10);
        assert!(all.iter().all(|e| e.value == Value::Int(10)));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Streaming emission ≡ naive batch recomputation per window
            /// when no events are dropped (lateness covers the shuffle).
            #[test]
            fn streaming_equals_batch(times in proptest::collection::vec(0i64..200, 1..120)) {
                let mut a = agg(AggFunc::Count, 20, 300); // lateness > horizon: nothing drops
                let mut emitted = Vec::new();
                for &t in &times {
                    emitted.extend(a.push(&Event::new("u", ms(t), 1.0)));
                }
                emitted.extend(a.flush());
                prop_assert_eq!(a.late_dropped(), 0);
                // naive recomputation
                let mut counts = std::collections::BTreeMap::new();
                for &t in &times {
                    *counts.entry(t.div_euclid(20) * 20).or_insert(0i64) += 1;
                }
                let mut got: Vec<(i64, i64)> = emitted
                    .iter()
                    .map(|e| (e.window_start.as_millis(), e.value.as_i64().unwrap()))
                    .collect();
                got.sort_unstable();
                let want: Vec<(i64, i64)> = counts.into_iter().collect();
                prop_assert_eq!(got, want);
            }

            /// Every event is either aggregated or counted as dropped.
            #[test]
            fn conservation(times in proptest::collection::vec(0i64..500, 1..150)) {
                let mut a = agg(AggFunc::Count, 25, 10);
                let mut emitted = Vec::new();
                for &t in &times {
                    emitted.extend(a.push(&Event::new("u", ms(t), 1.0)));
                }
                emitted.extend(a.flush());
                let counted: i64 = emitted.iter().map(|e| e.value.as_i64().unwrap()).sum();
                prop_assert_eq!(counted as u64 + a.late_dropped(), times.len() as u64);
            }
        }
    }
}
