//! Embedding version alignment (paper §4).
//!
//! "If an embedding gets updated but a model that uses it does not, the dot
//! product of the embedding with model parameters can lose meaning which
//! leads to incorrect model predictions." A retrained embedding is
//! typically equivalent to the old one only up to rotation/reflection —
//! exactly the degree of freedom a deployed linear head is sensitive to.
//!
//! [`align_to_reference`] removes that freedom: it solves the orthogonal
//! Procrustes problem over the common vocabulary and republishes the new
//! version *in the old version's coordinate system*, so deployed models
//! keep working until they are retrained on their own schedule. Experiment
//! **E13** measures the deployed-accuracy cliff this avoids.

use crate::eig::procrustes;
use crate::quality::{common_keys, table_matrix};
use crate::store::EmbeddingTable;
use fstore_common::{FsError, Result};

/// Report of an alignment: the rotation residual before/after, over the
/// common vocabulary.
#[derive(Debug, Clone, Copy)]
pub struct AlignmentReport {
    /// Mean squared distance between corresponding rows before alignment.
    pub msd_before: f64,
    /// Mean squared distance after applying the fitted rotation.
    pub msd_after: f64,
    /// Number of common entities the rotation was fitted on.
    pub fitted_on: usize,
}

/// Rotate `new` into `reference`'s coordinate system (orthogonal Procrustes
/// over their common keys). Both tables must share a dimension; entities
/// present only in `new` are rotated too (the map is global).
pub fn align_to_reference(
    new: &EmbeddingTable,
    reference: &EmbeddingTable,
) -> Result<(EmbeddingTable, AlignmentReport)> {
    if new.dim() != reference.dim() {
        return Err(FsError::Embedding(format!(
            "cannot align dim {} onto dim {}",
            new.dim(),
            reference.dim()
        )));
    }
    let keys = common_keys(reference, new);
    if keys.len() < new.dim() {
        return Err(FsError::Embedding(format!(
            "need at least dim={} common entities to fit a rotation, have {}",
            new.dim(),
            keys.len()
        )));
    }
    let a = table_matrix(new, &keys)?; // source
    let b = table_matrix(reference, &keys)?; // target
    let w = procrustes(&a, &b)?; // minimizes ‖A·W − B‖

    let msd = |x: &fstore_models::Matrix| -> f64 {
        let mut total = 0.0;
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let d = x.get(r, c) - b.get(r, c);
                total += d * d;
            }
        }
        total / x.rows() as f64
    };
    let msd_before = msd(&a);
    let aligned_common = a.matmul(&w)?;
    let msd_after = msd(&aligned_common);

    // Apply the rotation to every row of `new`.
    let dim = new.dim();
    let mut out = EmbeddingTable::new(dim)?;
    for key in new.keys() {
        let v = new.get_f64(key).expect("key enumerated from table");
        let mut rotated = vec![0.0f32; dim];
        for (c, r_out) in rotated.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (r, &x) in v.iter().enumerate() {
                acc += x * w.get(r, c);
            }
            *r_out = acc as f32;
        }
        out.insert(key.to_string(), rotated)?;
    }
    Ok((
        out,
        AlignmentReport {
            msd_before,
            msd_after,
            fitted_on: keys.len(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fstore_common::{Rng, Xoshiro256};

    fn random_table(n: usize, d: usize, seed: u64) -> EmbeddingTable {
        let mut rng = Xoshiro256::seeded(seed);
        let mut t = EmbeddingTable::new(d).unwrap();
        for i in 0..n {
            t.insert(
                format!("e{i}"),
                (0..d).map(|_| rng.normal() as f32).collect::<Vec<f32>>(),
            )
            .unwrap();
        }
        t
    }

    /// Rotate + slightly perturb a table (a "retrain" surrogate).
    fn rotated_noisy_copy(t: &EmbeddingTable, noise: f32, seed: u64) -> EmbeddingTable {
        let d = t.dim();
        let mut rng = Xoshiro256::seeded(seed);
        // random rotation via Gram-Schmidt
        let mut cols: Vec<Vec<f64>> = (0..d)
            .map(|_| (0..d).map(|_| rng.normal()).collect())
            .collect();
        for i in 0..d {
            for j in 0..i {
                let p: f64 = cols[i].iter().zip(&cols[j]).map(|(a, b)| a * b).sum();
                let cj = cols[j].clone();
                for (x, y) in cols[i].iter_mut().zip(cj) {
                    *x -= p * y;
                }
            }
            let n: f64 = cols[i].iter().map(|x| x * x).sum::<f64>().sqrt();
            for x in &mut cols[i] {
                *x /= n;
            }
        }
        let mut out = EmbeddingTable::new(d).unwrap();
        for k in t.keys() {
            let v = t.get_f64(k).unwrap();
            let rotated: Vec<f32> = (0..d)
                .map(|c| {
                    let mut acc: f64 = v.iter().zip(&cols[c]).map(|(a, b)| a * b).sum();
                    acc += f64::from(noise) * rng.normal();
                    acc as f32
                })
                .collect();
            out.insert(k.to_string(), rotated).unwrap();
        }
        out
    }

    #[test]
    fn alignment_undoes_a_pure_rotation() {
        let reference = random_table(80, 6, 1);
        let new = rotated_noisy_copy(&reference, 0.0, 2);
        let (aligned, report) = align_to_reference(&new, &reference).unwrap();
        assert!(
            report.msd_before > 0.5,
            "rotation moved the rows: {}",
            report.msd_before
        );
        assert!(
            report.msd_after < 1e-9,
            "alignment must undo it: {}",
            report.msd_after
        );
        assert_eq!(report.fitted_on, 80);
        for k in reference.keys() {
            let a = aligned.get_f64(k).unwrap();
            let b = reference.get_f64(k).unwrap();
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn alignment_tolerates_noise() {
        let reference = random_table(100, 5, 3);
        let new = rotated_noisy_copy(&reference, 0.1, 4);
        let (_, report) = align_to_reference(&new, &reference).unwrap();
        assert!(report.msd_after < report.msd_before / 5.0, "{report:?}");
        // residual is on the order of the injected noise
        assert!(report.msd_after < 0.1 * 5.0);
    }

    #[test]
    fn new_only_entities_are_rotated_too() {
        let reference = random_table(50, 4, 5);
        let mut new = rotated_noisy_copy(&reference, 0.0, 6);
        new.insert("brand_new", vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        let (aligned, _) = align_to_reference(&new, &reference).unwrap();
        assert!(aligned.contains("brand_new"));
        assert_eq!(aligned.len(), 51);
    }

    #[test]
    fn validation() {
        let a = random_table(50, 4, 7);
        let b = random_table(50, 5, 8);
        assert!(align_to_reference(&a, &b).is_err(), "dim mismatch");
        let tiny = random_table(2, 4, 9);
        assert!(
            align_to_reference(&tiny, &tiny).is_err(),
            "too few common keys"
        );
    }

    #[test]
    fn deployed_linear_head_survives_alignment() {
        // The §4 scenario, end to end: train a head on v1, swap in v2.
        use fstore_models::{Classifier, SoftmaxRegression, TrainConfig};
        let mut rng = Xoshiro256::seeded(10);
        let d = 8;
        // v1: two separable classes along a random direction
        let mut v1 = EmbeddingTable::new(d).unwrap();
        let mut labels = Vec::new();
        for i in 0..200 {
            let y = i % 2;
            let mut v: Vec<f32> = (0..d).map(|_| rng.normal() as f32 * 0.3).collect();
            v[0] += if y == 0 { -1.5 } else { 1.5 };
            v1.insert(format!("e{i}"), v).unwrap();
            labels.push(y);
        }
        let feats = |t: &EmbeddingTable| -> Vec<Vec<f64>> {
            (0..200)
                .map(|i| t.get_f64(&format!("e{i}")).unwrap())
                .collect()
        };
        let head =
            SoftmaxRegression::train(&feats(&v1), &labels, 2, &TrainConfig::default()).unwrap();
        assert!(head.accuracy(&feats(&v1), &labels).unwrap() > 0.95);

        // v2 = retrain surrogate: a 90° rotation in the (0,1) plane moves
        // the entire class signal onto a dimension the deployed head
        // ignores, plus small noise everywhere.
        let mut v2 = EmbeddingTable::new(d).unwrap();
        for k in v1.keys() {
            let v = v1.get_f64(k).unwrap();
            let mut r: Vec<f32> = v
                .iter()
                .map(|&x| (x + 0.05 * rng.normal()) as f32)
                .collect();
            let (x0, x1) = (r[0], r[1]);
            r[0] = -x1;
            r[1] = x0;
            v2.insert(k.to_string(), r).unwrap();
        }
        let raw_acc = head.accuracy(&feats(&v2), &labels).unwrap();
        let (aligned, _) = align_to_reference(&v2, &v1).unwrap();
        let aligned_acc = head.accuracy(&feats(&aligned), &labels).unwrap();
        assert!(
            raw_acc < 0.75,
            "the stale head must break on the raw update: {raw_acc}"
        );
        assert!(
            aligned_acc > 0.95,
            "alignment must rescue the deployed head (raw {raw_acc}, aligned {aligned_acc})"
        );
    }
}
