//! Dense symmetric eigendecomposition (cyclic Jacobi) and small SVD — the
//! kernels behind PCA, truncated-SVD embeddings, the eigenspace overlap
//! score and Procrustes alignment. Dimensions here are embedding dims
//! (≤ a few hundred), where Jacobi is simple, accurate and fast enough.

use fstore_common::{FsError, Result};
use fstore_models::Matrix;

/// Eigendecomposition of a symmetric matrix: returns `(eigenvalues,
/// eigenvectors)` sorted by eigenvalue descending; eigenvectors are the
/// *columns* of the returned matrix.
pub fn symmetric_eigen(a: &Matrix) -> Result<(Vec<f64>, Matrix)> {
    let n = a.rows();
    if n != a.cols() {
        return Err(FsError::Embedding("eigen of non-square matrix".into()));
    }
    // verify symmetry (cheap, catches caller bugs early)
    for i in 0..n {
        for j in i + 1..n {
            if (a.get(i, j) - a.get(j, i)).abs() > 1e-8 * (1.0 + a.get(i, j).abs()) {
                return Err(FsError::Embedding(format!(
                    "matrix is not symmetric at ({i},{j})"
                )));
            }
        }
    }

    let mut m = a.clone();
    let mut v = Matrix::zeros(n, n);
    for i in 0..n {
        v.set(i, i, 1.0);
    }

    for _sweep in 0..100 {
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += m.get(i, j).powi(2);
            }
        }
        if off.sqrt() < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m.get(p, q);
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // rotate rows/cols p,q of m
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                // accumulate rotations
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }

    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m.get(i, i), i)).collect();
    pairs.sort_by(|a, b| b.0.total_cmp(&a.0));
    let eigenvalues: Vec<f64> = pairs.iter().map(|(l, _)| *l).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &(_, old_col)) in pairs.iter().enumerate() {
        for r in 0..n {
            vectors.set(r, new_col, v.get(r, old_col));
        }
    }
    Ok((eigenvalues, vectors))
}

/// Thin SVD of an `n×d` matrix with `n >= d`: returns `(U_k, Σ_k, V_k)` for
/// the top `k` singular triplets, computed via the `d×d` Gram matrix
/// (adequate for embedding dims; singular values below `1e-10` are dropped).
/// `U_k` is `n×k'`, `Σ_k` has `k'` entries, `V_k` is `d×k'` with `k' <= k`.
pub fn thin_svd(a: &Matrix, k: usize) -> Result<(Matrix, Vec<f64>, Matrix)> {
    let (n, d) = (a.rows(), a.cols());
    if n == 0 || d == 0 {
        return Err(FsError::Embedding("SVD of empty matrix".into()));
    }
    let k = k.min(d);
    // Gram = AᵀA (d×d)
    let at = a.transpose();
    let gram = at.matmul(a)?;
    let (mut evals, evecs) = symmetric_eigen(&gram)?;
    // numerical floor
    for l in &mut evals {
        *l = l.max(0.0);
    }
    let mut kept = 0usize;
    let mut sigma = Vec::new();
    for &l in evals.iter().take(k) {
        let s = l.sqrt();
        if s <= 1e-10 {
            break;
        }
        sigma.push(s);
        kept += 1;
    }
    if kept == 0 {
        return Err(FsError::Embedding("matrix is numerically zero".into()));
    }
    let mut v_k = Matrix::zeros(d, kept);
    for c in 0..kept {
        for r in 0..d {
            v_k.set(r, c, evecs.get(r, c));
        }
    }
    // U = A V Σ^{-1}
    let av = a.matmul(&v_k)?;
    let mut u_k = Matrix::zeros(n, kept);
    for c in 0..kept {
        for r in 0..n {
            u_k.set(r, c, av.get(r, c) / sigma[c]);
        }
    }
    Ok((u_k, sigma, v_k))
}

/// Orthogonal Procrustes: the rotation `W` (d×d orthogonal) minimizing
/// `‖A·W − B‖_F`, via `W = U Vᵀ` where `AᵀB = U Σ Vᵀ`.
pub fn procrustes(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.rows() != b.rows() || a.cols() != b.cols() {
        return Err(FsError::Embedding(
            "Procrustes needs same-shape matrices".into(),
        ));
    }
    let m = a.transpose().matmul(b)?; // d×d
    let (u, _sigma, v) = thin_svd_square(&m)?;
    u.matmul(&v.transpose())
}

/// Full SVD of a small square matrix via two eigendecompositions, keeping
/// all directions (including numerically tiny ones) so the result is a
/// proper rotation basis.
fn thin_svd_square(m: &Matrix) -> Result<(Matrix, Vec<f64>, Matrix)> {
    let d = m.rows();
    // V from MᵀM, then build U column-wise: u_i = M v_i / σ_i, falling back
    // to Gram-Schmidt completion for null directions.
    let gram = m.transpose().matmul(m)?;
    let (evals, v) = symmetric_eigen(&gram)?;
    let sigma: Vec<f64> = evals.iter().map(|l| l.max(0.0).sqrt()).collect();
    let mut u = Matrix::zeros(d, d);
    let mv = m.matmul(&v)?;
    let mut basis: Vec<Vec<f64>> = Vec::new();
    for c in 0..d {
        let mut col: Vec<f64> = (0..d).map(|r| mv.get(r, c)).collect();
        if sigma[c] > 1e-10 {
            for x in &mut col {
                *x /= sigma[c];
            }
        } else {
            // complete with any unit vector orthogonal to current basis
            col = orthogonal_complement(&basis, d);
        }
        // re-orthogonalize against previous columns (Gram–Schmidt pass)
        for prev in &basis {
            let proj: f64 = col.iter().zip(prev).map(|(a, b)| a * b).sum();
            for (x, p) in col.iter_mut().zip(prev) {
                *x -= proj * p;
            }
        }
        let n: f64 = col.iter().map(|x| x * x).sum::<f64>().sqrt();
        if n > 1e-12 {
            for x in &mut col {
                *x /= n;
            }
        }
        for (r, &x) in col.iter().enumerate() {
            u.set(r, c, x);
        }
        basis.push(col);
    }
    Ok((u, sigma, v))
}

fn orthogonal_complement(basis: &[Vec<f64>], d: usize) -> Vec<f64> {
    for axis in 0..d {
        let mut cand = vec![0.0; d];
        cand[axis] = 1.0;
        for prev in basis {
            let proj: f64 = cand.iter().zip(prev).map(|(a, b)| a * b).sum();
            for (x, p) in cand.iter_mut().zip(prev) {
                *x -= proj * p;
            }
        }
        let n: f64 = cand.iter().map(|x| x * x).sum::<f64>().sqrt();
        if n > 1e-6 {
            for x in &mut cand {
                *x /= n;
            }
            return cand;
        }
    }
    let mut e = vec![0.0; d];
    e[0] = 1.0;
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn eigen_of_diagonal() {
        let m = Matrix::from_rows(vec![vec![3.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let (vals, vecs) = symmetric_eigen(&m).unwrap();
        assert!(approx(vals[0], 3.0, 1e-10) && approx(vals[1], 1.0, 1e-10));
        assert!(approx(vecs.get(0, 0).abs(), 1.0, 1e-10));
    }

    #[test]
    fn eigen_known_2x2() {
        // [[2,1],[1,2]] → eigenvalues 3 and 1
        let m = Matrix::from_rows(vec![vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let (vals, vecs) = symmetric_eigen(&m).unwrap();
        assert!(approx(vals[0], 3.0, 1e-10));
        assert!(approx(vals[1], 1.0, 1e-10));
        // eigenvector for 3 is (1,1)/√2 up to sign
        let (x, y) = (vecs.get(0, 0), vecs.get(1, 0));
        assert!(approx((x / y).abs(), 1.0, 1e-8));
    }

    #[test]
    fn eigen_reconstructs_matrix() {
        use fstore_common::{Rng, Xoshiro256};
        let mut rng = Xoshiro256::seeded(3);
        let d = 8;
        // random symmetric
        let mut m = Matrix::zeros(d, d);
        for i in 0..d {
            for j in i..d {
                let x = rng.normal();
                m.set(i, j, x);
                m.set(j, i, x);
            }
        }
        let (vals, v) = symmetric_eigen(&m).unwrap();
        // reconstruct V Λ Vᵀ
        let mut lam = Matrix::zeros(d, d);
        for i in 0..d {
            lam.set(i, i, vals[i]);
        }
        let rec = v.matmul(&lam).unwrap().matmul(&v.transpose()).unwrap();
        for i in 0..d {
            for j in 0..d {
                assert!(approx(rec.get(i, j), m.get(i, j), 1e-8), "({i},{j})");
            }
        }
        // orthonormal columns
        let vtv = v.transpose().matmul(&v).unwrap();
        for i in 0..d {
            for j in 0..d {
                let want = f64::from(u8::from(i == j));
                assert!(approx(vtv.get(i, j), want, 1e-9));
            }
        }
    }

    #[test]
    fn eigen_rejects_bad_input() {
        assert!(symmetric_eigen(&Matrix::zeros(2, 3)).is_err());
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![0.0, 1.0]]).unwrap();
        assert!(symmetric_eigen(&m).is_err());
    }

    #[test]
    fn svd_reconstructs() {
        let a = Matrix::from_rows(vec![
            vec![1.0, 0.0],
            vec![0.0, 2.0],
            vec![1.0, 1.0],
            vec![3.0, -1.0],
        ])
        .unwrap();
        let (u, s, v) = thin_svd(&a, 2).unwrap();
        assert_eq!(s.len(), 2);
        assert!(s[0] >= s[1]);
        // A ≈ U Σ Vᵀ
        let mut us = Matrix::zeros(u.rows(), s.len());
        for c in 0..s.len() {
            for r in 0..u.rows() {
                us.set(r, c, u.get(r, c) * s[c]);
            }
        }
        let rec = us.matmul(&v.transpose()).unwrap();
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                assert!(approx(rec.get(i, j), a.get(i, j), 1e-8));
            }
        }
        // U has orthonormal columns
        let utu = u.transpose().matmul(&u).unwrap();
        assert!(approx(utu.get(0, 0), 1.0, 1e-9));
        assert!(approx(utu.get(0, 1), 0.0, 1e-9));
    }

    #[test]
    fn svd_truncation_keeps_top_energy() {
        let a = Matrix::from_rows(vec![vec![10.0, 0.0], vec![0.0, 0.1], vec![10.0, 0.0]]).unwrap();
        let (_, s, _) = thin_svd(&a, 1).unwrap();
        assert_eq!(s.len(), 1);
        assert!(s[0] > 10.0, "must keep the dominant direction");
    }

    #[test]
    fn svd_rejects_zero() {
        assert!(thin_svd(&Matrix::zeros(3, 2), 2).is_err());
    }

    #[test]
    fn procrustes_recovers_rotation() {
        use fstore_common::Xoshiro256;
        let mut rng = Xoshiro256::seeded(4);
        let a = Matrix::randn(50, 4, 1.0, &mut rng);
        // known rotation: permute + sign flip (orthogonal)
        let w_true = Matrix::from_rows(vec![
            vec![0.0, 1.0, 0.0, 0.0],
            vec![-1.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 1.0],
            vec![0.0, 0.0, 1.0, 0.0],
        ])
        .unwrap();
        let b = a.matmul(&w_true).unwrap();
        let w = procrustes(&a, &b).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                assert!(approx(w.get(i, j), w_true.get(i, j), 1e-6), "({i},{j})");
            }
        }
        // and W is orthogonal
        let wtw = w.transpose().matmul(&w).unwrap();
        for i in 0..4 {
            assert!(approx(wtw.get(i, i), 1.0, 1e-8));
        }
        assert!(procrustes(&a, &Matrix::zeros(3, 4)).is_err());
    }
}
