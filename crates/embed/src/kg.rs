//! Knowledge-graph-augmented SGNS (paper §3.1.1).
//!
//! Orr et al. (Bootleg) showed that adding *structured* signals — an
//! entity's type and its knowledge-graph relations — to self-supervised
//! pretraining rescues the tail: rare entities get most of their signal
//! from structure rather than (scarce) co-occurrence. This trainer
//! reproduces that mechanism: alongside the corpus skip-gram pass, every
//! entity is trained against (a) a shared *type anchor* vector and (b) its
//! KG neighbors, with equal per-entity weight regardless of corpus
//! frequency. Experiment **E5** measures the rare-slice lift this buys.

use crate::corpus::Corpus;
use crate::sgns::{SgnsConfig, SgnsTrainer};
use crate::store::{EmbeddingProvenance, EmbeddingTable};
use fstore_common::{FsError, Result, Rng, Xoshiro256};

/// Configuration for KG-augmented training.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct KgSgnsConfig {
    pub base: SgnsConfig,
    /// KG positive pairs injected per entity per epoch.
    pub kg_pairs_per_entity: usize,
    /// Learning rate for KG pair updates.
    pub kg_learning_rate: f64,
    /// Include (entity, type-anchor) pairs.
    pub use_types: bool,
    /// Include (entity, KG-neighbor) pairs.
    pub use_relations: bool,
}

impl Default for KgSgnsConfig {
    fn default() -> Self {
        KgSgnsConfig {
            base: SgnsConfig::default(),
            kg_pairs_per_entity: 4,
            kg_learning_rate: 0.03,
            use_types: true,
            use_relations: true,
        }
    }
}

/// Train KG-augmented SGNS over `corpus`.
///
/// Type anchors are implemented as designated low-rank entities: each type
/// `t` anchors on the most popular entity of that type, so anchor vectors
/// are well-estimated and pull their type's tail toward them. (Bootleg
/// learns separate type embeddings; anchoring on a well-observed exemplar
/// has the same tail-rescue effect without growing the vocabulary.)
pub fn train_kg_sgns(
    corpus: &Corpus,
    config: KgSgnsConfig,
) -> Result<(EmbeddingTable, EmbeddingProvenance)> {
    if !config.use_types && !config.use_relations {
        return Err(FsError::Embedding(
            "KG-SGNS with both type and relation signals disabled is plain SGNS".into(),
        ));
    }
    let mut trainer = SgnsTrainer::new(corpus, config.base.clone())?;
    let mut rng = Xoshiro256::seeded(config.base.seed ^ 0x9E37_79B9);

    // anchor entity per type = most frequent member
    let num_types = corpus.kg.num_types();
    let mut anchor = vec![usize::MAX; num_types];
    for e in 0..corpus.config.vocab {
        let t = corpus.kg.entity_type[e];
        if anchor[t] == usize::MAX || corpus.frequency[e] > corpus.frequency[anchor[t]] {
            anchor[t] = e;
        }
    }

    let epochs = config.base.epochs.max(1);
    for _epoch in 0..epochs {
        // one epoch of corpus skip-gram
        let mut one = trainer.config.clone();
        one.epochs = 1;
        // (SgnsTrainer::train reads epochs from its own config; temporarily
        // run a single-epoch pass)
        let saved = std::mem::replace(&mut trainer.config, one);
        trainer.train(corpus)?;
        trainer.config = saved;

        // one epoch of KG pairs: equal weight per entity
        let mut pairs = Vec::with_capacity(corpus.config.vocab * config.kg_pairs_per_entity);
        for e in 0..corpus.config.vocab {
            for _ in 0..config.kg_pairs_per_entity {
                let use_type = match (config.use_types, config.use_relations) {
                    (true, true) => rng.chance(0.5),
                    (true, false) => true,
                    (false, true) => false,
                    (false, false) => unreachable!(),
                };
                if use_type {
                    let a = anchor[corpus.kg.entity_type[e]];
                    if a != e {
                        pairs.push((e, a));
                    }
                } else {
                    let nbrs = corpus.kg.neighbors(e);
                    if !nbrs.is_empty() {
                        pairs.push((e, *rng.choose(nbrs)));
                    }
                }
            }
        }
        trainer.train_pairs(&pairs, config.kg_learning_rate as f32)?;
    }

    let mut prov = trainer.provenance(corpus);
    prov.trainer = "kg-sgns".into();
    prov.config = serde_json::to_string(&config).unwrap_or_default();
    Ok((trainer.to_table()?, prov))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    fn corpus() -> Corpus {
        // Few sentences + strong skew: tail entities are observed almost
        // never, so corpus co-occurrence alone cannot place them.
        Corpus::generate(CorpusConfig {
            vocab: 200,
            topics: 5,
            sentences: 150,
            sentence_len: 8,
            zipf_alpha: 1.6,
            topic_coherence: 0.9,
            seed: 21,
        })
        .unwrap()
    }

    /// Mean cosine of rare entities to their type anchor set.
    fn tail_type_alignment(t: &EmbeddingTable, c: &Corpus) -> f64 {
        let bands = c.popularity_bands(5);
        let tail = &bands[4];
        let mut total = 0.0;
        let mut n = 0;
        for &e in tail {
            // compare to the most popular same-type entity
            let ty = c.kg.entity_type[e];
            let anchor = (0..c.config.vocab)
                .filter(|&x| c.kg.entity_type[x] == ty && x != e)
                .max_by_key(|&x| c.frequency[x])
                .unwrap();
            total += t
                .cosine(&Corpus::entity_name(e), &Corpus::entity_name(anchor))
                .unwrap();
            n += 1;
        }
        total / n as f64
    }

    #[test]
    fn kg_signals_pull_tail_toward_types() {
        let c = corpus();
        let base_cfg = SgnsConfig {
            dim: 24,
            epochs: 3,
            ..SgnsConfig::default()
        };
        let (plain, _) = crate::sgns::train_sgns(&c, base_cfg.clone()).unwrap();
        let (kg, prov) = train_kg_sgns(
            &c,
            KgSgnsConfig {
                base: base_cfg,
                kg_pairs_per_entity: 8,
                ..KgSgnsConfig::default()
            },
        )
        .unwrap();
        let plain_align = tail_type_alignment(&plain, &c);
        let kg_align = tail_type_alignment(&kg, &c);
        assert!(
            kg_align > plain_align + 0.05,
            "KG training must align the tail with its types (plain {plain_align:.3} vs kg {kg_align:.3})"
        );
        assert_eq!(prov.trainer, "kg-sgns");
    }

    #[test]
    fn disabled_signals_rejected() {
        let c = corpus();
        let cfg = KgSgnsConfig {
            use_types: false,
            use_relations: false,
            ..KgSgnsConfig::default()
        };
        assert!(train_kg_sgns(&c, cfg).is_err());
    }

    #[test]
    fn deterministic() {
        let c = corpus();
        let cfg = KgSgnsConfig {
            base: SgnsConfig {
                epochs: 1,
                dim: 8,
                ..SgnsConfig::default()
            },
            ..KgSgnsConfig::default()
        };
        let (a, _) = train_kg_sgns(&c, cfg.clone()).unwrap();
        let (b, _) = train_kg_sgns(&c, cfg).unwrap();
        assert_eq!(a.get("e3"), b.get("e3"));
    }

    #[test]
    fn type_only_and_relation_only_variants_run() {
        let c = corpus();
        let base = SgnsConfig {
            epochs: 1,
            dim: 8,
            ..SgnsConfig::default()
        };
        for (ty, rel) in [(true, false), (false, true)] {
            let cfg = KgSgnsConfig {
                base: base.clone(),
                use_types: ty,
                use_relations: rel,
                ..KgSgnsConfig::default()
            };
            let (t, _) = train_kg_sgns(&c, cfg).unwrap();
            assert_eq!(t.len(), 200);
        }
    }
}
