//! # fstore-embed
//!
//! The embedding ecosystem (paper §3): everything a feature store needs to
//! treat pretrained embeddings as first-class citizens.
//!
//! * [`store`] — named, versioned embedding tables with provenance and
//!   consumer lineage (the "embedding store" of §3.1.2 / §4).
//! * [`corpus`] — synthetic self-supervised training data with controllable
//!   popularity skew, topic structure, and a typed knowledge graph
//!   (substitute for the paper's web-scale corpora; see DESIGN.md).
//! * [`sgns`] — skip-gram with negative sampling, the canonical
//!   self-supervised embedding trainer.
//! * [`kg`] — knowledge-graph-augmented SGNS (Bootleg-style type/relation
//!   signals, §3.1.1).
//! * [`ppmi`] — count-based baseline: PPMI matrix + truncated SVD.
//! * [`compress`] — scalar quantization and PCA (the memory-budget knobs of
//!   Leszczynski/May's instability & compression studies).
//! * [`quality`] — embedding quality metrics: k-NN overlap between versions,
//!   the eigenspace overlap score, semantic displacement after Procrustes
//!   alignment (§3.1.2).
//! * [`align`] — orthogonal-Procrustes version alignment, which keeps
//!   deployed models working across embedding updates (§4's dot-product
//!   staleness problem).
//! * [`eig`] — the small dense symmetric-eigen / SVD kernels those metrics
//!   need.

// Index-based loops are clearer than iterator chains in the dense
// numeric kernels below; silence the style lint crate-wide.
#![allow(clippy::needless_range_loop)]

pub mod align;
pub mod compress;
pub mod corpus;
pub mod db;
pub mod eig;
pub mod kg;
pub mod ppmi;
pub mod quality;
pub mod sgns;
pub mod spill;
pub mod store;

pub use align::{align_to_reference, AlignmentReport};
pub use compress::{PcaModel, QuantizedTable};
pub use corpus::{Corpus, CorpusConfig, KnowledgeGraph};
pub use db::EmbeddingDb;
pub use kg::KgSgnsConfig;
pub use ppmi::PpmiConfig;
pub use quality::{eigenspace_overlap, knn_overlap, semantic_displacement};
pub use sgns::{SgnsConfig, SgnsTrainer};
pub use spill::VectorPager;
pub use store::{EmbeddingProvenance, EmbeddingStore, EmbeddingTable, EmbeddingVersion};
