//! Count-based embedding baseline: shifted PPMI matrix + truncated
//! eigendecomposition (the classic alternative to SGNS; Levy & Goldberg
//! showed SGNS implicitly factorizes this matrix). Used by E7 as a second,
//! structurally different embedding family.

use crate::corpus::Corpus;
use crate::store::{EmbeddingProvenance, EmbeddingTable};
use fstore_common::{FsError, Result, Rng, Xoshiro256};

/// PPMI + truncated factorization hyper-parameters.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PpmiConfig {
    pub dim: usize,
    pub window: usize,
    /// SPPMI shift `log(k)` — `k` mimics SGNS's negative-sample count.
    pub shift_k: f64,
    /// Orthogonal-iteration sweeps.
    pub iterations: usize,
    pub seed: u64,
}

impl Default for PpmiConfig {
    fn default() -> Self {
        PpmiConfig {
            dim: 32,
            window: 3,
            shift_k: 1.0,
            iterations: 30,
            seed: 23,
        }
    }
}

/// Train PPMI-SVD embeddings over `corpus`.
pub fn train_ppmi(
    corpus: &Corpus,
    config: PpmiConfig,
) -> Result<(EmbeddingTable, EmbeddingProvenance)> {
    let v = corpus.config.vocab;
    if config.dim == 0 || config.dim > v {
        return Err(FsError::Embedding(format!(
            "PPMI dim must be in 1..={v}, got {}",
            config.dim
        )));
    }
    if config.shift_k < 1.0 {
        return Err(FsError::Embedding("shift_k must be >= 1".into()));
    }

    // Dense symmetric SPPMI matrix.
    let co = corpus.cooccurrence(config.window);
    let mut row_sum = vec![0.0f64; v];
    let mut total = 0.0f64;
    for (&(a, b), &n) in &co {
        row_sum[a] += n;
        row_sum[b] += n;
        total += 2.0 * n;
    }
    if total == 0.0 {
        return Err(FsError::Embedding("empty co-occurrence matrix".into()));
    }
    let log_shift = config.shift_k.ln();
    let mut m = vec![0.0f64; v * v];
    for (&(a, b), &n) in &co {
        let pmi = ((n * total) / (row_sum[a] * row_sum[b])).ln() - log_shift;
        let val = pmi.max(0.0);
        if val > 0.0 {
            m[a * v + b] = val;
            m[b * v + a] = val;
        }
    }

    // Orthogonal (block power) iteration for the top-`dim` eigenpairs.
    let k = config.dim;
    let mut rng = Xoshiro256::seeded(config.seed);
    let mut q: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..v).map(|_| rng.normal()).collect())
        .collect();
    gram_schmidt(&mut q);
    for _ in 0..config.iterations.max(1) {
        let mut z: Vec<Vec<f64>> = q.iter().map(|col| matvec_sym(&m, v, col)).collect();
        gram_schmidt(&mut z);
        q = z;
    }
    // Rayleigh quotients → eigenvalue magnitudes for scaling.
    let lambda: Vec<f64> = q
        .iter()
        .map(|col| {
            let mcol = matvec_sym(&m, v, col);
            col.iter().zip(&mcol).map(|(a, b)| a * b).sum::<f64>().abs()
        })
        .collect();

    // Embedding rows: e_i[j] = q_j[i] * sqrt(λ_j)
    let mut table = EmbeddingTable::new(k)?;
    for e in 0..v {
        let vec: Vec<f32> = (0..k)
            .map(|j| (q[j][e] * lambda[j].sqrt()) as f32)
            .collect();
        table.insert(Corpus::entity_name(e), vec)?;
    }
    let prov = EmbeddingProvenance {
        trainer: "ppmi-svd".into(),
        config: serde_json::to_string(&config).unwrap_or_default(),
        corpus_hash: corpus.hash(),
        seed: config.seed,
        parent: None,
        notes: String::new(),
    };
    Ok((table, prov))
}

fn matvec_sym(m: &[f64], n: usize, x: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; n];
    for (r, o) in out.iter_mut().enumerate() {
        let row = &m[r * n..(r + 1) * n];
        *o = row.iter().zip(x).map(|(a, b)| a * b).sum();
    }
    out
}

/// In-place modified Gram–Schmidt; replaces near-dependent columns with
/// fresh random directions is NOT needed here (random init, full rank whp).
fn gram_schmidt(cols: &mut [Vec<f64>]) {
    for i in 0..cols.len() {
        for j in 0..i {
            let proj: f64 = cols[i].iter().zip(&cols[j]).map(|(a, b)| a * b).sum();
            let cj = cols[j].clone();
            for (x, p) in cols[i].iter_mut().zip(&cj) {
                *x -= proj * p;
            }
        }
        let n: f64 = cols[i].iter().map(|x| x * x).sum::<f64>().sqrt();
        if n > 1e-12 {
            for x in &mut cols[i] {
                *x /= n;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    fn corpus() -> Corpus {
        Corpus::generate(CorpusConfig {
            vocab: 100,
            topics: 4,
            sentences: 800,
            sentence_len: 10,
            topic_coherence: 0.9,
            seed: 31,
            ..CorpusConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn learns_topic_structure() {
        let c = corpus();
        let (t, prov) = train_ppmi(
            &c,
            PpmiConfig {
                dim: 16,
                ..PpmiConfig::default()
            },
        )
        .unwrap();
        assert_eq!(prov.trainer, "ppmi-svd");
        let mut rng = Xoshiro256::seeded(9);
        let (mut same, mut diff) = (0.0, 0.0);
        let (mut ns, mut nd) = (0, 0);
        while ns < 200 || nd < 200 {
            let a = rng.below(100) as usize;
            let b = rng.below(100) as usize;
            if a == b {
                continue;
            }
            let cos = t
                .cosine(&Corpus::entity_name(a), &Corpus::entity_name(b))
                .unwrap();
            if c.same_topic(a, b) && ns < 200 {
                same += cos;
                ns += 1;
            } else if !c.same_topic(a, b) && nd < 200 {
                diff += cos;
                nd += 1;
            }
        }
        let (same, diff) = (same / ns as f64, diff / nd as f64);
        assert!(same > diff + 0.2, "PPMI same {same:.3} vs diff {diff:.3}");
    }

    #[test]
    fn validation() {
        let c = corpus();
        assert!(train_ppmi(
            &c,
            PpmiConfig {
                dim: 0,
                ..PpmiConfig::default()
            }
        )
        .is_err());
        assert!(train_ppmi(
            &c,
            PpmiConfig {
                dim: 500,
                ..PpmiConfig::default()
            }
        )
        .is_err());
        assert!(train_ppmi(
            &c,
            PpmiConfig {
                shift_k: 0.5,
                ..PpmiConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn deterministic() {
        let c = corpus();
        let cfg = PpmiConfig {
            dim: 8,
            iterations: 10,
            ..PpmiConfig::default()
        };
        let (a, _) = train_ppmi(&c, cfg.clone()).unwrap();
        let (b, _) = train_ppmi(&c, cfg).unwrap();
        assert_eq!(a.get("e7"), b.get("e7"));
    }

    #[test]
    fn dims_and_coverage() {
        let c = corpus();
        let (t, _) = train_ppmi(
            &c,
            PpmiConfig {
                dim: 12,
                iterations: 5,
                ..PpmiConfig::default()
            },
        )
        .unwrap();
        assert_eq!(t.dim(), 12);
        assert_eq!(t.len(), 100);
        assert!(t.get("e0").unwrap().iter().all(|x| x.is_finite()));
    }
}
