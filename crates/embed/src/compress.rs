//! Embedding compression: uniform scalar quantization and PCA — the two
//! memory-budget axes of the instability/compression studies (Leszczynski
//! et al.; May et al.). The budget of an embedding is `rows × dim × bits`;
//! E6 sweeps (dim, bits) and E7 scores the compressed tables with the
//! eigenspace overlap metric.

use crate::eig::symmetric_eigen;
use crate::store::EmbeddingTable;
use fstore_common::{FsError, Result};
use fstore_models::Matrix;

/// A uniformly scalar-quantized embedding table (per-dimension ranges).
#[derive(Debug, Clone)]
pub struct QuantizedTable {
    bits: u8,
    dim: usize,
    lo: Vec<f32>,
    step: Vec<f32>,
    /// codes per entity, `dim` codes each (u16 holds up to 16 bits)
    codes: Vec<(String, Vec<u16>)>,
}

impl QuantizedTable {
    /// Quantize `table` to `bits` bits per dimension (1..=16).
    pub fn quantize(table: &EmbeddingTable, bits: u8) -> Result<QuantizedTable> {
        if !(1..=16).contains(&bits) {
            return Err(FsError::Embedding(format!(
                "bits must be 1..=16, got {bits}"
            )));
        }
        if table.is_empty() {
            return Err(FsError::Embedding("cannot quantize an empty table".into()));
        }
        let dim = table.dim();
        let keys = table.keys();
        let mut lo = vec![f32::INFINITY; dim];
        let mut hi = vec![f32::NEG_INFINITY; dim];
        for k in &keys {
            for (d, &x) in table.get(k).unwrap().iter().enumerate() {
                lo[d] = lo[d].min(x);
                hi[d] = hi[d].max(x);
            }
        }
        let levels = (1u32 << bits) - 1;
        let step: Vec<f32> = lo
            .iter()
            .zip(&hi)
            .map(|(&l, &h)| if h > l { (h - l) / levels as f32 } else { 1.0 })
            .collect();
        let codes = keys
            .iter()
            .map(|k| {
                let v = table.get(k).unwrap();
                let c: Vec<u16> = v
                    .iter()
                    .enumerate()
                    .map(|(d, &x)| {
                        let q = ((x - lo[d]) / step[d]).round();
                        q.clamp(0.0, levels as f32) as u16
                    })
                    .collect();
                (k.to_string(), c)
            })
            .collect();
        Ok(QuantizedTable {
            bits,
            dim,
            lo,
            step,
            codes,
        })
    }

    pub fn bits(&self) -> u8 {
        self.bits
    }

    pub fn len(&self) -> usize {
        self.codes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Logical size in bytes (codes only): `rows × dim × bits / 8`.
    pub fn payload_bytes(&self) -> usize {
        self.codes.len() * self.dim * self.bits as usize / 8
    }

    /// Reconstruct a dequantized [`EmbeddingTable`].
    pub fn dequantize(&self) -> Result<EmbeddingTable> {
        let mut t = EmbeddingTable::new(self.dim)?;
        for (k, codes) in &self.codes {
            let v: Vec<f32> = codes
                .iter()
                .enumerate()
                .map(|(d, &c)| self.lo[d] + c as f32 * self.step[d])
                .collect();
            t.insert(k.clone(), v)?;
        }
        Ok(t)
    }

    /// Worst-case reconstruction error per dimension (half a step).
    pub fn max_error(&self) -> f32 {
        self.step.iter().fold(0.0f32, |m, &s| m.max(s / 2.0))
    }
}

/// A fitted PCA projection.
#[derive(Debug, Clone)]
pub struct PcaModel {
    mean: Vec<f64>,
    /// d × k projection (columns = principal components)
    components: Matrix,
    /// fraction of total variance captured
    pub explained_variance: f64,
}

impl PcaModel {
    /// Fit PCA to the vectors of `table`, keeping `k` components.
    pub fn fit(table: &EmbeddingTable, k: usize) -> Result<PcaModel> {
        let d = table.dim();
        if k == 0 || k > d {
            return Err(FsError::Embedding(format!(
                "PCA k must be in 1..={d}, got {k}"
            )));
        }
        let keys = table.keys();
        let n = keys.len();
        if n < 2 {
            return Err(FsError::Embedding("PCA needs at least 2 vectors".into()));
        }
        let mut mean = vec![0.0f64; d];
        for key in &keys {
            for (m, &x) in mean.iter_mut().zip(table.get(key).unwrap()) {
                *m += f64::from(x);
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        // covariance d×d
        let mut cov = Matrix::zeros(d, d);
        for key in &keys {
            let v = table.get(key).unwrap();
            for i in 0..d {
                let xi = f64::from(v[i]) - mean[i];
                for j in i..d {
                    let xj = f64::from(v[j]) - mean[j];
                    cov.set(i, j, cov.get(i, j) + xi * xj);
                }
            }
        }
        for i in 0..d {
            for j in i..d {
                let x = cov.get(i, j) / (n - 1) as f64;
                cov.set(i, j, x);
                cov.set(j, i, x);
            }
        }
        let (evals, evecs) = symmetric_eigen(&cov)?;
        let total: f64 = evals.iter().map(|l| l.max(0.0)).sum();
        let kept: f64 = evals.iter().take(k).map(|l| l.max(0.0)).sum();
        let mut components = Matrix::zeros(d, k);
        for c in 0..k {
            for r in 0..d {
                components.set(r, c, evecs.get(r, c));
            }
        }
        Ok(PcaModel {
            mean,
            components,
            explained_variance: if total > 0.0 { kept / total } else { 1.0 },
        })
    }

    pub fn output_dim(&self) -> usize {
        self.components.cols()
    }

    /// Project one vector.
    pub fn transform(&self, v: &[f32]) -> Result<Vec<f32>> {
        if v.len() != self.mean.len() {
            return Err(FsError::Embedding("PCA transform dim mismatch".into()));
        }
        let centered: Vec<f64> = v
            .iter()
            .zip(&self.mean)
            .map(|(&x, m)| f64::from(x) - m)
            .collect();
        let k = self.components.cols();
        let mut out = vec![0.0f32; k];
        for (c, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (r, &x) in centered.iter().enumerate() {
                acc += x * self.components.get(r, c);
            }
            *o = acc as f32;
        }
        Ok(out)
    }

    /// Project a whole table into a lower-dimensional one.
    pub fn transform_table(&self, table: &EmbeddingTable) -> Result<EmbeddingTable> {
        let mut out = EmbeddingTable::new(self.output_dim())?;
        for k in table.keys() {
            out.insert(k.to_string(), self.transform(table.get(k).unwrap())?)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fstore_common::{Rng, Xoshiro256};

    fn random_table(n: usize, d: usize, seed: u64) -> EmbeddingTable {
        let mut rng = Xoshiro256::seeded(seed);
        let mut t = EmbeddingTable::new(d).unwrap();
        for i in 0..n {
            let v: Vec<f32> = (0..d).map(|_| rng.normal() as f32).collect();
            t.insert(format!("e{i}"), v).unwrap();
        }
        t
    }

    #[test]
    fn quantize_dequantize_error_bounds() {
        let t = random_table(100, 8, 1);
        for bits in [2u8, 4, 8, 16] {
            let q = QuantizedTable::quantize(&t, bits).unwrap();
            let dq = q.dequantize().unwrap();
            let bound = f64::from(q.max_error()) + 1e-6;
            for k in t.keys() {
                for (&a, &b) in t.get(k).unwrap().iter().zip(dq.get(k).unwrap()) {
                    assert!(
                        (f64::from(a) - f64::from(b)).abs() <= bound,
                        "bits={bits}: |{a} - {b}| > {bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn more_bits_less_error() {
        let t = random_table(200, 16, 2);
        let mut last = f64::INFINITY;
        for bits in [2u8, 4, 8] {
            let q = QuantizedTable::quantize(&t, bits).unwrap();
            let dq = q.dequantize().unwrap();
            let mut err = 0.0;
            for k in t.keys() {
                for (&a, &b) in t.get(k).unwrap().iter().zip(dq.get(k).unwrap()) {
                    err += (f64::from(a) - f64::from(b)).powi(2);
                }
            }
            assert!(err < last, "bits={bits}: error {err} should be < {last}");
            last = err;
        }
    }

    #[test]
    fn payload_shrinks_with_bits() {
        let t = random_table(64, 32, 3);
        let q4 = QuantizedTable::quantize(&t, 4).unwrap();
        let q8 = QuantizedTable::quantize(&t, 8).unwrap();
        assert_eq!(q4.payload_bytes() * 2, q8.payload_bytes());
        assert_eq!(q8.payload_bytes(), 64 * 32);
        assert_eq!(q4.len(), 64);
    }

    #[test]
    fn quantize_validation() {
        let t = random_table(4, 4, 4);
        assert!(QuantizedTable::quantize(&t, 0).is_err());
        assert!(QuantizedTable::quantize(&t, 17).is_err());
        let empty = EmbeddingTable::new(4).unwrap();
        assert!(QuantizedTable::quantize(&empty, 8).is_err());
    }

    #[test]
    fn constant_dimension_quantizes_exactly() {
        let mut t = EmbeddingTable::new(2).unwrap();
        t.insert("a", vec![5.0, 1.0]).unwrap();
        t.insert("b", vec![5.0, 2.0]).unwrap();
        let q = QuantizedTable::quantize(&t, 4).unwrap();
        let dq = q.dequantize().unwrap();
        assert_eq!(dq.get("a").unwrap()[0], 5.0);
        assert_eq!(dq.get("b").unwrap()[0], 5.0);
    }

    #[test]
    fn pca_recovers_dominant_direction() {
        // points along (1,1,0) with small noise
        let mut rng = Xoshiro256::seeded(5);
        let mut t = EmbeddingTable::new(3).unwrap();
        for i in 0..200 {
            let a = rng.normal() as f32 * 5.0;
            let eps = rng.normal() as f32 * 0.1;
            t.insert(format!("e{i}"), vec![a + eps, a - eps, eps])
                .unwrap();
        }
        let pca = PcaModel::fit(&t, 1).unwrap();
        assert!(pca.explained_variance > 0.95, "{}", pca.explained_variance);
        let proj = pca.transform_table(&t).unwrap();
        assert_eq!(proj.dim(), 1);
        // projected coordinate correlates with a: spread preserved
        let spread: Vec<f32> = proj
            .keys()
            .iter()
            .map(|k| proj.get(k).unwrap()[0])
            .collect();
        let max = spread.iter().fold(f32::MIN, |m, &x| m.max(x));
        let min = spread.iter().fold(f32::MAX, |m, &x| m.min(x));
        assert!(max - min > 10.0, "projection collapsed");
    }

    #[test]
    fn pca_validation() {
        let t = random_table(10, 4, 6);
        assert!(PcaModel::fit(&t, 0).is_err());
        assert!(PcaModel::fit(&t, 5).is_err());
        let tiny = random_table(1, 4, 7);
        assert!(PcaModel::fit(&tiny, 2).is_err());
        let pca = PcaModel::fit(&t, 2).unwrap();
        assert!(pca.transform(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn pca_explained_variance_increases_with_k() {
        let t = random_table(100, 8, 8);
        let v2 = PcaModel::fit(&t, 2).unwrap().explained_variance;
        let v6 = PcaModel::fit(&t, 6).unwrap().explained_variance;
        let v8 = PcaModel::fit(&t, 8).unwrap().explained_variance;
        assert!(v2 < v6 && v6 < v8);
        assert!((v8 - 1.0).abs() < 1e-9, "full rank explains everything");
    }
}
