//! Synthetic self-supervised training data (DESIGN.md substitution for the
//! paper's web-scale corpora).
//!
//! The generator produces corpora with the three statistical properties the
//! paper's embedding-quality discussion hinges on:
//!
//! 1. **Popularity skew** — entity frequencies are Zipfian, so "rare things"
//!    exist and are poorly represented (§3.1.1, Orr et al.);
//! 2. **Latent semantic structure** — every entity belongs to a latent topic
//!    and sentences are topic-coherent, so embeddings have neighborhoods a
//!    k-NN metric can probe (Wendlandt et al.);
//! 3. **A typed knowledge graph** — entities carry a type and relation
//!    edges, the structured signal the Bootleg-style trainer exploits to
//!    rescue the tail (E5).

use fstore_common::hash::FxHashMap;
use fstore_common::{FsError, Result, Rng, Xoshiro256, Zipf};

/// Corpus generation parameters.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Vocabulary size (number of distinct entities).
    pub vocab: usize,
    /// Number of latent topics entities are assigned to.
    pub topics: usize,
    /// Number of sentences to generate.
    pub sentences: usize,
    /// Tokens per sentence.
    pub sentence_len: usize,
    /// Zipf exponent of the entity popularity distribution.
    pub zipf_alpha: f64,
    /// Probability a token is drawn from the sentence topic rather than the
    /// global (noise) distribution — higher = tighter semantic structure.
    pub topic_coherence: f64,
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            vocab: 2_000,
            topics: 20,
            sentences: 4_000,
            sentence_len: 12,
            zipf_alpha: 1.0,
            topic_coherence: 0.85,
            seed: 13,
        }
    }
}

/// The typed knowledge graph over corpus entities: every entity has a type
/// (its latent topic, which is exactly the structure NED systems read out of
/// a KB) and relation edges to same-topic entities.
#[derive(Debug, Clone)]
pub struct KnowledgeGraph {
    /// `entity_type[e]` = type id of entity `e`.
    pub entity_type: Vec<usize>,
    /// Relation edges `(head, tail)`, undirected semantics.
    pub relations: Vec<(usize, usize)>,
    adjacency: Vec<Vec<usize>>,
}

impl KnowledgeGraph {
    pub fn neighbors(&self, entity: usize) -> &[usize] {
        &self.adjacency[entity]
    }

    pub fn num_types(&self) -> usize {
        self.entity_type.iter().max().map_or(0, |m| m + 1)
    }
}

/// A generated corpus: token-id sentences plus the generating structure
/// (kept so experiments can measure quality against ground truth).
#[derive(Debug, Clone)]
pub struct Corpus {
    pub config: CorpusConfig,
    /// Sentences of entity ids (rank order: 0 = most popular).
    pub sentences: Vec<Vec<usize>>,
    /// Ground-truth topic of each entity.
    pub topic_of: Vec<usize>,
    /// The knowledge graph over entities.
    pub kg: KnowledgeGraph,
    /// Total occurrences of each entity in the corpus.
    pub frequency: Vec<u64>,
}

impl Corpus {
    /// Generate a corpus (deterministic in `config.seed`).
    pub fn generate(config: CorpusConfig) -> Result<Corpus> {
        if config.vocab == 0 || config.topics == 0 || config.vocab < config.topics {
            return Err(FsError::InvalidArgument(
                "corpus needs vocab >= topics >= 1".into(),
            ));
        }
        if !(0.0..=1.0).contains(&config.topic_coherence) {
            return Err(FsError::InvalidArgument(
                "topic_coherence must be in [0,1]".into(),
            ));
        }
        let mut rng = Xoshiro256::seeded(config.seed);

        // Assign each entity a topic (round-robin over rank keeps every
        // topic populated across the popularity spectrum).
        let topic_of: Vec<usize> = (0..config.vocab).map(|e| e % config.topics).collect();
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); config.topics];
        for (e, &t) in topic_of.iter().enumerate() {
            members[t].push(e);
        }

        // Per-topic Zipf over the topic's members (by global rank), plus a
        // global Zipf for noise tokens.
        let global = Zipf::new(config.vocab, config.zipf_alpha);
        let per_topic: Vec<Zipf> = members
            .iter()
            .map(|m| Zipf::new(m.len(), config.zipf_alpha))
            .collect();

        let mut sentences = Vec::with_capacity(config.sentences);
        let mut frequency = vec![0u64; config.vocab];
        for _ in 0..config.sentences {
            let topic = rng.below(config.topics as u64) as usize;
            let mut sent = Vec::with_capacity(config.sentence_len);
            for _ in 0..config.sentence_len {
                let e = if rng.chance(config.topic_coherence) {
                    members[topic][per_topic[topic].sample(&mut rng)]
                } else {
                    global.sample(&mut rng)
                };
                frequency[e] += 1;
                sent.push(e);
            }
            sentences.push(sent);
        }

        // Relations: each entity links to up to 3 same-topic entities.
        let mut relations = Vec::new();
        let mut adjacency = vec![Vec::new(); config.vocab];
        for e in 0..config.vocab {
            let peers = &members[topic_of[e]];
            if peers.len() < 2 {
                continue;
            }
            for _ in 0..3usize.min(peers.len() - 1) {
                let other = loop {
                    let cand = *rng.choose(peers);
                    if cand != e {
                        break cand;
                    }
                };
                relations.push((e, other));
                adjacency[e].push(other);
                adjacency[other].push(e);
            }
        }

        let kg = KnowledgeGraph {
            entity_type: topic_of.clone(),
            relations,
            adjacency,
        };
        Ok(Corpus {
            config,
            sentences,
            topic_of,
            kg,
            frequency,
        })
    }

    /// Entity name used in embedding tables (`"e<rank>"`).
    pub fn entity_name(id: usize) -> String {
        format!("e{id}")
    }

    /// Content fingerprint for provenance.
    pub fn hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for s in &self.sentences {
            for &t in s {
                h ^= t as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        h
    }

    /// Entities grouped into `deciles` popularity bands by corpus frequency
    /// (band 0 = most frequent) — the slicing used by E5/E8.
    pub fn popularity_bands(&self, bands: usize) -> Vec<Vec<usize>> {
        let mut by_freq: Vec<usize> = (0..self.config.vocab).collect();
        by_freq.sort_by_key(|&e| std::cmp::Reverse(self.frequency[e]));
        let per = by_freq.len().div_ceil(bands);
        by_freq.chunks(per).map(<[usize]>::to_vec).collect()
    }

    /// Pairs of entities sharing a topic vs not — ground truth for
    /// similarity sanity checks.
    pub fn same_topic(&self, a: usize, b: usize) -> bool {
        self.topic_of[a] == self.topic_of[b]
    }

    /// Token co-occurrence counts within a +-`window` context, as a map
    /// `(min_id, max_id) -> count`. Shared by PPMI and tests.
    pub fn cooccurrence(&self, window: usize) -> FxHashMap<(usize, usize), f64> {
        let mut counts: FxHashMap<(usize, usize), f64> = FxHashMap::default();
        for sent in &self.sentences {
            for (i, &a) in sent.iter().enumerate() {
                let hi = (i + window).min(sent.len() - 1);
                for &b in &sent[i + 1..=hi] {
                    let key = (a.min(b), a.max(b));
                    *counts.entry(key).or_default() += 1.0;
                }
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Corpus {
        Corpus::generate(CorpusConfig {
            vocab: 100,
            topics: 5,
            sentences: 500,
            sentence_len: 10,
            ..CorpusConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.sentences, b.sentences);
        assert_eq!(a.hash(), b.hash());
        let c = Corpus::generate(CorpusConfig {
            seed: 99,
            vocab: 100,
            topics: 5,
            sentences: 500,
            sentence_len: 10,
            ..CorpusConfig::default()
        })
        .unwrap();
        assert_ne!(a.sentences, c.sentences);
    }

    #[test]
    fn config_validation() {
        assert!(Corpus::generate(CorpusConfig {
            vocab: 0,
            ..CorpusConfig::default()
        })
        .is_err());
        assert!(Corpus::generate(CorpusConfig {
            vocab: 5,
            topics: 10,
            ..CorpusConfig::default()
        })
        .is_err());
        assert!(Corpus::generate(CorpusConfig {
            topic_coherence: 1.5,
            ..CorpusConfig::default()
        })
        .is_err());
    }

    #[test]
    fn frequencies_are_zipfian() {
        let c = small();
        assert_eq!(c.frequency.iter().sum::<u64>(), 500 * 10);
        // head entity much more frequent than a mid-rank entity
        let head: u64 = c.frequency[..5].iter().sum();
        let tail: u64 = c.frequency[95..].iter().sum();
        assert!(head > 5 * tail.max(1), "head {head} tail {tail}");
    }

    #[test]
    fn sentences_are_topic_coherent() {
        let c = small();
        // majority topic share within sentences should beat 1/topics by a lot
        let mut agree = 0usize;
        let mut total = 0usize;
        for s in &c.sentences {
            let mut counts = [0usize; 5];
            for &e in s {
                counts[c.topic_of[e]] += 1;
            }
            agree += counts.iter().max().unwrap();
            total += s.len();
        }
        let share = agree as f64 / total as f64;
        assert!(share > 0.6, "topic coherence too weak: {share}");
    }

    #[test]
    fn kg_relations_are_same_topic() {
        let c = small();
        assert!(!c.kg.relations.is_empty());
        for &(h, t) in &c.kg.relations {
            assert_eq!(c.topic_of[h], c.topic_of[t]);
        }
        assert_eq!(c.kg.num_types(), 5);
        // adjacency is symmetric-ish: every neighbor edge appears in both lists
        for e in 0..100 {
            for &n in c.kg.neighbors(e) {
                assert!(c.kg.neighbors(n).contains(&e) || c.kg.neighbors(e).contains(&n));
            }
        }
    }

    #[test]
    fn popularity_bands_partition_vocab() {
        let c = small();
        let bands = c.popularity_bands(10);
        assert_eq!(bands.len(), 10);
        let total: usize = bands.iter().map(Vec::len).sum();
        assert_eq!(total, 100);
        // first band is strictly more popular than last
        let f = |b: &Vec<usize>| b.iter().map(|&e| c.frequency[e]).sum::<u64>();
        assert!(f(&bands[0]) > f(&bands[9]));
    }

    #[test]
    fn cooccurrence_counts_are_symmetric_keys() {
        let c = small();
        let co = c.cooccurrence(2);
        assert!(!co.is_empty());
        for (&(a, b), &n) in &co {
            assert!(a <= b);
            assert!(n > 0.0);
        }
    }
}
