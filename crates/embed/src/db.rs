//! `EmbeddingDb`: the epoch-versioned serving handle over the embedding
//! store.
//!
//! The serve path used to share the catalog as `Arc<RwLock<EmbeddingStore>>`,
//! so a republish (write lock) stalled every embedding read behind it.  Here
//! the whole store is republished as an immutable snapshot through a
//! [`SnapshotCell`]: readers resolve one `Arc` per request and are never
//! blocked, a republish is one pointer swap, and every publication bumps a
//! [`ReadEpoch`] that responses can echo so clients can assert which
//! publication answered them. Cheap because [`EmbeddingStore`] shares its
//! (immutable) versions via `Arc` internally.

use crate::store::{EmbeddingProvenance, EmbeddingStore, EmbeddingTable};
use fstore_common::{ReadEpoch, Result, SnapshotCell, Timestamp, Versioned};
use parking_lot::Mutex;
use std::sync::Arc;

struct Inner {
    /// The writer's working copy; the mutex serializes writers only.
    writer: Mutex<EmbeddingStore>,
    /// The published snapshot readers resolve from.
    cell: SnapshotCell<EmbeddingStore>,
}

/// Cheaply clonable shared handle to an epoch-versioned embedding store.
#[derive(Clone)]
pub struct EmbeddingDb {
    inner: Arc<Inner>,
}

impl EmbeddingDb {
    /// An empty store at [`ReadEpoch::ZERO`].
    pub fn new() -> Self {
        EmbeddingDb::from_store(EmbeddingStore::new())
    }

    /// Adopt an existing store as epoch zero.
    pub fn from_store(store: EmbeddingStore) -> Self {
        EmbeddingDb {
            inner: Arc::new(Inner {
                cell: SnapshotCell::new(store.clone()),
                writer: Mutex::new(store),
            }),
        }
    }

    /// Resolve the current snapshot; hold the `Arc` for as long as a
    /// consistent view is needed. Never blocks on a republish.
    pub fn snapshot(&self) -> Arc<EmbeddingStore> {
        self.inner.cell.load()
    }

    /// Resolve the current snapshot together with its publication epoch.
    pub fn read(&self) -> Versioned<EmbeddingStore> {
        self.inner.cell.read()
    }

    /// The epoch of the most recent publication.
    pub fn epoch(&self) -> ReadEpoch {
        self.inner.cell.epoch()
    }

    /// Publish `table` as the next version of `name` and swap the new
    /// snapshot in. Returns the qualified version name and the epoch the
    /// publication was stamped with.
    pub fn publish(
        &self,
        name: impl Into<String>,
        table: EmbeddingTable,
        provenance: EmbeddingProvenance,
        now: Timestamp,
    ) -> Result<(String, ReadEpoch)> {
        self.write(|store| store.publish(name, table, provenance, now))
    }

    /// Record a downstream consumer of `qualified` (lineage).
    pub fn register_consumer(
        &self,
        qualified: &str,
        model: impl Into<String>,
    ) -> Result<ReadEpoch> {
        Ok(self
            .write(|store| store.register_consumer(qualified, model))?
            .1)
    }

    /// Run a mutation against the working copy and publish the result as the
    /// next snapshot. On `Err` nothing is published and the working copy is
    /// rolled back, so failed mutations never leak into later publications.
    pub fn write<R>(
        &self,
        f: impl FnOnce(&mut EmbeddingStore) -> Result<R>,
    ) -> Result<(R, ReadEpoch)> {
        let mut store = self.inner.writer.lock();
        match f(&mut store) {
            Ok(out) => {
                let epoch = self.inner.cell.publish(store.clone());
                Ok((out, epoch))
            }
            Err(e) => {
                *store = (*self.inner.cell.load()).clone();
                Err(e)
            }
        }
    }

    /// Observe every publication (replication taps in here; see
    /// [`fstore_common::snapshot::PublishHook`]). Replaces existing hooks.
    pub fn set_publish_hook(
        &self,
        hook: impl Fn(&Versioned<EmbeddingStore>) + Send + Sync + 'static,
    ) {
        self.inner.cell.set_publish_hook(hook);
    }

    /// Observe every publication *alongside* existing observers — lets
    /// replication and durability both tap the same publish path.
    pub fn add_publish_hook(
        &self,
        hook: impl Fn(&Versioned<EmbeddingStore>) + Send + Sync + 'static,
    ) {
        self.inner.cell.add_publish_hook(hook);
    }

    /// Recent publications, oldest to newest (retention defaults to
    /// [`fstore_common::snapshot::DEFAULT_HISTORY_DEPTH`]; see
    /// [`set_history_depth`](Self::set_history_depth)).
    pub fn history(&self) -> Vec<Versioned<EmbeddingStore>> {
        self.inner.cell.history()
    }

    /// The snapshot published at exactly `epoch`, if still retained.
    pub fn at_epoch(&self, epoch: ReadEpoch) -> Option<Versioned<EmbeddingStore>> {
        self.inner.cell.at_epoch(epoch)
    }

    /// Change the history ring's retention bound.
    pub fn set_history_depth(&self, depth: usize) {
        self.inner.cell.set_history_depth(depth);
    }

    /// Replication: run a mutation and publish at the explicit
    /// (leader-dictated) `epoch` so follower responses echo the leader's
    /// epochs exactly. On `Err` the working copy rolls back and nothing is
    /// published.
    pub fn apply_replica<R>(
        &self,
        epoch: ReadEpoch,
        f: impl FnOnce(&mut EmbeddingStore) -> Result<R>,
    ) -> Result<R> {
        let mut store = self.inner.writer.lock();
        match f(&mut store) {
            Ok(out) => {
                self.inner.cell.restore(store.clone(), epoch);
                Ok(out)
            }
            Err(e) => {
                *store = (*self.inner.cell.load()).clone();
                Err(e)
            }
        }
    }

    /// Replication: adopt `store` wholesale as the snapshot at `epoch`
    /// (follower bootstrap / full-snapshot fallback).
    pub fn restore(&self, store: EmbeddingStore, epoch: ReadEpoch) {
        let mut writer = self.inner.writer.lock();
        *writer = store.clone();
        self.inner.cell.restore(store, epoch);
    }
}

impl Default for EmbeddingDb {
    fn default() -> Self {
        EmbeddingDb::new()
    }
}

impl std::fmt::Debug for EmbeddingDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EmbeddingDb")
            .field("epoch", &self.epoch())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn table(entries: &[(&str, Vec<f32>)]) -> EmbeddingTable {
        let mut t = EmbeddingTable::new(entries[0].1.len()).unwrap();
        for (k, v) in entries {
            t.insert(*k, v.clone()).unwrap();
        }
        t
    }

    #[test]
    fn publish_bumps_epoch_and_freezes_old_snapshots() {
        let db = EmbeddingDb::new();
        assert_eq!(db.epoch(), ReadEpoch::ZERO);

        let (q1, e1) = db
            .publish(
                "words",
                table(&[("a", vec![1.0, 0.0])]),
                EmbeddingProvenance::default(),
                Timestamp::millis(1),
            )
            .unwrap();
        assert_eq!(q1, "words@v1");
        assert_eq!(e1, ReadEpoch(1));

        let old = db.snapshot();
        let (q2, e2) = db
            .publish(
                "words",
                table(&[("a", vec![0.0, 1.0])]),
                EmbeddingProvenance::default(),
                Timestamp::millis(2),
            )
            .unwrap();
        assert_eq!(q2, "words@v2");
        assert_eq!(e2, ReadEpoch(2));

        // the pre-republish snapshot still serves v1 as latest
        assert_eq!(old.latest("words").unwrap().version, 1);
        assert_eq!(db.snapshot().latest("words").unwrap().version, 2);
    }

    #[test]
    fn failed_publish_leaves_epoch_and_state_untouched() {
        let db = EmbeddingDb::new();
        let empty = EmbeddingTable::new(2).unwrap();
        assert!(db
            .publish("e", empty, EmbeddingProvenance::default(), Timestamp::EPOCH)
            .is_err());
        assert_eq!(db.epoch(), ReadEpoch::ZERO);
        assert!(db.snapshot().list().is_empty());
    }

    #[test]
    fn readers_see_consistent_versions_under_republish() {
        // Vector contents encode the version number; a reader must never see
        // a version whose vector disagrees.
        let db = EmbeddingDb::new();
        db.publish(
            "emb",
            table(&[("k", vec![1.0])]),
            EmbeddingProvenance::default(),
            Timestamp::EPOCH,
        )
        .unwrap();

        let writer = {
            let db = db.clone();
            thread::spawn(move || {
                for v in 2..=50u32 {
                    db.publish(
                        "emb",
                        table(&[("k", vec![v as f32])]),
                        EmbeddingProvenance::default(),
                        Timestamp::millis(i64::from(v)),
                    )
                    .unwrap();
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let db = db.clone();
                thread::spawn(move || {
                    let mut last_epoch = ReadEpoch::ZERO;
                    for _ in 0..500 {
                        let v = db.read();
                        let latest = v.value.latest("emb").unwrap();
                        assert_eq!(
                            latest.table.get("k"),
                            Some(&[latest.version as f32][..]),
                            "torn read: vector does not match its version"
                        );
                        assert!(v.epoch >= last_epoch);
                        last_epoch = v.epoch;
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(db.snapshot().latest("emb").unwrap().version, 50);
    }
}
