//! Embedding quality metrics (paper §3.1.2):
//!
//! * **k-NN overlap** between two embedding versions — the neighborhood
//!   stability measure of Wendlandt et al. / Hellrich & Hahn;
//! * **eigenspace overlap score** — May et al.'s predictor of the
//!   downstream performance of compressed embeddings;
//! * **semantic displacement** — mean cosine shift of aligned entities
//!   after an orthogonal Procrustes alignment (rotation-invariant change).
//!
//! Downstream instability (Leszczynski et al.) is the fourth metric of the
//! family; it lives in `fstore-models::metrics::prediction_flips` because it
//! is computed on model predictions, not embeddings.

use crate::eig::{procrustes, thin_svd};
use crate::store::EmbeddingTable;
use fstore_common::hash::FxHashSet;
use fstore_common::{FsError, Result};
use fstore_models::Matrix;

/// Entities present in both tables, sorted (the aligned evaluation set).
pub fn common_keys(a: &EmbeddingTable, b: &EmbeddingTable) -> Vec<String> {
    a.keys()
        .into_iter()
        .filter(|k| b.contains(k))
        .map(str::to_string)
        .collect()
}

/// Mean k-NN overlap between versions over `keys` (or all common keys):
/// for each entity, `|NN_a(e, k) ∩ NN_b(e, k)| / k`, averaged. Neighbor
/// candidates are restricted to the common key set so a vocabulary change
/// doesn't masquerade as neighborhood churn.
pub fn knn_overlap(
    a: &EmbeddingTable,
    b: &EmbeddingTable,
    k: usize,
    keys: Option<&[String]>,
) -> Result<f64> {
    if k == 0 {
        return Err(FsError::InvalidArgument("k must be positive".into()));
    }
    let common = common_keys(a, b);
    if common.len() < k + 1 {
        return Err(FsError::Embedding(format!(
            "need at least k+1={} common entities, have {}",
            k + 1,
            common.len()
        )));
    }
    let eval_keys: Vec<&str> = match keys {
        Some(ks) => ks.iter().map(String::as_str).collect(),
        None => common.iter().map(String::as_str).collect(),
    };
    let common_set: FxHashSet<&str> = common.iter().map(String::as_str).collect();

    let mut total = 0.0;
    let mut n = 0usize;
    for key in eval_keys {
        if !common_set.contains(key) {
            continue;
        }
        let nn = |t: &EmbeddingTable| -> Result<FxHashSet<String>> {
            // neighbors within the common vocabulary only
            let mut v: Vec<(String, f64)> = t
                .nearest(key, common.len())?
                .into_iter()
                .filter(|(name, _)| common_set.contains(name.as_str()))
                .collect();
            v.truncate(k);
            Ok(v.into_iter().map(|(name, _)| name).collect())
        };
        let na = nn(a)?;
        let nb = nn(b)?;
        total += na.intersection(&nb).count() as f64 / k as f64;
        n += 1;
    }
    if n == 0 {
        return Err(FsError::Embedding(
            "no evaluation keys present in both tables".into(),
        ));
    }
    Ok(total / n as f64)
}

/// Build the aligned embedding matrix of `keys` from `t` (rows in key order).
pub fn table_matrix(t: &EmbeddingTable, keys: &[String]) -> Result<Matrix> {
    let rows: Vec<Vec<f64>> = keys
        .iter()
        .map(|k| {
            t.get_f64(k)
                .ok_or_else(|| FsError::not_found("embedding", k.clone()))
        })
        .collect::<Result<_>>()?;
    Matrix::from_rows(rows)
}

/// Eigenspace overlap score (May et al.): with `U`, `Ũ` the left singular
/// bases of the aligned matrices, `score = ‖Uᵀ Ũ‖_F² / max(d, d̃)` ∈ [0, 1].
/// 1 means the compressed embedding spans the same space.
pub fn eigenspace_overlap(a: &EmbeddingTable, b: &EmbeddingTable) -> Result<f64> {
    let keys = common_keys(a, b);
    if keys.len() < 2 {
        return Err(FsError::Embedding("need at least 2 common entities".into()));
    }
    let ma = table_matrix(a, &keys)?;
    let mb = table_matrix(b, &keys)?;
    let (ua, _, _) = thin_svd(&ma, ma.cols())?;
    let (ub, _, _) = thin_svd(&mb, mb.cols())?;
    let cross = ua.transpose().matmul(&ub)?;
    let score = cross.frobenius().powi(2) / ua.cols().max(ub.cols()) as f64;
    Ok(score.clamp(0.0, 1.0))
}

/// Semantic displacement: align `b` onto `a` with an orthogonal rotation
/// (Procrustes over the common keys), then return the mean `1 − cos(a_e,
/// b_e·W)`. 0 = identical up to rotation; requires equal dimensions.
pub fn semantic_displacement(a: &EmbeddingTable, b: &EmbeddingTable) -> Result<f64> {
    if a.dim() != b.dim() {
        return Err(FsError::Embedding(format!(
            "displacement needs equal dims ({} vs {})",
            a.dim(),
            b.dim()
        )));
    }
    let keys = common_keys(a, b);
    if keys.len() < 2 {
        return Err(FsError::Embedding("need at least 2 common entities".into()));
    }
    let ma = table_matrix(a, &keys)?;
    let mb = table_matrix(b, &keys)?;
    let w = procrustes(&mb, &ma)?; // rotate b toward a
    let aligned = mb.matmul(&w)?;
    let mut total = 0.0;
    for r in 0..keys.len() {
        total += 1.0 - fstore_models::linalg::cosine(ma.row(r), aligned.row(r));
    }
    Ok(total / keys.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fstore_common::{Rng, Xoshiro256};

    fn random_table(n: usize, d: usize, seed: u64) -> EmbeddingTable {
        let mut rng = Xoshiro256::seeded(seed);
        let mut t = EmbeddingTable::new(d).unwrap();
        for i in 0..n {
            t.insert(
                format!("e{i}"),
                (0..d).map(|_| rng.normal() as f32).collect::<Vec<f32>>(),
            )
            .unwrap();
        }
        t
    }

    fn rotate_table(t: &EmbeddingTable, seed: u64) -> EmbeddingTable {
        // random rotation via Gram-Schmidt of a random matrix
        let d = t.dim();
        let mut rng = Xoshiro256::seeded(seed);
        let mut cols: Vec<Vec<f64>> = (0..d)
            .map(|_| (0..d).map(|_| rng.normal()).collect())
            .collect();
        for i in 0..d {
            for j in 0..i {
                let p: f64 = cols[i].iter().zip(&cols[j]).map(|(a, b)| a * b).sum();
                let cj = cols[j].clone();
                for (x, y) in cols[i].iter_mut().zip(cj) {
                    *x -= p * y;
                }
            }
            let n: f64 = cols[i].iter().map(|x| x * x).sum::<f64>().sqrt();
            for x in &mut cols[i] {
                *x /= n;
            }
        }
        let mut out = EmbeddingTable::new(d).unwrap();
        for k in t.keys() {
            let v = t.get_f64(k).unwrap();
            let rotated: Vec<f32> = (0..d)
                .map(|c| v.iter().zip(&cols[c]).map(|(a, b)| a * b).sum::<f64>() as f32)
                .collect();
            out.insert(k.to_string(), rotated).unwrap();
        }
        out
    }

    #[test]
    fn knn_overlap_identity_is_one() {
        let t = random_table(50, 8, 1);
        assert!((knn_overlap(&t, &t, 5, None).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn knn_overlap_random_tables_is_low() {
        let a = random_table(100, 8, 2);
        let b = random_table(100, 8, 3);
        let o = knn_overlap(&a, &b, 5, None).unwrap();
        assert!(o < 0.3, "independent tables overlap {o}");
    }

    #[test]
    fn knn_overlap_is_rotation_invariant() {
        let a = random_table(60, 6, 4);
        let b = rotate_table(&a, 5);
        let o = knn_overlap(&a, &b, 5, None).unwrap();
        assert!(o > 0.99, "cosine neighborhoods survive rotation: {o}");
    }

    #[test]
    fn knn_overlap_validates() {
        let a = random_table(10, 4, 6);
        assert!(knn_overlap(&a, &a, 0, None).is_err());
        assert!(knn_overlap(&a, &a, 10, None).is_err(), "k+1 > n");
        let disjoint = random_table(10, 4, 7);
        // keys e0.. overlap actually; build a disjoint one
        let mut d2 = EmbeddingTable::new(4).unwrap();
        for k in disjoint.keys() {
            d2.insert(format!("x_{k}"), disjoint.get(k).unwrap().to_vec())
                .unwrap();
        }
        assert!(knn_overlap(&a, &d2, 2, None).is_err());
        // subset keys evaluated only
        let keys = vec!["e0".to_string(), "e1".to_string()];
        let o = knn_overlap(&a, &a, 3, Some(&keys)).unwrap();
        assert!((o - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eigenspace_overlap_identity_and_rotation() {
        let a = random_table(80, 6, 8);
        assert!((eigenspace_overlap(&a, &a).unwrap() - 1.0).abs() < 1e-6);
        let b = rotate_table(&a, 9);
        assert!((eigenspace_overlap(&a, &b).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn eigenspace_overlap_detects_subspace_loss() {
        // b keeps only 3 of a's 6 dimensions (projection)
        let a = random_table(80, 6, 10);
        let mut b = EmbeddingTable::new(6).unwrap();
        for k in a.keys() {
            let mut v = a.get(k).unwrap().to_vec();
            for x in v.iter_mut().skip(3) {
                *x = 0.0;
            }
            b.insert(k.to_string(), v).unwrap();
        }
        let o = eigenspace_overlap(&a, &b).unwrap();
        assert!(o < 0.7, "half the space is gone: {o}");
        assert!(o > 0.3, "but half remains: {o}");
    }

    #[test]
    fn eigenspace_overlap_with_independent_is_partial() {
        let a = random_table(200, 4, 11);
        let b = random_table(200, 4, 12);
        let o = eigenspace_overlap(&a, &b).unwrap();
        // random d-dim subspaces of R^n overlap ≈ d/n, tiny here
        assert!(o < 0.2, "independent overlap {o}");
    }

    #[test]
    fn displacement_zero_under_rotation() {
        let a = random_table(60, 5, 13);
        let b = rotate_table(&a, 14);
        let d = semantic_displacement(&a, &b).unwrap();
        assert!(d < 1e-6, "rotation must be aligned away: {d}");
    }

    #[test]
    fn displacement_detects_real_change() {
        let a = random_table(60, 5, 15);
        let b = random_table(60, 5, 16);
        let d = semantic_displacement(&a, &b).unwrap();
        assert!(d > 0.5, "independent tables displacement {d}");
        // dims must match
        let c = random_table(60, 4, 17);
        assert!(semantic_displacement(&a, &c).is_err());
    }

    #[test]
    fn displacement_of_noisy_copy_is_small_but_positive() {
        let a = random_table(60, 5, 18);
        let mut rng = Xoshiro256::seeded(19);
        let mut b = EmbeddingTable::new(5).unwrap();
        for k in a.keys() {
            let v: Vec<f32> = a
                .get(k)
                .unwrap()
                .iter()
                .map(|&x| x + rng.normal() as f32 * 0.05)
                .collect();
            b.insert(k.to_string(), v).unwrap();
        }
        let d = semantic_displacement(&a, &b).unwrap();
        assert!(d > 0.0 && d < 0.1, "small noise displacement {d}");
    }

    #[test]
    fn common_keys_sorted_intersection() {
        let mut a = EmbeddingTable::new(2).unwrap();
        let mut b = EmbeddingTable::new(2).unwrap();
        for k in ["z", "a", "m"] {
            a.insert(k, vec![1.0, 0.0]).unwrap();
        }
        for k in ["m", "a", "q"] {
            b.insert(k, vec![1.0, 0.0]).unwrap();
        }
        assert_eq!(common_keys(&a, &b), vec!["a".to_string(), "m".to_string()]);
    }
}
