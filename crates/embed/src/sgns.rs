//! Skip-gram with negative sampling (word2vec-style) — the canonical
//! self-supervised embedding trainer, in pure Rust.

use crate::corpus::Corpus;
use crate::store::{EmbeddingProvenance, EmbeddingTable};
use fstore_common::{FsError, Result, Rng, Xoshiro256};

/// SGNS hyper-parameters.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SgnsConfig {
    pub dim: usize,
    /// Context window (tokens on each side).
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    pub epochs: usize,
    pub learning_rate: f64,
    /// Frequent-token subsampling threshold (0 disables). word2vec's `t`.
    pub subsample: f64,
    pub seed: u64,
}

impl Default for SgnsConfig {
    fn default() -> Self {
        SgnsConfig {
            dim: 32,
            window: 3,
            negatives: 5,
            epochs: 4,
            learning_rate: 0.05,
            subsample: 0.0,
            seed: 17,
        }
    }
}

/// Trainer state: input ("word") and output ("context") vectors.
pub struct SgnsTrainer {
    pub config: SgnsConfig,
    vocab: usize,
    /// flattened vocab × dim
    input: Vec<f32>,
    output: Vec<f32>,
    /// cumulative distribution for negative sampling (freq^0.75)
    neg_cdf: Vec<f64>,
    /// per-token keep probability for subsampling
    keep_prob: Vec<f64>,
    rng: Xoshiro256,
}

impl SgnsTrainer {
    pub fn new(corpus: &Corpus, config: SgnsConfig) -> Result<Self> {
        if config.dim == 0 || config.window == 0 {
            return Err(FsError::Embedding(
                "SGNS dim and window must be positive".into(),
            ));
        }
        let vocab = corpus.config.vocab;
        let mut rng = Xoshiro256::seeded(config.seed);
        let scale = 0.5 / config.dim as f32;
        let input: Vec<f32> = (0..vocab * config.dim)
            .map(|_| (rng.next_f64() as f32 - 0.5) * 2.0 * scale)
            .collect();
        let output = vec![0.0f32; vocab * config.dim];

        // negative-sampling distribution ∝ freq^0.75
        let mut acc = 0.0;
        let mut neg_cdf = Vec::with_capacity(vocab);
        for &f in &corpus.frequency {
            acc += (f as f64).powf(0.75).max(1e-9);
            neg_cdf.push(acc);
        }
        for c in &mut neg_cdf {
            *c /= acc;
        }

        // word2vec subsampling: keep with prob sqrt(t/f) + t/f
        let total: f64 = corpus.frequency.iter().sum::<u64>() as f64;
        let keep_prob = corpus
            .frequency
            .iter()
            .map(|&f| {
                if config.subsample <= 0.0 || f == 0 {
                    1.0
                } else {
                    let r = config.subsample / (f as f64 / total);
                    (r.sqrt() + r).min(1.0)
                }
            })
            .collect();

        Ok(SgnsTrainer {
            config,
            vocab,
            input,
            output,
            neg_cdf,
            keep_prob,
            rng,
        })
    }

    fn sample_negative(&mut self) -> usize {
        let u = self.rng.next_f64();
        self.neg_cdf.partition_point(|&c| c < u).min(self.vocab - 1)
    }

    #[inline]
    fn row(buf: &[f32], dim: usize, i: usize) -> &[f32] {
        &buf[i * dim..(i + 1) * dim]
    }

    /// One SGD update on a (center, context, label) triple. Returns |grad|.
    fn update(&mut self, center: usize, context: usize, label: f32, lr: f32) {
        let dim = self.config.dim;
        let (ci, co) = (center * dim, context * dim);
        let mut dot = 0.0f32;
        for k in 0..dim {
            dot += self.input[ci + k] * self.output[co + k];
        }
        // stable sigmoid
        let pred = if dot >= 0.0 {
            1.0 / (1.0 + (-dot).exp())
        } else {
            let e = dot.exp();
            e / (1.0 + e)
        };
        let g = (pred - label) * lr;
        for k in 0..dim {
            let w = self.input[ci + k];
            let c = self.output[co + k];
            self.input[ci + k] = w - g * c;
            self.output[co + k] = c - g * w;
        }
    }

    /// Train on `corpus` (re-entrant: call again to continue training).
    pub fn train(&mut self, corpus: &Corpus) -> Result<()> {
        if corpus.config.vocab != self.vocab {
            return Err(FsError::Embedding(
                "corpus vocab changed under trainer".into(),
            ));
        }
        let window = self.config.window;
        let negatives = self.config.negatives;
        let lr0 = self.config.learning_rate as f32;
        let total_epochs = self.config.epochs.max(1);

        for epoch in 0..total_epochs {
            // linear decay, floored at 10%
            let lr = lr0 * (1.0 - epoch as f32 / total_epochs as f32).max(0.1);
            for s in 0..corpus.sentences.len() {
                // subsample a working copy of the sentence
                let mut sent: Vec<usize> = Vec::with_capacity(corpus.sentences[s].len());
                for &t in &corpus.sentences[s] {
                    if self.keep_prob[t] >= 1.0 || self.rng.chance(self.keep_prob[t]) {
                        sent.push(t);
                    }
                }
                for i in 0..sent.len() {
                    let center = sent[i];
                    let lo = i.saturating_sub(window);
                    let hi = (i + window).min(sent.len() - 1);
                    for j in lo..=hi {
                        if j == i {
                            continue;
                        }
                        let context = sent[j];
                        self.update(center, context, 1.0, lr);
                        for _ in 0..negatives {
                            let neg = self.sample_negative();
                            if neg != context {
                                self.update(center, neg, 0.0, lr);
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Extra positive pairs (KG augmentation hooks in through this).
    pub fn train_pairs(&mut self, pairs: &[(usize, usize)], lr: f32) -> Result<()> {
        let negatives = self.config.negatives;
        for &(a, b) in pairs {
            if a >= self.vocab || b >= self.vocab {
                return Err(FsError::Embedding(format!("pair ({a},{b}) out of vocab")));
            }
            self.update(a, b, 1.0, lr);
            for _ in 0..negatives {
                let neg = self.sample_negative();
                if neg != b {
                    self.update(a, neg, 0.0, lr);
                }
            }
        }
        Ok(())
    }

    /// Input vector of entity `id`.
    pub fn vector(&self, id: usize) -> &[f32] {
        Self::row(&self.input, self.config.dim, id)
    }

    /// Export input vectors as an [`EmbeddingTable`].
    pub fn to_table(&self) -> Result<EmbeddingTable> {
        let mut t = EmbeddingTable::new(self.config.dim)?;
        for e in 0..self.vocab {
            t.insert(Corpus::entity_name(e), self.vector(e).to_vec())?;
        }
        Ok(t)
    }

    /// Provenance record describing this training run over `corpus`.
    pub fn provenance(&self, corpus: &Corpus) -> EmbeddingProvenance {
        EmbeddingProvenance {
            trainer: "sgns".into(),
            config: serde_json::to_string(&self.config).unwrap_or_default(),
            corpus_hash: corpus.hash(),
            seed: self.config.seed,
            parent: None,
            notes: String::new(),
        }
    }
}

/// Convenience: train SGNS end-to-end and return the table.
pub fn train_sgns(
    corpus: &Corpus,
    config: SgnsConfig,
) -> Result<(EmbeddingTable, EmbeddingProvenance)> {
    let mut t = SgnsTrainer::new(corpus, config)?;
    t.train(corpus)?;
    let prov = t.provenance(corpus);
    Ok((t.to_table()?, prov))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    fn tiny_corpus(seed: u64) -> Corpus {
        Corpus::generate(CorpusConfig {
            vocab: 120,
            topics: 4,
            sentences: 800,
            sentence_len: 10,
            topic_coherence: 0.9,
            seed,
            ..CorpusConfig::default()
        })
        .unwrap()
    }

    fn mean_cosine(
        t: &EmbeddingTable,
        corpus: &Corpus,
        same_topic: bool,
        rng: &mut Xoshiro256,
    ) -> f64 {
        let mut total = 0.0;
        let mut n = 0;
        let vocab = corpus.config.vocab;
        while n < 300 {
            let a = rng.below(vocab as u64) as usize;
            let b = rng.below(vocab as u64) as usize;
            if a == b || corpus.same_topic(a, b) != same_topic {
                continue;
            }
            total += t
                .cosine(&Corpus::entity_name(a), &Corpus::entity_name(b))
                .unwrap();
            n += 1;
        }
        total / n as f64
    }

    #[test]
    fn learns_topic_structure() {
        let corpus = tiny_corpus(1);
        let (table, _) = train_sgns(
            &corpus,
            SgnsConfig {
                dim: 24,
                ..SgnsConfig::default()
            },
        )
        .unwrap();
        let mut rng = Xoshiro256::seeded(5);
        let same = mean_cosine(&table, &corpus, true, &mut rng);
        let diff = mean_cosine(&table, &corpus, false, &mut rng);
        assert!(
            same > diff + 0.15,
            "same-topic cosine {same:.3} must clearly beat cross-topic {diff:.3}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let corpus = tiny_corpus(2);
        let cfg = SgnsConfig {
            epochs: 1,
            ..SgnsConfig::default()
        };
        let (a, _) = train_sgns(&corpus, cfg.clone()).unwrap();
        let (b, _) = train_sgns(&corpus, cfg.clone()).unwrap();
        assert_eq!(a.get("e0"), b.get("e0"));
        let (c, _) = train_sgns(&corpus, SgnsConfig { seed: 999, ..cfg }).unwrap();
        assert_ne!(a.get("e0"), c.get("e0"));
    }

    #[test]
    fn table_has_all_entities_and_dim() {
        let corpus = tiny_corpus(3);
        let (table, prov) = train_sgns(
            &corpus,
            SgnsConfig {
                dim: 16,
                epochs: 1,
                ..SgnsConfig::default()
            },
        )
        .unwrap();
        assert_eq!(table.len(), 120);
        assert_eq!(table.dim(), 16);
        assert!(table.get("e119").is_some());
        assert_eq!(prov.trainer, "sgns");
        assert_eq!(prov.corpus_hash, corpus.hash());
    }

    #[test]
    fn config_validation() {
        let corpus = tiny_corpus(4);
        assert!(SgnsTrainer::new(
            &corpus,
            SgnsConfig {
                dim: 0,
                ..SgnsConfig::default()
            }
        )
        .is_err());
        assert!(SgnsTrainer::new(
            &corpus,
            SgnsConfig {
                window: 0,
                ..SgnsConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn train_pairs_validates_vocab() {
        let corpus = tiny_corpus(5);
        let mut t = SgnsTrainer::new(&corpus, SgnsConfig::default()).unwrap();
        assert!(t.train_pairs(&[(0, 1)], 0.01).is_ok());
        assert!(t.train_pairs(&[(0, 10_000)], 0.01).is_err());
    }

    #[test]
    fn extra_pair_training_pulls_vectors_together() {
        let corpus = tiny_corpus(6);
        let mut t = SgnsTrainer::new(
            &corpus,
            SgnsConfig {
                epochs: 1,
                ..SgnsConfig::default()
            },
        )
        .unwrap();
        t.train(&corpus).unwrap();
        // pick two cross-topic entities and hammer them together
        let (a, b) = (0usize, 1usize);
        let before = t.to_table().unwrap().cosine("e0", "e1").unwrap();
        let pairs: Vec<(usize, usize)> = std::iter::repeat_n((a, b), 500).collect();
        t.train_pairs(&pairs, 0.05).unwrap();
        let after = t.to_table().unwrap().cosine("e0", "e1").unwrap();
        assert!(
            after > before,
            "pair training must increase similarity ({before} → {after})"
        );
    }

    #[test]
    fn subsampling_keeps_training_stable() {
        let corpus = tiny_corpus(7);
        let (table, _) = train_sgns(
            &corpus,
            SgnsConfig {
                subsample: 1e-3,
                epochs: 1,
                ..SgnsConfig::default()
            },
        )
        .unwrap();
        // vectors stay finite
        let v = table.get("e0").unwrap();
        assert!(v.iter().all(|x| x.is_finite()));
    }
}
