//! The embedding store: named, versioned embedding tables with provenance
//! and downstream-consumer lineage (paper §3.1.2 and §4: versioning,
//! provenance, and understanding which systems an embedding update hits).

use fstore_common::hash::FxHashMap;
use fstore_common::{FsError, Result, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Provenance carried by every published embedding version.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct EmbeddingProvenance {
    /// Trainer identifier (e.g. `"sgns"`, `"kg-sgns"`, `"ppmi-svd"`).
    pub trainer: String,
    /// Trainer hyper-parameters as JSON.
    pub config: String,
    /// Hash of the training corpus (content fingerprint).
    pub corpus_hash: u64,
    /// Seed the trainer ran with.
    pub seed: u64,
    /// Parent version this one was derived from (e.g. by patching), if any.
    pub parent: Option<u32>,
    /// Free-form notes ("patched rows for slice X", …).
    pub notes: String,
}

/// One immutable embedding table: entity key → dense vector.
#[derive(Debug, Clone)]
pub struct EmbeddingTable {
    dim: usize,
    vectors: FxHashMap<String, Vec<f32>>,
}

impl EmbeddingTable {
    pub fn new(dim: usize) -> Result<Self> {
        if dim == 0 {
            return Err(FsError::Embedding(
                "embedding dimension must be positive".into(),
            ));
        }
        Ok(EmbeddingTable {
            dim,
            vectors: FxHashMap::default(),
        })
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    pub fn insert(&mut self, key: impl Into<String>, vector: Vec<f32>) -> Result<()> {
        if vector.len() != self.dim {
            return Err(FsError::Embedding(format!(
                "vector dim {} != table dim {}",
                vector.len(),
                self.dim
            )));
        }
        self.vectors.insert(key.into(), vector);
        Ok(())
    }

    pub fn get(&self, key: &str) -> Option<&[f32]> {
        self.vectors.get(key).map(Vec::as_slice)
    }

    /// Entity keys in sorted order (deterministic iteration).
    pub fn keys(&self) -> Vec<&str> {
        let mut ks: Vec<&str> = self.vectors.keys().map(String::as_str).collect();
        ks.sort_unstable();
        ks
    }

    pub fn contains(&self, key: &str) -> bool {
        self.vectors.contains_key(key)
    }

    /// f64 copy of one vector (model-input boundary).
    pub fn get_f64(&self, key: &str) -> Option<Vec<f64>> {
        self.get(key)
            .map(|v| v.iter().map(|&x| f64::from(x)).collect())
    }

    /// Cosine similarity between two stored entities.
    pub fn cosine(&self, a: &str, b: &str) -> Result<f64> {
        let va = self
            .get(a)
            .ok_or_else(|| FsError::not_found("embedding", a.to_string()))?;
        let vb = self
            .get(b)
            .ok_or_else(|| FsError::not_found("embedding", b.to_string()))?;
        Ok(cosine32(va, vb))
    }

    /// Exact k-nearest neighbours of `key` by cosine (brute force — the ANN
    /// indexes in `fstore-index` are the scale path).
    pub fn nearest(&self, key: &str, k: usize) -> Result<Vec<(String, f64)>> {
        let q = self
            .get(key)
            .ok_or_else(|| FsError::not_found("embedding", key.to_string()))?;
        let mut scored: Vec<(String, f64)> = self
            .vectors
            .iter()
            .filter(|(name, _)| name.as_str() != key)
            .map(|(name, v)| (name.clone(), cosine32(q, v)))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        scored.truncate(k);
        Ok(scored)
    }

    /// All rows as parallel `(keys, vectors)` in sorted-key order — the
    /// deterministic export an ANN index build consumes (row id `i` in the
    /// index is `keys[i]` here).
    pub fn export_rows(&self) -> (Vec<String>, Vec<Vec<f32>>) {
        let mut keys: Vec<&String> = self.vectors.keys().collect();
        keys.sort_unstable();
        let vectors = keys.iter().map(|k| self.vectors[*k].clone()).collect();
        (keys.into_iter().cloned().collect(), vectors)
    }

    /// Overwrite a row (returns the previous vector). Used by patching;
    /// note the *store* keeps tables immutable — patch a copy, then publish.
    pub fn replace(&mut self, key: &str, vector: Vec<f32>) -> Result<Option<Vec<f32>>> {
        if vector.len() != self.dim {
            return Err(FsError::Embedding(
                "replacement vector has wrong dim".into(),
            ));
        }
        Ok(self.vectors.insert(key.to_string(), vector))
    }
}

fn cosine32(a: &[f32], b: &[f32]) -> f64 {
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        dot += f64::from(x) * f64::from(y);
        na += f64::from(x) * f64::from(x);
        nb += f64::from(y) * f64::from(y);
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

/// A published, immutable version of an embedding.
#[derive(Debug, Clone)]
pub struct EmbeddingVersion {
    pub name: String,
    pub version: u32,
    pub created_at: Timestamp,
    pub provenance: EmbeddingProvenance,
    pub table: EmbeddingTable,
    /// Downstream consumers registered against this version (model names).
    pub consumers: Vec<String>,
}

impl EmbeddingVersion {
    pub fn qualified_name(&self) -> String {
        format!("{}@v{}", self.name, self.version)
    }
}

/// The versioned catalog of embeddings.
///
/// Versions are immutable once published and shared via `Arc`, so `Clone`
/// is O(#versions) pointer bumps — cheap enough that the serving layer
/// republishes the whole store as an immutable snapshot on every change
/// (see [`crate::EmbeddingDb`]).
#[derive(Debug, Default, Clone)]
pub struct EmbeddingStore {
    embeddings: BTreeMap<String, Vec<Arc<EmbeddingVersion>>>,
}

impl EmbeddingStore {
    pub fn new() -> Self {
        EmbeddingStore::default()
    }

    /// Publish a table as the next version of `name`.
    pub fn publish(
        &mut self,
        name: impl Into<String>,
        table: EmbeddingTable,
        provenance: EmbeddingProvenance,
        now: Timestamp,
    ) -> Result<String> {
        if table.is_empty() {
            return Err(FsError::Embedding(
                "refusing to publish an empty embedding".into(),
            ));
        }
        let name = name.into();
        let versions = self.embeddings.entry(name.clone()).or_default();
        if let Some(prev) = versions.last() {
            if prev.table.dim() != table.dim() {
                // Dimension changes are allowed but recorded loudly in notes —
                // downstream dot products against old model weights break
                // (§4's "dot product … can lose meaning").
            }
        }
        let version = versions.last().map_or(1, |v| v.version + 1);
        let v = EmbeddingVersion {
            name: name.clone(),
            version,
            created_at: now,
            provenance,
            table,
            consumers: Vec::new(),
        };
        let qualified = v.qualified_name();
        versions.push(Arc::new(v));
        Ok(qualified)
    }

    pub fn latest(&self, name: &str) -> Result<&EmbeddingVersion> {
        self.embeddings
            .get(name)
            .and_then(|v| v.last())
            .map(|v| v.as_ref())
            .ok_or_else(|| FsError::not_found("embedding", name.to_string()))
    }

    pub fn get(&self, name: &str, version: u32) -> Result<&EmbeddingVersion> {
        self.embeddings
            .get(name)
            .and_then(|v| v.iter().find(|e| e.version == version))
            .map(|v| v.as_ref())
            .ok_or_else(|| FsError::not_found("embedding version", format!("{name}@v{version}")))
    }

    /// Resolve `"name@vN"` or plain `"name"` (latest).
    pub fn resolve(&self, qualified: &str) -> Result<&EmbeddingVersion> {
        match qualified.rsplit_once("@v") {
            Some((name, v)) => {
                let version: u32 = v.parse().map_err(|_| {
                    FsError::InvalidArgument(format!("bad embedding version in `{qualified}`"))
                })?;
                self.get(name, version)
            }
            None => self.latest(qualified),
        }
    }

    pub fn list(&self) -> Vec<&EmbeddingVersion> {
        self.embeddings
            .values()
            .filter_map(|v| v.last())
            .map(|v| v.as_ref())
            .collect()
    }

    pub fn versions_of(&self, name: &str) -> Result<Vec<u32>> {
        self.embeddings
            .get(name)
            .map(|v| v.iter().map(|e| e.version).collect())
            .ok_or_else(|| FsError::not_found("embedding", name.to_string()))
    }

    /// Replication: adopt a fully formed version — exact version number,
    /// timestamp, provenance, and consumer list — as shipped by a leader.
    /// Replaces the version if it already exists (idempotent re-apply) and
    /// keeps the per-name version list ordered.
    pub fn install_version(&mut self, version: EmbeddingVersion) -> Result<()> {
        if version.table.is_empty() {
            return Err(FsError::Embedding(
                "refusing to install an empty embedding".into(),
            ));
        }
        let versions = self.embeddings.entry(version.name.clone()).or_default();
        match versions.iter().position(|v| v.version >= version.version) {
            Some(i) if versions[i].version == version.version => {
                versions[i] = Arc::new(version);
            }
            Some(i) => versions.insert(i, Arc::new(version)),
            None => versions.push(Arc::new(version)),
        }
        Ok(())
    }

    /// Record that `model` consumes `name@vN` (lineage for E12).
    pub fn register_consumer(&mut self, qualified: &str, model: impl Into<String>) -> Result<()> {
        let (name, version) = parse_qualified(qualified)?;
        let versions = self
            .embeddings
            .get_mut(name)
            .ok_or_else(|| FsError::not_found("embedding", name.to_string()))?;
        let v = versions
            .iter_mut()
            .find(|e| e.version == version)
            .ok_or_else(|| FsError::not_found("embedding version", qualified.to_string()))?;
        // Copy-on-write: snapshots sharing this version keep their original
        // consumer list.
        Arc::make_mut(v).consumers.push(model.into());
        Ok(())
    }

    /// Consumers registered against a version.
    pub fn consumers(&self, qualified: &str) -> Result<&[String]> {
        let (name, version) = parse_qualified(qualified)?;
        Ok(&self.get(name, version)?.consumers)
    }
}

fn parse_qualified(qualified: &str) -> Result<(&str, u32)> {
    let (name, v) = qualified.rsplit_once("@v").ok_or_else(|| {
        FsError::InvalidArgument(format!("expected `name@vN`, got `{qualified}`"))
    })?;
    let version = v
        .parse()
        .map_err(|_| FsError::InvalidArgument(format!("bad version in `{qualified}`")))?;
    Ok((name, version))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(entries: &[(&str, Vec<f32>)]) -> EmbeddingTable {
        let mut t = EmbeddingTable::new(entries[0].1.len()).unwrap();
        for (k, v) in entries {
            t.insert(*k, v.clone()).unwrap();
        }
        t
    }

    #[test]
    fn table_insert_get_dims() {
        let mut t = EmbeddingTable::new(3).unwrap();
        t.insert("a", vec![1.0, 0.0, 0.0]).unwrap();
        assert!(t.insert("b", vec![1.0]).is_err());
        assert_eq!(t.get("a"), Some(&[1.0, 0.0, 0.0][..]));
        assert_eq!(t.get("ghost"), None);
        assert_eq!(t.get_f64("a"), Some(vec![1.0, 0.0, 0.0]));
        assert!(EmbeddingTable::new(0).is_err());
    }

    #[test]
    fn cosine_and_nearest() {
        let t = table(&[
            ("x", vec![1.0, 0.0]),
            ("same", vec![2.0, 0.0]),
            ("orth", vec![0.0, 1.0]),
            ("anti", vec![-1.0, 0.0]),
        ]);
        assert!((t.cosine("x", "same").unwrap() - 1.0).abs() < 1e-9);
        assert!(t.cosine("x", "orth").unwrap().abs() < 1e-9);
        let nn = t.nearest("x", 2).unwrap();
        assert_eq!(nn[0].0, "same");
        assert_eq!(nn[1].0, "orth");
        assert!(t.nearest("ghost", 1).is_err());
        assert!(t.cosine("x", "ghost").is_err());
    }

    #[test]
    fn export_rows_is_sorted_and_aligned() {
        let t = table(&[
            ("b", vec![2.0, 0.0]),
            ("a", vec![1.0, 0.0]),
            ("c", vec![3.0, 0.0]),
        ]);
        let (keys, vectors) = t.export_rows();
        assert_eq!(keys, vec!["a", "b", "c"]);
        for (k, v) in keys.iter().zip(&vectors) {
            assert_eq!(t.get(k), Some(v.as_slice()));
        }
    }

    #[test]
    fn zero_vector_cosine_is_zero() {
        let t = table(&[("z", vec![0.0, 0.0]), ("x", vec![1.0, 0.0])]);
        assert_eq!(t.cosine("z", "x").unwrap(), 0.0);
    }

    #[test]
    fn publish_and_resolve_versions() {
        let mut store = EmbeddingStore::new();
        let t1 = table(&[("a", vec![1.0, 0.0])]);
        let q1 = store
            .publish(
                "words",
                t1,
                EmbeddingProvenance::default(),
                Timestamp::millis(1),
            )
            .unwrap();
        assert_eq!(q1, "words@v1");
        let t2 = table(&[("a", vec![0.0, 1.0])]);
        let q2 = store
            .publish(
                "words",
                t2,
                EmbeddingProvenance::default(),
                Timestamp::millis(2),
            )
            .unwrap();
        assert_eq!(q2, "words@v2");

        assert_eq!(store.latest("words").unwrap().version, 2);
        assert_eq!(
            store.get("words", 1).unwrap().table.get("a"),
            Some(&[1.0, 0.0][..])
        );
        assert_eq!(store.resolve("words@v1").unwrap().version, 1);
        assert_eq!(store.resolve("words").unwrap().version, 2);
        assert_eq!(store.versions_of("words").unwrap(), vec![1, 2]);
        assert!(store.resolve("words@vX").is_err());
        assert!(store.latest("ghost").is_err());
    }

    #[test]
    fn empty_table_rejected() {
        let mut store = EmbeddingStore::new();
        let t = EmbeddingTable::new(2).unwrap();
        assert!(store
            .publish("e", t, EmbeddingProvenance::default(), Timestamp::EPOCH)
            .is_err());
    }

    #[test]
    fn consumer_lineage() {
        let mut store = EmbeddingStore::new();
        store
            .publish(
                "ent",
                table(&[("a", vec![1.0])]),
                EmbeddingProvenance::default(),
                Timestamp::EPOCH,
            )
            .unwrap();
        store.register_consumer("ent@v1", "search_ranker").unwrap();
        store.register_consumer("ent@v1", "dedup_model").unwrap();
        assert_eq!(store.consumers("ent@v1").unwrap().len(), 2);
        assert!(store.register_consumer("ent@v9", "m").is_err());
        assert!(
            store.register_consumer("ent", "m").is_err(),
            "must pin a version"
        );
    }

    #[test]
    fn install_version_upserts_in_order() {
        let mut store = EmbeddingStore::new();
        let v = |n: u32, val: f32| EmbeddingVersion {
            name: "e".into(),
            version: n,
            created_at: Timestamp::millis(i64::from(n)),
            provenance: EmbeddingProvenance::default(),
            table: table(&[("a", vec![val])]),
            consumers: vec![format!("m{n}")],
        };
        store.install_version(v(2, 2.0)).unwrap();
        store.install_version(v(1, 1.0)).unwrap();
        assert_eq!(store.versions_of("e").unwrap(), vec![1, 2]);
        assert_eq!(store.latest("e").unwrap().version, 2);
        assert_eq!(store.consumers("e@v2").unwrap(), ["m2"]);
        // Re-install replaces in place (at-least-once replay).
        store.install_version(v(2, 9.0)).unwrap();
        assert_eq!(store.versions_of("e").unwrap(), vec![1, 2]);
        assert_eq!(store.latest("e").unwrap().table.get("a"), Some(&[9.0][..]));
        // Ordinary publication continues after the installed versions.
        let q = store
            .publish(
                "e",
                table(&[("a", vec![3.0])]),
                EmbeddingProvenance::default(),
                Timestamp::millis(3),
            )
            .unwrap();
        assert_eq!(q, "e@v3");
    }

    #[test]
    fn provenance_is_preserved() {
        let mut store = EmbeddingStore::new();
        let prov = EmbeddingProvenance {
            trainer: "sgns".into(),
            config: "{\"dim\":64}".into(),
            corpus_hash: 0xdead,
            seed: 7,
            parent: None,
            notes: "initial".into(),
        };
        store
            .publish(
                "e",
                table(&[("a", vec![1.0])]),
                prov.clone(),
                Timestamp::millis(5),
            )
            .unwrap();
        let v = store.latest("e").unwrap();
        assert_eq!(v.provenance, prov);
        assert_eq!(v.created_at, Timestamp::millis(5));
    }

    #[test]
    fn replace_patches_rows() {
        let mut t = table(&[("a", vec![1.0, 0.0])]);
        let old = t.replace("a", vec![0.0, 1.0]).unwrap();
        assert_eq!(old, Some(vec![1.0, 0.0]));
        assert_eq!(t.get("a"), Some(&[0.0, 1.0][..]));
        assert!(t.replace("a", vec![1.0]).is_err());
        assert_eq!(t.replace("new", vec![1.0, 1.0]).unwrap(), None);
    }
}
