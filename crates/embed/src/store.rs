//! The embedding store: named, versioned embedding tables with provenance
//! and downstream-consumer lineage (paper §3.1.2 and §4: versioning,
//! provenance, and understanding which systems an embedding update hits).

use crate::spill::VectorPager;
use fstore_common::hash::FxHashMap;
use fstore_common::{FsError, Result, Timestamp, VectorBuf};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Provenance carried by every published embedding version.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct EmbeddingProvenance {
    /// Trainer identifier (e.g. `"sgns"`, `"kg-sgns"`, `"ppmi-svd"`).
    pub trainer: String,
    /// Trainer hyper-parameters as JSON.
    pub config: String,
    /// Hash of the training corpus (content fingerprint).
    pub corpus_hash: u64,
    /// Seed the trainer ran with.
    pub seed: u64,
    /// Parent version this one was derived from (e.g. by patching), if any.
    pub parent: Option<u32>,
    /// Free-form notes ("patched rows for slice X", …).
    pub notes: String,
}

/// How a table's rows are stored.
///
/// `Resident` keeps every row in memory as a shared `Arc<[f32]>` (so a
/// read and a table clone are refcount bumps, never vector copies).
/// `Spilled` keeps the rows on disk behind a [`VectorPager`] — reads
/// fault blocks through the tier cache. Tables are immutable either way;
/// mutation helpers materialize a resident copy first.
#[derive(Debug, Clone)]
enum TableRepr {
    Resident(FxHashMap<String, Arc<[f32]>>),
    Spilled(Arc<dyn VectorPager>),
}

/// One immutable embedding table: entity key → dense vector.
#[derive(Debug, Clone)]
pub struct EmbeddingTable {
    dim: usize,
    repr: TableRepr,
}

impl EmbeddingTable {
    pub fn new(dim: usize) -> Result<Self> {
        if dim == 0 {
            return Err(FsError::Embedding(
                "embedding dimension must be positive".into(),
            ));
        }
        Ok(EmbeddingTable {
            dim,
            repr: TableRepr::Resident(FxHashMap::default()),
        })
    }

    /// Wrap a spilled table around a pager (the tier crate's demotion
    /// path). The pager's row order fixes the key set; the table itself
    /// holds no vector data.
    pub fn from_pager(pager: Arc<dyn VectorPager>) -> Result<Self> {
        let dim = pager.dim();
        if dim == 0 {
            return Err(FsError::Embedding(
                "embedding dimension must be positive".into(),
            ));
        }
        Ok(EmbeddingTable {
            dim,
            repr: TableRepr::Spilled(pager),
        })
    }

    /// True when rows live on disk behind a pager.
    pub fn is_spilled(&self) -> bool {
        matches!(self.repr, TableRepr::Spilled(_))
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn len(&self) -> usize {
        match &self.repr {
            TableRepr::Resident(vectors) => vectors.len(),
            TableRepr::Spilled(pager) => pager.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resident vector payload bytes (`0` for a spilled table — its cached
    /// blocks are accounted by the tier cache, not per table).
    pub fn resident_vector_bytes(&self) -> u64 {
        match &self.repr {
            TableRepr::Resident(vectors) => (vectors.len() * self.dim * 4) as u64,
            TableRepr::Spilled(_) => 0,
        }
    }

    /// The pager behind a spilled table, if any.
    pub fn pager(&self) -> Option<&Arc<dyn VectorPager>> {
        match &self.repr {
            TableRepr::Resident(_) => None,
            TableRepr::Spilled(pager) => Some(pager),
        }
    }

    pub fn insert(&mut self, key: impl Into<String>, vector: Vec<f32>) -> Result<()> {
        if vector.len() != self.dim {
            return Err(FsError::Embedding(format!(
                "vector dim {} != table dim {}",
                vector.len(),
                self.dim
            )));
        }
        self.make_resident()?;
        let TableRepr::Resident(vectors) = &mut self.repr else {
            unreachable!("make_resident leaves a resident repr");
        };
        vectors.insert(key.into(), vector.into());
        Ok(())
    }

    /// Borrow one resident row. Spilled tables return `None` — faulting a
    /// row produces a [`VectorBuf`] that cannot be lent out as a plain
    /// borrow, so paths that must work on both representations use
    /// [`EmbeddingTable::fetch`].
    pub fn get(&self, key: &str) -> Option<&[f32]> {
        match &self.repr {
            TableRepr::Resident(vectors) => vectors.get(key).map(|v| &v[..]),
            TableRepr::Spilled(_) => None,
        }
    }

    /// Read one row regardless of representation: a refcount bump on a
    /// resident row, a (possibly cached) block fault on a spilled one.
    /// `Ok(None)` means the key is absent; `Err` is an I/O or corruption
    /// failure from the pager.
    pub fn fetch(&self, key: &str) -> Result<Option<VectorBuf>> {
        match &self.repr {
            TableRepr::Resident(vectors) => Ok(vectors
                .get(key)
                .map(|v| VectorBuf::from_block(Arc::clone(v)))),
            TableRepr::Spilled(pager) => match pager.row_of(key) {
                Some(row) => pager.fetch_row(row).map(Some),
                None => Ok(None),
            },
        }
    }

    /// Entity keys in sorted order (deterministic iteration).
    pub fn keys(&self) -> Vec<&str> {
        match &self.repr {
            TableRepr::Resident(vectors) => {
                let mut ks: Vec<&str> = vectors.keys().map(String::as_str).collect();
                ks.sort_unstable();
                ks
            }
            TableRepr::Spilled(pager) => pager.keys().iter().map(String::as_str).collect(),
        }
    }

    pub fn contains(&self, key: &str) -> bool {
        match &self.repr {
            TableRepr::Resident(vectors) => vectors.contains_key(key),
            TableRepr::Spilled(pager) => pager.row_of(key).is_some(),
        }
    }

    /// f64 copy of one vector (model-input boundary). Faults through the
    /// pager on a spilled table; pager failures read as absent.
    pub fn get_f64(&self, key: &str) -> Option<Vec<f64>> {
        self.fetch(key)
            .ok()
            .flatten()
            .map(|v| v.iter().map(|&x| f64::from(x)).collect())
    }

    /// Cosine similarity between two stored entities.
    pub fn cosine(&self, a: &str, b: &str) -> Result<f64> {
        let va = self
            .fetch(a)?
            .ok_or_else(|| FsError::not_found("embedding", a.to_string()))?;
        let vb = self
            .fetch(b)?
            .ok_or_else(|| FsError::not_found("embedding", b.to_string()))?;
        Ok(cosine32(&va, &vb))
    }

    /// Exact k-nearest neighbours of `key` by cosine (brute force — the ANN
    /// indexes in `fstore-index` are the scale path). On a spilled table
    /// this is the exact-rerank path: the scan faults blocks through the
    /// tier cache rather than loading the version whole.
    pub fn nearest(&self, key: &str, k: usize) -> Result<Vec<(String, f64)>> {
        let q = self
            .fetch(key)?
            .ok_or_else(|| FsError::not_found("embedding", key.to_string()))?;
        let mut scored: Vec<(String, f64)> = match &self.repr {
            TableRepr::Resident(vectors) => vectors
                .iter()
                .filter(|(name, _)| name.as_str() != key)
                .map(|(name, v)| (name.clone(), cosine32(&q, v)))
                .collect(),
            TableRepr::Spilled(pager) => {
                let mut scored = Vec::with_capacity(pager.len().saturating_sub(1));
                for (row, name) in pager.keys().iter().enumerate() {
                    if name == key {
                        continue;
                    }
                    let v = pager.fetch_row(row)?;
                    scored.push((name.clone(), cosine32(&q, &v)));
                }
                scored
            }
        };
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        scored.truncate(k);
        Ok(scored)
    }

    /// All rows as parallel `(keys, vectors)` in sorted-key order — the
    /// deterministic export an ANN index build consumes (row id `i` in the
    /// index is `keys[i]` here).
    ///
    /// On a spilled table this streams every block through the pager; an
    /// unreadable segment panics, because the segment is CRC-guarded
    /// derived state whose loss is as fatal here as a failed allocation
    /// (fallible callers can use [`EmbeddingTable::try_export_rows`]).
    pub fn export_rows(&self) -> (Vec<String>, Vec<Vec<f32>>) {
        self.try_export_rows()
            .expect("spilled embedding segment unreadable")
    }

    /// Fallible twin of [`EmbeddingTable::export_rows`].
    pub fn try_export_rows(&self) -> Result<(Vec<String>, Vec<Vec<f32>>)> {
        match &self.repr {
            TableRepr::Resident(vectors) => {
                let mut keys: Vec<&String> = vectors.keys().collect();
                keys.sort_unstable();
                let rows = keys.iter().map(|k| vectors[*k].to_vec()).collect();
                Ok((keys.into_iter().cloned().collect(), rows))
            }
            TableRepr::Spilled(pager) => {
                let keys = pager.keys().to_vec();
                let mut rows = Vec::with_capacity(keys.len());
                for row in 0..keys.len() {
                    rows.push(pager.fetch_row(row)?.into_vec());
                }
                Ok((keys, rows))
            }
        }
    }

    /// Overwrite a row (returns the previous vector). Used by patching;
    /// note the *store* keeps tables immutable — patch a copy, then publish.
    pub fn replace(&mut self, key: &str, vector: Vec<f32>) -> Result<Option<Vec<f32>>> {
        if vector.len() != self.dim {
            return Err(FsError::Embedding(
                "replacement vector has wrong dim".into(),
            ));
        }
        self.make_resident()?;
        let TableRepr::Resident(vectors) = &mut self.repr else {
            unreachable!("make_resident leaves a resident repr");
        };
        Ok(vectors
            .insert(key.to_string(), vector.into())
            .map(|old| old.to_vec()))
    }

    /// Promote a spilled table to a fully-resident one (no-op when already
    /// resident). Mutating helpers call this so "clone an old version,
    /// patch it, publish" keeps working even when the clone was spilled.
    pub fn make_resident(&mut self) -> Result<()> {
        let TableRepr::Spilled(pager) = &self.repr else {
            return Ok(());
        };
        let mut vectors = FxHashMap::with_capacity_and_hasher(pager.len(), Default::default());
        for (row, key) in pager.keys().iter().enumerate() {
            let v = pager.fetch_row(row)?;
            vectors.insert(key.clone(), Arc::from(v.as_slice()));
        }
        self.repr = TableRepr::Resident(vectors);
        Ok(())
    }
}

fn cosine32(a: &[f32], b: &[f32]) -> f64 {
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        dot += f64::from(x) * f64::from(y);
        na += f64::from(x) * f64::from(x);
        nb += f64::from(y) * f64::from(y);
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

/// A published, immutable version of an embedding.
#[derive(Debug, Clone)]
pub struct EmbeddingVersion {
    pub name: String,
    pub version: u32,
    pub created_at: Timestamp,
    pub provenance: EmbeddingProvenance,
    pub table: EmbeddingTable,
    /// Downstream consumers registered against this version (model names).
    pub consumers: Vec<String>,
}

impl EmbeddingVersion {
    pub fn qualified_name(&self) -> String {
        format!("{}@v{}", self.name, self.version)
    }
}

/// The versioned catalog of embeddings.
///
/// Versions are immutable once published and shared via `Arc`, so `Clone`
/// is O(#versions) pointer bumps — cheap enough that the serving layer
/// republishes the whole store as an immutable snapshot on every change
/// (see [`crate::EmbeddingDb`]).
#[derive(Debug, Default, Clone)]
pub struct EmbeddingStore {
    embeddings: BTreeMap<String, Vec<Arc<EmbeddingVersion>>>,
}

impl EmbeddingStore {
    pub fn new() -> Self {
        EmbeddingStore::default()
    }

    /// Publish a table as the next version of `name`.
    pub fn publish(
        &mut self,
        name: impl Into<String>,
        table: EmbeddingTable,
        provenance: EmbeddingProvenance,
        now: Timestamp,
    ) -> Result<String> {
        if table.is_empty() {
            return Err(FsError::Embedding(
                "refusing to publish an empty embedding".into(),
            ));
        }
        let name = name.into();
        let versions = self.embeddings.entry(name.clone()).or_default();
        if let Some(prev) = versions.last() {
            if prev.table.dim() != table.dim() {
                // Dimension changes are allowed but recorded loudly in notes —
                // downstream dot products against old model weights break
                // (§4's "dot product … can lose meaning").
            }
        }
        let version = versions.last().map_or(1, |v| v.version + 1);
        let v = EmbeddingVersion {
            name: name.clone(),
            version,
            created_at: now,
            provenance,
            table,
            consumers: Vec::new(),
        };
        let qualified = v.qualified_name();
        versions.push(Arc::new(v));
        Ok(qualified)
    }

    pub fn latest(&self, name: &str) -> Result<&EmbeddingVersion> {
        self.embeddings
            .get(name)
            .and_then(|v| v.last())
            .map(|v| v.as_ref())
            .ok_or_else(|| FsError::not_found("embedding", name.to_string()))
    }

    pub fn get(&self, name: &str, version: u32) -> Result<&EmbeddingVersion> {
        self.embeddings
            .get(name)
            .and_then(|v| v.iter().find(|e| e.version == version))
            .map(|v| v.as_ref())
            .ok_or_else(|| FsError::not_found("embedding version", format!("{name}@v{version}")))
    }

    /// Resolve `"name@vN"` or plain `"name"` (latest).
    pub fn resolve(&self, qualified: &str) -> Result<&EmbeddingVersion> {
        match qualified.rsplit_once("@v") {
            Some((name, v)) => {
                let version: u32 = v.parse().map_err(|_| {
                    FsError::InvalidArgument(format!("bad embedding version in `{qualified}`"))
                })?;
                self.get(name, version)
            }
            None => self.latest(qualified),
        }
    }

    pub fn list(&self) -> Vec<&EmbeddingVersion> {
        self.embeddings
            .values()
            .filter_map(|v| v.last())
            .map(|v| v.as_ref())
            .collect()
    }

    pub fn versions_of(&self, name: &str) -> Result<Vec<u32>> {
        self.embeddings
            .get(name)
            .map(|v| v.iter().map(|e| e.version).collect())
            .ok_or_else(|| FsError::not_found("embedding", name.to_string()))
    }

    /// Replication: adopt a fully formed version — exact version number,
    /// timestamp, provenance, and consumer list — as shipped by a leader.
    /// Replaces the version if it already exists (idempotent re-apply) and
    /// keeps the per-name version list ordered.
    pub fn install_version(&mut self, version: EmbeddingVersion) -> Result<()> {
        if version.table.is_empty() {
            return Err(FsError::Embedding(
                "refusing to install an empty embedding".into(),
            ));
        }
        let versions = self.embeddings.entry(version.name.clone()).or_default();
        match versions.iter().position(|v| v.version >= version.version) {
            Some(i) if versions[i].version == version.version => {
                versions[i] = Arc::new(version);
            }
            Some(i) => versions.insert(i, Arc::new(version)),
            None => versions.push(Arc::new(version)),
        }
        Ok(())
    }

    /// Every version of every name, in (name, version) order. The tier
    /// demoter walks this to decide what is resident and what to spill;
    /// the `Arc`s let it hold candidates without borrowing the snapshot.
    pub fn iter_versions(&self) -> impl Iterator<Item = &Arc<EmbeddingVersion>> + '_ {
        self.embeddings.values().flatten()
    }

    /// Record that `model` consumes `name@vN` (lineage for E12).
    pub fn register_consumer(&mut self, qualified: &str, model: impl Into<String>) -> Result<()> {
        let (name, version) = parse_qualified(qualified)?;
        let versions = self
            .embeddings
            .get_mut(name)
            .ok_or_else(|| FsError::not_found("embedding", name.to_string()))?;
        let v = versions
            .iter_mut()
            .find(|e| e.version == version)
            .ok_or_else(|| FsError::not_found("embedding version", qualified.to_string()))?;
        // Copy-on-write: snapshots sharing this version keep their original
        // consumer list.
        Arc::make_mut(v).consumers.push(model.into());
        Ok(())
    }

    /// Consumers registered against a version.
    pub fn consumers(&self, qualified: &str) -> Result<&[String]> {
        let (name, version) = parse_qualified(qualified)?;
        Ok(&self.get(name, version)?.consumers)
    }
}

fn parse_qualified(qualified: &str) -> Result<(&str, u32)> {
    let (name, v) = qualified.rsplit_once("@v").ok_or_else(|| {
        FsError::InvalidArgument(format!("expected `name@vN`, got `{qualified}`"))
    })?;
    let version = v
        .parse()
        .map_err(|_| FsError::InvalidArgument(format!("bad version in `{qualified}`")))?;
    Ok((name, version))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(entries: &[(&str, Vec<f32>)]) -> EmbeddingTable {
        let mut t = EmbeddingTable::new(entries[0].1.len()).unwrap();
        for (k, v) in entries {
            t.insert(*k, v.clone()).unwrap();
        }
        t
    }

    #[test]
    fn table_insert_get_dims() {
        let mut t = EmbeddingTable::new(3).unwrap();
        t.insert("a", vec![1.0, 0.0, 0.0]).unwrap();
        assert!(t.insert("b", vec![1.0]).is_err());
        assert_eq!(t.get("a"), Some(&[1.0, 0.0, 0.0][..]));
        assert_eq!(t.get("ghost"), None);
        assert_eq!(t.get_f64("a"), Some(vec![1.0, 0.0, 0.0]));
        assert!(EmbeddingTable::new(0).is_err());
    }

    #[test]
    fn cosine_and_nearest() {
        let t = table(&[
            ("x", vec![1.0, 0.0]),
            ("same", vec![2.0, 0.0]),
            ("orth", vec![0.0, 1.0]),
            ("anti", vec![-1.0, 0.0]),
        ]);
        assert!((t.cosine("x", "same").unwrap() - 1.0).abs() < 1e-9);
        assert!(t.cosine("x", "orth").unwrap().abs() < 1e-9);
        let nn = t.nearest("x", 2).unwrap();
        assert_eq!(nn[0].0, "same");
        assert_eq!(nn[1].0, "orth");
        assert!(t.nearest("ghost", 1).is_err());
        assert!(t.cosine("x", "ghost").is_err());
    }

    #[test]
    fn export_rows_is_sorted_and_aligned() {
        let t = table(&[
            ("b", vec![2.0, 0.0]),
            ("a", vec![1.0, 0.0]),
            ("c", vec![3.0, 0.0]),
        ]);
        let (keys, vectors) = t.export_rows();
        assert_eq!(keys, vec!["a", "b", "c"]);
        for (k, v) in keys.iter().zip(&vectors) {
            assert_eq!(t.get(k), Some(v.as_slice()));
        }
    }

    #[test]
    fn zero_vector_cosine_is_zero() {
        let t = table(&[("z", vec![0.0, 0.0]), ("x", vec![1.0, 0.0])]);
        assert_eq!(t.cosine("z", "x").unwrap(), 0.0);
    }

    #[test]
    fn publish_and_resolve_versions() {
        let mut store = EmbeddingStore::new();
        let t1 = table(&[("a", vec![1.0, 0.0])]);
        let q1 = store
            .publish(
                "words",
                t1,
                EmbeddingProvenance::default(),
                Timestamp::millis(1),
            )
            .unwrap();
        assert_eq!(q1, "words@v1");
        let t2 = table(&[("a", vec![0.0, 1.0])]);
        let q2 = store
            .publish(
                "words",
                t2,
                EmbeddingProvenance::default(),
                Timestamp::millis(2),
            )
            .unwrap();
        assert_eq!(q2, "words@v2");

        assert_eq!(store.latest("words").unwrap().version, 2);
        assert_eq!(
            store.get("words", 1).unwrap().table.get("a"),
            Some(&[1.0, 0.0][..])
        );
        assert_eq!(store.resolve("words@v1").unwrap().version, 1);
        assert_eq!(store.resolve("words").unwrap().version, 2);
        assert_eq!(store.versions_of("words").unwrap(), vec![1, 2]);
        assert!(store.resolve("words@vX").is_err());
        assert!(store.latest("ghost").is_err());
    }

    #[test]
    fn empty_table_rejected() {
        let mut store = EmbeddingStore::new();
        let t = EmbeddingTable::new(2).unwrap();
        assert!(store
            .publish("e", t, EmbeddingProvenance::default(), Timestamp::EPOCH)
            .is_err());
    }

    #[test]
    fn consumer_lineage() {
        let mut store = EmbeddingStore::new();
        store
            .publish(
                "ent",
                table(&[("a", vec![1.0])]),
                EmbeddingProvenance::default(),
                Timestamp::EPOCH,
            )
            .unwrap();
        store.register_consumer("ent@v1", "search_ranker").unwrap();
        store.register_consumer("ent@v1", "dedup_model").unwrap();
        assert_eq!(store.consumers("ent@v1").unwrap().len(), 2);
        assert!(store.register_consumer("ent@v9", "m").is_err());
        assert!(
            store.register_consumer("ent", "m").is_err(),
            "must pin a version"
        );
    }

    #[test]
    fn install_version_upserts_in_order() {
        let mut store = EmbeddingStore::new();
        let v = |n: u32, val: f32| EmbeddingVersion {
            name: "e".into(),
            version: n,
            created_at: Timestamp::millis(i64::from(n)),
            provenance: EmbeddingProvenance::default(),
            table: table(&[("a", vec![val])]),
            consumers: vec![format!("m{n}")],
        };
        store.install_version(v(2, 2.0)).unwrap();
        store.install_version(v(1, 1.0)).unwrap();
        assert_eq!(store.versions_of("e").unwrap(), vec![1, 2]);
        assert_eq!(store.latest("e").unwrap().version, 2);
        assert_eq!(store.consumers("e@v2").unwrap(), ["m2"]);
        // Re-install replaces in place (at-least-once replay).
        store.install_version(v(2, 9.0)).unwrap();
        assert_eq!(store.versions_of("e").unwrap(), vec![1, 2]);
        assert_eq!(store.latest("e").unwrap().table.get("a"), Some(&[9.0][..]));
        // Ordinary publication continues after the installed versions.
        let q = store
            .publish(
                "e",
                table(&[("a", vec![3.0])]),
                EmbeddingProvenance::default(),
                Timestamp::millis(3),
            )
            .unwrap();
        assert_eq!(q, "e@v3");
    }

    #[test]
    fn provenance_is_preserved() {
        let mut store = EmbeddingStore::new();
        let prov = EmbeddingProvenance {
            trainer: "sgns".into(),
            config: "{\"dim\":64}".into(),
            corpus_hash: 0xdead,
            seed: 7,
            parent: None,
            notes: "initial".into(),
        };
        store
            .publish(
                "e",
                table(&[("a", vec![1.0])]),
                prov.clone(),
                Timestamp::millis(5),
            )
            .unwrap();
        let v = store.latest("e").unwrap();
        assert_eq!(v.provenance, prov);
        assert_eq!(v.created_at, Timestamp::millis(5));
    }

    /// In-memory pager: rows held as one flat block, faulted by window —
    /// the shape `fstore-tier` serves from disk, minus the disk.
    #[derive(Debug)]
    struct MemPager {
        dim: usize,
        keys: Vec<String>,
        block: Arc<[f32]>,
        fail: bool,
    }

    impl MemPager {
        fn from_table(t: &EmbeddingTable) -> MemPager {
            let (keys, rows) = t.export_rows();
            let block: Vec<f32> = rows.into_iter().flatten().collect();
            MemPager {
                dim: t.dim(),
                keys,
                block: block.into(),
                fail: false,
            }
        }
    }

    impl crate::spill::VectorPager for MemPager {
        fn dim(&self) -> usize {
            self.dim
        }
        fn len(&self) -> usize {
            self.keys.len()
        }
        fn keys(&self) -> &[String] {
            &self.keys
        }
        fn row_of(&self, key: &str) -> Option<usize> {
            self.keys.binary_search_by(|k| k.as_str().cmp(key)).ok()
        }
        fn fetch_row(&self, row: usize) -> Result<fstore_common::VectorBuf> {
            if self.fail {
                return Err(FsError::Storage("pager offline".into()));
            }
            Ok(fstore_common::VectorBuf::window(
                Arc::clone(&self.block),
                row * self.dim,
                self.dim,
            ))
        }
        fn spilled_bytes(&self) -> u64 {
            (self.block.len() * 4) as u64
        }
        fn resident_overhead_bytes(&self) -> u64 {
            self.keys.iter().map(|k| k.len() as u64).sum()
        }
    }

    fn spilled_twin(t: &EmbeddingTable) -> EmbeddingTable {
        EmbeddingTable::from_pager(Arc::new(MemPager::from_table(t))).unwrap()
    }

    #[test]
    fn spilled_table_answers_identically() {
        let resident = table(&[
            ("b", vec![2.0, 0.5]),
            ("a", vec![1.0, -1.0]),
            ("c", vec![0.0, 3.0]),
        ]);
        let spilled = spilled_twin(&resident);
        assert!(spilled.is_spilled() && !resident.is_spilled());
        assert_eq!(spilled.len(), 3);
        assert_eq!(spilled.dim(), 2);
        assert_eq!(spilled.keys(), resident.keys());
        assert_eq!(spilled.resident_vector_bytes(), 0);
        assert_eq!(resident.resident_vector_bytes(), 24);

        // `get` is resident-only; `fetch` is the unified read.
        assert_eq!(spilled.get("a"), None);
        assert_eq!(
            spilled.fetch("a").unwrap().unwrap().as_slice(),
            resident.fetch("a").unwrap().unwrap().as_slice()
        );
        assert!(spilled.fetch("ghost").unwrap().is_none());
        assert!(spilled.contains("b") && !spilled.contains("ghost"));
        assert_eq!(spilled.get_f64("c"), resident.get_f64("c"));
        assert_eq!(
            spilled.cosine("a", "b").unwrap(),
            resident.cosine("a", "b").unwrap()
        );
        assert_eq!(
            spilled.nearest("a", 2).unwrap(),
            resident.nearest("a", 2).unwrap()
        );
        assert_eq!(spilled.export_rows(), resident.export_rows());
    }

    #[test]
    fn spilled_table_mutation_materializes_first() {
        let resident = table(&[("a", vec![1.0, 0.0]), ("b", vec![0.0, 1.0])]);
        let mut patched = spilled_twin(&resident);
        let old = patched.replace("a", vec![5.0, 5.0]).unwrap();
        assert_eq!(old, Some(vec![1.0, 0.0]));
        assert!(!patched.is_spilled(), "mutation promotes to resident");
        assert_eq!(patched.get("a"), Some(&[5.0, 5.0][..]));
        assert_eq!(patched.get("b"), Some(&[0.0, 1.0][..]));

        let mut grown = spilled_twin(&resident);
        grown.insert("c", vec![2.0, 2.0]).unwrap();
        assert_eq!(grown.len(), 3);
        assert!(!grown.is_spilled());
    }

    #[test]
    fn spilled_pager_errors_surface() {
        let resident = table(&[("a", vec![1.0]), ("b", vec![2.0])]);
        let mut pager = MemPager::from_table(&resident);
        pager.fail = true;
        let t = EmbeddingTable::from_pager(Arc::new(pager)).unwrap();
        assert!(t.fetch("a").is_err());
        assert!(t.cosine("a", "b").is_err());
        assert!(t.nearest("a", 1).is_err());
        assert!(t.try_export_rows().is_err());
        assert_eq!(t.get_f64("a"), None, "infallible reads degrade to absent");
    }

    #[test]
    fn iter_versions_walks_everything() {
        let mut store = EmbeddingStore::new();
        for name in ["x", "y"] {
            for val in [1.0f32, 2.0] {
                store
                    .publish(
                        name,
                        table(&[("a", vec![val])]),
                        EmbeddingProvenance::default(),
                        Timestamp::EPOCH,
                    )
                    .unwrap();
            }
        }
        let seen: Vec<String> = store.iter_versions().map(|v| v.qualified_name()).collect();
        assert_eq!(seen, vec!["x@v1", "x@v2", "y@v1", "y@v2"]);
    }

    #[test]
    fn replace_patches_rows() {
        let mut t = table(&[("a", vec![1.0, 0.0])]);
        let old = t.replace("a", vec![0.0, 1.0]).unwrap();
        assert_eq!(old, Some(vec![1.0, 0.0]));
        assert_eq!(t.get("a"), Some(&[0.0, 1.0][..]));
        assert!(t.replace("a", vec![1.0]).is_err());
        assert_eq!(t.replace("new", vec![1.0, 1.0]).unwrap(), None);
    }
}
