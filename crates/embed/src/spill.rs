//! The spill boundary: a trait the tiered storage layer (`fstore-tier`)
//! implements so an [`crate::EmbeddingTable`] can keep its rows on disk.
//!
//! `fstore-embed` sits below the tier crate in the dependency graph, so the
//! table cannot name the pager concretely — it holds an
//! `Arc<dyn VectorPager>` and faults rows through it. Implementations are
//! expected to be cheap to clone (the table is cloned on every store
//! snapshot), thread-safe, and to return rows **byte-identical** to what
//! was spilled: the tier crate's proptests and E22 assert equality against
//! a fully-resident oracle down to the bit.

use fstore_common::{Result, VectorBuf};

/// Row-addressed access to a spilled (on-disk) embedding table.
///
/// Rows are addressed `0..len()` in the same deterministic sorted-key
/// order [`crate::EmbeddingTable::export_rows`] uses, so a spilled table
/// and its resident twin agree on row numbering.
pub trait VectorPager: Send + Sync + std::fmt::Debug {
    /// Vector dimensionality (every row has exactly this many floats).
    fn dim(&self) -> usize;

    /// Number of rows.
    fn len(&self) -> usize;

    /// True when the table has no rows.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entity keys in row order (sorted; `keys()[row]` names `row`).
    fn keys(&self) -> &[String];

    /// Row index of `key`, if present.
    fn row_of(&self, key: &str) -> Option<usize>;

    /// Fetch one row, faulting its block from disk if it is not cached.
    /// The returned buffer shares the cache block — no per-read copy.
    fn fetch_row(&self, row: usize) -> Result<VectorBuf>;

    /// On-disk vector payload bytes (what residency accounting reports as
    /// spilled).
    fn spilled_bytes(&self) -> u64;

    /// In-memory metadata footprint (keys, row map) that stays resident
    /// even when every block is cold.
    fn resident_overhead_bytes(&self) -> u64;
}
