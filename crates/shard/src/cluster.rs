//! An in-process sharded cluster for tests, examples, and experiments:
//! N shards, each a replication leader with optional followers, plus the
//! control plane wired over all of them.
//!
//! This is a harness, not a deployment tool — every process boundary is
//! a real TCP socket (the router cannot tell), but all servers run in
//! this process so a test can kill a leader, watch the control plane
//! promote, and then perform the data-plane promotion
//! ([`ShardCluster::promote_local`]) that turns the surviving follower
//! into a replication leader accepting writes.

use crate::control::{ControlPlane, ControlPlaneConfig};
use crate::map::{ShardId, ShardInfo, ShardMap};
use crate::router::{RouterClient, RouterConfig};
use fstore_common::{EntityKey, FsError, Result, Timestamp, Value};
use fstore_repl::{Follower, LeaderParts, ReplLeader, SyncHandle};
use fstore_serve::{
    start, Clock, ControlSnapshot, PromoteHook, ServeConfig, ServerHandle, TierSnapshot,
    WriteProvider,
};
use parking_lot::Mutex;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// Cluster shape and tuning.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Number of shards.
    pub shards: usize,
    /// Followers per shard (0 = leaders only; promotion then impossible).
    pub followers: usize,
    /// Server tuning applied to every shard server (the bind address is
    /// always overridden to an ephemeral localhost port).
    pub serve: ServeConfig,
    /// Publication-log retention per shard leader.
    pub retention: usize,
    /// Follower delta-poll cadence.
    pub sync_interval: Duration,
    /// Control-plane probe tuning.
    pub control: ControlPlaneConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            shards: 2,
            followers: 1,
            serve: ServeConfig::default(),
            retention: 256,
            sync_interval: Duration::from_millis(5),
            control: ControlPlaneConfig::default(),
        }
    }
}

/// One shard's runtime pieces.
struct ShardNode {
    id: ShardId,
    leader: Arc<ReplLeader>,
    /// `None` after [`ShardCluster::kill_leader`].
    leader_server: Option<ServerHandle>,
    /// The leader endpoint's fixed address, so a revived leader rebinds
    /// where the map (and any pending fence) expects it.
    leader_addr: SocketAddr,
    /// The term the original leader was installed at — what a revived
    /// (crash-recovered) leader process still believes it holds.
    leader_term: u64,
    followers: Vec<FollowerNode>,
}

struct FollowerNode {
    follower: Arc<Follower>,
    /// Taken (and stopped) when the follower is promoted — shared with
    /// the serve engine's promotion hook, which fires on a wire-level
    /// `Promote` from the control plane.
    sync: Arc<Mutex<Option<SyncHandle>>>,
    /// Set once, by whichever path promotes first (wire or
    /// [`ShardCluster::promote_local`]).
    promoted: Arc<Mutex<Option<Arc<ReplLeader>>>>,
    server: ServerHandle,
}

/// Promote a follower exactly once: stop its sync loop and wrap its
/// replicated components in a fresh [`ReplLeader`]. Both promotion paths
/// (the engine's wire hook and [`ShardCluster::promote_local`]) funnel
/// here, so a double promotion returns the same leader instead of
/// wrapping the components twice.
fn promote_follower(
    follower: &Arc<Follower>,
    sync: &Arc<Mutex<Option<SyncHandle>>>,
    promoted: &Arc<Mutex<Option<Arc<ReplLeader>>>>,
    retention: usize,
) -> Arc<ReplLeader> {
    let mut slot = promoted.lock();
    if let Some(leader) = slot.as_ref() {
        return Arc::clone(leader);
    }
    if let Some(sync) = sync.lock().take() {
        sync.stop();
    }
    let leader = follower.promote(retention);
    *slot = Some(Arc::clone(&leader));
    leader
}

/// A running sharded cluster; see the module docs.
pub struct ShardCluster {
    nodes: Vec<ShardNode>,
    control: Arc<ControlPlane>,
    router_config: RouterConfig,
    config: ClusterConfig,
    clock: Clock,
}

impl ShardCluster {
    /// Start `config.shards` shard leaders (plus followers) on ephemeral
    /// ports, build the shard map, and stand up the control plane. The
    /// probe loop is *not* started — call
    /// `cluster.control().start(interval)` or drive `probe_once` from the
    /// test.
    pub fn start(config: ClusterConfig, clock: Clock) -> Result<ShardCluster> {
        assert!(config.shards > 0, "a cluster needs at least one shard");
        let mut nodes = Vec::with_capacity(config.shards);
        let mut infos = Vec::with_capacity(config.shards);
        for i in 0..config.shards {
            let id = ShardId(i as u32);
            let leader = ReplLeader::with_retention(LeaderParts::new(), config.retention);
            // Leaders start at term 1, matching `ShardInfo::new` below — the
            // map's term and the server's term agree from the first write.
            let engine = leader
                .engine(clock.clone())
                .with_write_provider(Arc::clone(&leader) as Arc<dyn WriteProvider>, 1);
            let leader_server = start(engine, shard_config(&config.serve))
                .map_err(|e| FsError::Storage(format!("start {id} leader: {e}")))?;
            let leader_addr = leader_server.addr();

            let mut followers = Vec::with_capacity(config.followers);
            let mut endpoints = vec![leader_addr.to_string()];
            for _ in 0..config.followers {
                let follower = Arc::new(Follower::bootstrap(leader_addr.to_string())?);
                let sync = Arc::new(Mutex::new(Some(follower.start_sync(config.sync_interval))));
                let promoted: Arc<Mutex<Option<Arc<ReplLeader>>>> = Arc::new(Mutex::new(None));
                let hook: PromoteHook = {
                    let follower = Arc::clone(&follower);
                    let sync = Arc::clone(&sync);
                    let promoted = Arc::clone(&promoted);
                    let retention = config.retention;
                    Arc::new(move |_term| {
                        Ok(promote_follower(&follower, &sync, &promoted, retention)
                            as Arc<dyn WriteProvider>)
                    })
                };
                let engine = follower.engine(clock.clone()).with_promote_hook(hook);
                let server = start(engine, shard_config(&config.serve))
                    .map_err(|e| FsError::Storage(format!("start {id} follower: {e}")))?;
                endpoints.push(server.addr().to_string());
                followers.push(FollowerNode {
                    follower,
                    sync,
                    promoted,
                    server,
                });
            }

            infos.push(ShardInfo::new(id, endpoints));
            nodes.push(ShardNode {
                id,
                leader,
                leader_server: Some(leader_server),
                leader_addr,
                leader_term: 1,
                followers,
            });
        }
        let control = ControlPlane::new(ShardMap::new(infos), config.control.clone());
        // Every node's metrics JSON carries the cluster's control section,
        // so a dump from any server shows probe rounds, strikes, and terms.
        for node in &nodes {
            let servers = node
                .leader_server
                .iter()
                .chain(node.followers.iter().map(|f| &f.server));
            for server in servers {
                let control = Arc::clone(&control);
                server
                    .metrics()
                    .set_control_provider(move || control.snapshot());
            }
        }
        Ok(ShardCluster {
            nodes,
            control,
            router_config: RouterConfig::default(),
            config,
            clock,
        })
    }

    /// Override the router tuning used by [`router`](Self::router).
    pub fn set_router_config(&mut self, config: RouterConfig) {
        self.router_config = config;
    }

    pub fn control(&self) -> Arc<ControlPlane> {
        Arc::clone(&self.control)
    }

    pub fn map(&self) -> Arc<ShardMap> {
        self.control.map()
    }

    /// A fresh router over this cluster's control plane. Each router has
    /// its own per-shard connections; open one per client thread.
    pub fn router(&self) -> RouterClient {
        RouterClient::new(self.control(), self.router_config.clone())
    }

    pub fn shard_count(&self) -> usize {
        self.nodes.len()
    }

    /// The shard that owns `key` under the current map.
    pub fn shard_for(&self, key: &str) -> ShardId {
        self.map().shard_for(key)
    }

    /// The replication leader of `shard` — for seeding that shard's slice
    /// of the data. After a promotion (wire-level via the control plane,
    /// or [`promote_local`](Self::promote_local)) this is the promoted
    /// follower's leader; before any promotion it is the original leader.
    pub fn leader(&self, shard: ShardId) -> Arc<ReplLeader> {
        effective_leader(self.node(shard))
    }

    /// The leader owning `key`: route a seed write the same way the
    /// router will route the read back.
    pub fn leader_for(&self, key: &str) -> Arc<ReplLeader> {
        self.leader(self.shard_for(key))
    }

    /// Replicated online write, routed to the owning shard's leader.
    /// Returns the publication-log sequence the write committed at.
    pub fn put_online(
        &self,
        group: &str,
        entity: &EntityKey,
        values: &[(&str, Value)],
        now: Timestamp,
    ) -> Result<u64> {
        self.leader_for(entity.as_str())
            .put_online(group, entity, values, now)
    }

    /// Leader server addresses in shard order (dead leaders excluded) —
    /// what a single-connection baseline would talk to.
    pub fn leader_addrs(&self) -> Vec<SocketAddr> {
        self.nodes
            .iter()
            .filter_map(|n| n.leader_server.as_ref().map(|s| s.addr()))
            .collect()
    }

    /// Cluster-wide `tier` metrics: every live node's tier section merged
    /// per [`TierSnapshot::merge`] (counters add, rates are recomputed,
    /// quantiles keep the worst node's estimate). `None` when no node has
    /// a tiered embedding store attached — the passthrough is optional,
    /// like the tier itself.
    pub fn tier_metrics(&self) -> Option<TierSnapshot> {
        let mut merged: Option<TierSnapshot> = None;
        for node in &self.nodes {
            let servers = node
                .leader_server
                .iter()
                .chain(node.followers.iter().map(|f| &f.server));
            for server in servers {
                if let Some(tier) = server.metrics().tier_snapshot() {
                    match merged.as_mut() {
                        Some(m) => m.merge(&tier),
                        None => merged = Some(tier),
                    }
                }
            }
        }
        merged
    }

    /// Kill `shard`'s leader server (the process stays; the socket dies).
    /// Reads keep working immediately through the per-shard failover to
    /// followers; the control plane notices within its probe threshold
    /// and promotes map-level.
    pub fn kill_leader(&mut self, shard: ShardId) -> SocketAddr {
        let node = self.node_mut(shard);
        let server = node.leader_server.take().expect("leader already killed");
        let addr = server.addr();
        server.shutdown();
        addr
    }

    /// Revive a killed leader as a *zombie*: rebind its old address and
    /// serve through the original [`ReplLeader`] at the term it held when
    /// it died. If the control plane promoted a follower meanwhile, the
    /// revived server's term is stale — its writes are refused on contact
    /// and the pending fence (or any newer-term write) demotes it. This
    /// is the E23 failure mode: a crashed leader coming back believing it
    /// still leads.
    pub fn revive_leader(&mut self, shard: ShardId) -> Result<SocketAddr> {
        let serve = self.config.serve.clone();
        let clock = self.clock.clone();
        let node = self.node_mut(shard);
        assert!(
            node.leader_server.is_none(),
            "revive only after kill_leader"
        );
        let config = ServeConfig {
            addr: node.leader_addr.to_string(),
            ..serve
        };
        // The dead server's socket can linger briefly; retry the rebind.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let server = loop {
            let engine = node.leader.engine(clock.clone()).with_write_provider(
                Arc::clone(&node.leader) as Arc<dyn WriteProvider>,
                node.leader_term,
            );
            match start(engine, config.clone()) {
                Ok(server) => break server,
                Err(e) if std::time::Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => {
                    return Err(FsError::Storage(format!(
                        "revive {shard} leader on {}: {e}",
                        node.leader_addr
                    )))
                }
            }
        };
        let addr = server.addr();
        node.leader_server = Some(server);
        Ok(addr)
    }

    /// Data-plane promotion: stop the first follower's sync loop and wrap
    /// its components in a fresh [`ReplLeader`], which becomes
    /// [`leader`](Self::leader) for the shard — writes resume against the
    /// follower's replicated state. Pair with the control plane's
    /// map-level promotion (automatic via probes, or
    /// `control().promote(shard)`). Idempotent with the wire-level
    /// promotion hook: whichever runs first does the work.
    pub fn promote_local(&mut self, shard: ShardId) -> Arc<ReplLeader> {
        let retention = self.config.retention;
        let node = self.node_mut(shard);
        let candidate = node.followers.first().expect("promotion needs a follower");
        promote_follower(
            &candidate.follower,
            &candidate.sync,
            &candidate.promoted,
            retention,
        )
    }

    /// The wall-clock the cluster's servers were started with.
    pub fn clock(&self) -> Clock {
        self.clock.clone()
    }

    /// Block until every (unpromoted) follower has applied its leader's
    /// last published delta, or `timeout` elapses. Tests seed data after
    /// the cluster starts, so they call this before asserting follower
    /// answers or killing leaders.
    pub fn wait_converged(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let behind = self.nodes.iter().any(|n| {
                let target = effective_leader(n).log().last_seq();
                n.followers
                    .iter()
                    .filter(|f| f.sync.lock().is_some())
                    .any(|f| f.follower.applied_epoch() != target)
            });
            if !behind {
                return true;
            }
            if std::time::Instant::now() > deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Cluster-wide control-plane stats — the same `control` section any
    /// node's metrics JSON reports (see [`ControlSnapshot`]).
    pub fn control_metrics(&self) -> ControlSnapshot {
        self.control.snapshot()
    }

    /// Stop everything: follower syncs, follower servers, leader servers.
    pub fn shutdown(self) {
        for node in self.nodes {
            for follower in node.followers {
                if let Some(sync) = follower.sync.lock().take() {
                    sync.stop();
                }
                follower.server.shutdown();
            }
            if let Some(server) = node.leader_server {
                server.shutdown();
            }
        }
    }

    fn node(&self, shard: ShardId) -> &ShardNode {
        self.nodes
            .iter()
            .find(|n| n.id == shard)
            .unwrap_or_else(|| panic!("unknown {shard}"))
    }

    fn node_mut(&mut self, shard: ShardId) -> &mut ShardNode {
        self.nodes
            .iter_mut()
            .find(|n| n.id == shard)
            .unwrap_or_else(|| panic!("unknown {shard}"))
    }
}

/// The shard's current write leader: the most recently promoted follower
/// if any promotion happened, else the original leader.
fn effective_leader(node: &ShardNode) -> Arc<ReplLeader> {
    node.followers
        .iter()
        .rev()
        .find_map(|f| f.promoted.lock().clone())
        .unwrap_or_else(|| Arc::clone(&node.leader))
}

/// The per-shard server config: the template with the bind address forced
/// to an ephemeral localhost port.
fn shard_config(template: &ServeConfig) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..template.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tier passthrough is absent until a node exposes a tier section
    /// and sums across nodes once they do.
    #[test]
    fn tier_metrics_merge_across_nodes() {
        let clock = fstore_serve::fixed_clock(Timestamp::EPOCH);
        let cluster = ShardCluster::start(
            ClusterConfig {
                shards: 2,
                followers: 0,
                ..ClusterConfig::default()
            },
            clock,
        )
        .unwrap();
        assert!(cluster.tier_metrics().is_none(), "no tier attached yet");

        for (i, node) in cluster.nodes.iter().enumerate() {
            let snap = TierSnapshot {
                budget_bytes: 100,
                resident_bytes: 40 + i as u64,
                cache_hits: 9,
                cache_misses: 1,
                fault_p99_ms: Some(1.0 + i as f64),
                demotions: 2,
                ..TierSnapshot::default()
            };
            node.leader_server
                .as_ref()
                .unwrap()
                .metrics()
                .set_tier_provider(move || snap.clone());
        }
        let merged = cluster.tier_metrics().expect("both nodes report");
        assert_eq!(merged.budget_bytes, 200);
        assert_eq!(merged.resident_bytes, 81);
        assert_eq!(merged.cache_hits, 18);
        assert_eq!(merged.hit_rate, Some(0.9));
        assert_eq!(merged.fault_p99_ms, Some(2.0), "worst node's estimate");
        assert_eq!(merged.demotions, 4);
        cluster.shutdown();
    }
}
