//! The scatter-gather router: one client that speaks the ordinary wire
//! protocol but fans requests out over a sharded cluster.
//!
//! A [`RouterClient`] holds one `FailoverClient` per shard (leader-first
//! endpoints, per-endpoint circuit breakers — PR 5's machinery, reused
//! unchanged) and routes by request shape:
//!
//! * point reads (`GetFeatures`, `GetEmbedding`) go to the owning shard,
//!   decided by the map's consistent hash;
//! * `GetFeaturesBatch` splits by shard, scatters the sub-batches
//!   concurrently, and reassembles the response in the caller's entity
//!   order;
//! * `SearchNearest` scatters to *every* shard (each holds a disjoint
//!   slice of the table) and merges the per-shard top-k into a global
//!   top-k — ascending `(distance, key)`, so the merge is deterministic
//!   even under distance ties;
//! * `SearchNearestByKey` first fetches the anchor vector from its home
//!   shard, then runs the scatter with `k+1` and drops the anchor from
//!   the merged hits (only its home shard excludes it natively).
//!
//! Because [`RouterClient`] implements the same [`Transport`] trait as
//! every single-node client, the entire `StoreApi` surface works against
//! a sharded cluster unchanged — and `RouterServer` can put the router
//! behind a plain TCP socket by decoding, calling, and encoding.
//!
//! Before every call the router compares the control plane's map version
//! with the one it routed with last; on a change it rebinds each shard's
//! endpoint list in place ([`FailoverClient::set_endpoints`]), keeping
//! live connections and breaker history for endpoints that stayed.

use crate::control::ControlPlane;
use crate::map::{ShardId, ShardMap};
use fstore_common::Value;
use fstore_serve::api::{expect_embedding, Transport};
use fstore_serve::{
    BreakerConfig, ClientConfig, ClientError, ErrorCode, FailoverClient, FailoverStats, Request,
    Response, RetryPolicy, WireHit,
};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-shard client tuning for a router.
#[derive(Debug, Clone, Default)]
pub struct RouterConfig {
    /// Socket deadlines (and optional per-hop deadline budget) for every
    /// shard connection.
    pub client: ClientConfig,
    /// Retry policy each per-shard `FailoverClient` applies across its
    /// endpoint rounds.
    pub retry: RetryPolicy,
    /// Circuit-breaker tuning per shard endpoint.
    pub breakers: BreakerConfig,
}

/// A client over a sharded cluster; see the module docs for routing.
pub struct RouterClient {
    control: Arc<ControlPlane>,
    map: Arc<ShardMap>,
    clients: HashMap<u32, FailoverClient>,
    config: RouterConfig,
}

impl RouterClient {
    pub fn new(control: Arc<ControlPlane>, config: RouterConfig) -> Self {
        let mut router = RouterClient {
            map: control.map(),
            control,
            clients: HashMap::new(),
            config,
        };
        router.bind_clients();
        router
    }

    /// The map this router last routed with.
    pub fn map(&self) -> Arc<ShardMap> {
        Arc::clone(&self.map)
    }

    /// Failover counters per shard (ascending shard id) — how often reads
    /// were answered by a non-preferred endpoint, retried, or exhausted.
    pub fn shard_stats(&self) -> Vec<(ShardId, FailoverStats)> {
        let mut stats: Vec<(ShardId, FailoverStats)> = self
            .clients
            .iter()
            .map(|(&id, c)| (ShardId(id), c.stats()))
            .collect();
        stats.sort_by_key(|(id, _)| *id);
        stats
    }

    /// Adopt the control plane's current map if it moved. Shards present
    /// in both maps keep their client (connections, breaker history);
    /// their endpoint order is rebound to the new map.
    pub fn refresh(&mut self) {
        if self.control.version() == self.map.version() {
            return;
        }
        self.map = self.control.map();
        self.bind_clients();
    }

    fn bind_clients(&mut self) {
        let live: Vec<u32> = self.map.shards().iter().map(|s| s.id.0).collect();
        self.clients.retain(|id, _| live.contains(id));
        for shard in self.map.shards() {
            let addrs: Vec<&str> = shard.endpoints.iter().map(String::as_str).collect();
            match self.clients.get_mut(&shard.id.0) {
                Some(client) => client.set_endpoints(&addrs),
                None => {
                    self.clients.insert(
                        shard.id.0,
                        FailoverClient::connect(
                            &addrs,
                            self.config.client.clone(),
                            self.config.retry,
                            self.config.breakers,
                        ),
                    );
                }
            }
        }
    }

    fn shard_client(&mut self, shard: ShardId) -> &mut FailoverClient {
        self.clients
            .get_mut(&shard.0)
            .expect("bind_clients covers every mapped shard")
    }

    /// Scatter `requests` (one per shard) concurrently; results come back
    /// in ascending shard-id order.
    fn scatter(
        &mut self,
        requests: Vec<(ShardId, Request)>,
    ) -> Vec<(ShardId, Result<Response, ClientError>)> {
        let mut jobs: Vec<(ShardId, Request, &mut FailoverClient)> = Vec::new();
        let mut clients: Vec<(&u32, &mut FailoverClient)> = self.clients.iter_mut().collect();
        for (shard, request) in requests {
            let i = clients
                .iter()
                .position(|(id, _)| **id == shard.0)
                .expect("bind_clients covers every mapped shard");
            let (_, client) = clients.swap_remove(i);
            jobs.push((shard, request, client));
        }
        let mut results: Vec<(ShardId, Result<Response, ClientError>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = jobs
                    .into_iter()
                    .map(|(shard, request, client)| {
                        scope.spawn(move || (shard, client.call(&request)))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("scatter thread panicked"))
                    .collect()
            });
        results.sort_by_key(|(shard, _)| *shard);
        results
    }

    fn route(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.refresh();
        match request {
            Request::Health => self.health(),
            Request::GetFeatures { entity, .. } => {
                let shard = self.map.shard_for(entity);
                self.shard_client(shard).call(request)
            }
            Request::GetEmbedding { key, .. } => {
                let shard = self.map.shard_for(key);
                self.shard_client(shard).call(request)
            }
            Request::GetFeaturesBatch {
                group,
                entities,
                features,
            } => self.get_features_batch(group, entities, features),
            Request::SearchNearest {
                table,
                query,
                k,
                options,
            } => self.search_scatter(table, query, *k, *options, None),
            Request::SearchNearestByKey {
                table,
                key,
                k,
                options,
            } => self.search_by_key(table, key, *k, *options),
            Request::ReplSubscribe | Request::ReplSnapshot | Request::ReplDeltas { .. } => {
                Ok(Response::error(
                    ErrorCode::BadRequest,
                    "replication endpoints are per-shard; subscribe to a shard leader directly",
                ))
            }
            Request::PutOnline {
                group,
                entity,
                values,
                ..
            } => self.put_online_routed(group, entity, values),
            // Leadership admin targets a shard by id, not by key.
            Request::Promote { shard, .. } | Request::Demote { shard, .. } => {
                let id = ShardId(*shard);
                if self.map.shard(id).is_none() {
                    return Ok(Response::error(
                        ErrorCode::BadRequest,
                        format!("unknown shard {shard}"),
                    ));
                }
                self.shard_client(id).call(request)
            }
            // The per-shard clients apply their own configured budget per
            // hop; the envelope's budget routes with the inner request.
            Request::WithDeadline { inner, .. } => self.route(inner),
        }
    }

    /// Route a write to the owning shard's leader, stamped with the
    /// shard's *current* leader term from the map — whatever term the
    /// caller wrote is replaced, because the router (not the caller) is
    /// the party tracking promotions. A `NotLeader` refusal means the map
    /// moved under us; adopt the control plane's newer map and re-route
    /// exactly once with the fresh term and endpoint order. One retry is
    /// safe — a refusal proves the write was not applied — and bounded,
    /// so a flapping shard cannot trap the router in a loop.
    fn put_online_routed(
        &mut self,
        group: &str,
        entity: &str,
        values: &[(String, Value)],
    ) -> Result<Response, ClientError> {
        let first = self.send_put(group, entity, values)?;
        if !matches!(
            &first,
            Response::Error {
                code: ErrorCode::NotLeader,
                ..
            }
        ) {
            return Ok(first);
        }
        self.refresh();
        self.send_put(group, entity, values)
    }

    fn send_put(
        &mut self,
        group: &str,
        entity: &str,
        values: &[(String, Value)],
    ) -> Result<Response, ClientError> {
        let shard = self.map.shard_for(entity);
        let term = self.map.shard(shard).expect("mapped shard").term;
        let request = Request::PutOnline {
            group: group.to_string(),
            entity: entity.to_string(),
            values: values.to_vec(),
            term,
        };
        self.shard_client(shard).call(&request)
    }

    /// Aggregate health: queue depths summed, draining if any shard is.
    fn health(&mut self) -> Result<Response, ClientError> {
        let requests: Vec<(ShardId, Request)> = self
            .map
            .shards()
            .iter()
            .map(|s| (s.id, Request::Health))
            .collect();
        let mut queue_depth = 0u32;
        let mut draining = false;
        for (_, result) in self.scatter(requests) {
            match result? {
                Response::Health {
                    queue_depth: q,
                    draining: d,
                } => {
                    queue_depth = queue_depth.saturating_add(q);
                    draining |= d;
                }
                other => return Ok(other),
            }
        }
        Ok(Response::Health {
            queue_depth,
            draining,
        })
    }

    /// Split a batch by owning shard, scatter, reassemble in caller order.
    fn get_features_batch(
        &mut self,
        group: &str,
        entities: &[String],
        features: &[String],
    ) -> Result<Response, ClientError> {
        // slot i of the response answers entities[i].
        let mut by_shard: HashMap<u32, (ShardId, Vec<usize>)> = HashMap::new();
        for (i, entity) in entities.iter().enumerate() {
            let shard = self.map.shard_for(entity);
            by_shard
                .entry(shard.0)
                .or_insert((shard, Vec::new()))
                .1
                .push(i);
        }
        let requests: Vec<(ShardId, Request, Vec<usize>)> = by_shard
            .into_values()
            .map(|(shard, slots)| {
                let request = Request::GetFeaturesBatch {
                    group: group.to_string(),
                    entities: slots.iter().map(|&i| entities[i].clone()).collect(),
                    features: features.to_vec(),
                };
                (shard, request, slots)
            })
            .collect();
        let slot_map: HashMap<u32, Vec<usize>> = requests
            .iter()
            .map(|(shard, _, slots)| (shard.0, slots.clone()))
            .collect();
        let results = self.scatter(
            requests
                .into_iter()
                .map(|(shard, request, _)| (shard, request))
                .collect(),
        );
        let mut merged = vec![None; entities.len()];
        for (shard, result) in results {
            match result? {
                Response::FeaturesBatch(vectors) => {
                    let slots = &slot_map[&shard.0];
                    if vectors.len() != slots.len() {
                        return Err(ClientError::UnexpectedResponse("FeaturesBatch"));
                    }
                    for (&slot, vector) in slots.iter().zip(vectors) {
                        merged[slot] = Some(vector);
                    }
                }
                // A shard's typed refusal (missing group, shed, …) stands
                // for the whole batch, matching single-node semantics.
                other => return Ok(other),
            }
        }
        Ok(Response::FeaturesBatch(
            merged
                .into_iter()
                .map(|v| v.expect("every slot was assigned to exactly one shard"))
                .collect(),
        ))
    }

    /// Scatter a `SearchNearest` to every shard and merge the per-shard
    /// top-k into a global top-k; `exclude` drops an anchor key from the
    /// merged hits (the by-key path).
    fn search_scatter(
        &mut self,
        table: &str,
        query: &[f32],
        k: u32,
        options: fstore_serve::SearchOptions,
        exclude: Option<&str>,
    ) -> Result<Response, ClientError> {
        let fetch_k = if exclude.is_some() {
            k.saturating_add(1)
        } else {
            k
        };
        let requests: Vec<(ShardId, Request)> = self
            .map
            .shards()
            .iter()
            .map(|s| {
                (
                    s.id,
                    Request::SearchNearest {
                        table: table.to_string(),
                        query: query.to_vec(),
                        k: fetch_k,
                        options,
                    },
                )
            })
            .collect();
        let mut all_hits: Vec<WireHit> = Vec::new();
        let mut table_version = 0u32;
        let mut index_generation = 0u64;
        for (_, result) in self.scatter(requests) {
            match result? {
                Response::Neighbors {
                    table_version: tv,
                    index_generation: ig,
                    hits,
                } => {
                    // Shards publish independently, so these counters are
                    // per-shard; report the furthest-along one.
                    table_version = table_version.max(tv);
                    index_generation = index_generation.max(ig);
                    all_hits.extend(hits);
                }
                other => return Ok(other),
            }
        }
        if let Some(anchor) = exclude {
            all_hits.retain(|h| h.key != anchor);
        }
        Ok(Response::Neighbors {
            table_version,
            index_generation,
            hits: merge_topk(all_hits, k as usize),
        })
    }

    /// By-key search: resolve the anchor vector on its home shard, then
    /// scatter. The anchor is excluded from the merge explicitly because
    /// only its home shard stores (and natively excludes) it.
    fn search_by_key(
        &mut self,
        table: &str,
        key: &str,
        k: u32,
        options: fstore_serve::SearchOptions,
    ) -> Result<Response, ClientError> {
        let home = self.map.shard_for(key);
        let anchor = self.shard_client(home).call(&Request::GetEmbedding {
            table: table.to_string(),
            key: key.to_string(),
        })?;
        let embedding = match expect_embedding(anchor) {
            Ok(e) => e,
            Err(ClientError::Server { code, message }) => {
                return Ok(Response::Error { code, message })
            }
            Err(e) => return Err(e),
        };
        self.search_scatter(table, &embedding.vector, k, options, Some(key))
    }
}

/// One scattered group's outcome: the request slots it owned, and the
/// in-order responses (or the first failure) from its shard's burst.
type ScatterResult = (Vec<usize>, Result<Vec<Response>, ClientError>);

impl Transport for RouterClient {
    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.route(request)
    }

    /// Pipelined routing: point reads are grouped by owning shard and each
    /// group goes down that shard's connection as one `call_many` burst
    /// (the per-shard `FailoverClient` pipelines it on a single socket),
    /// with the groups scattered concurrently. Anything that is not a
    /// point read routes item by item through the ordinary path. Responses
    /// come back in request order regardless of grouping.
    fn call_many(&mut self, requests: &[Request]) -> Result<Vec<Response>, ClientError> {
        self.refresh();
        let mut slots: Vec<Option<Response>> = (0..requests.len()).map(|_| None).collect();
        let mut by_shard: HashMap<u32, (ShardId, Vec<usize>)> = HashMap::new();
        for (i, request) in requests.iter().enumerate() {
            let owner = match request {
                Request::GetFeatures { entity, .. } => Some(self.map.shard_for(entity)),
                Request::GetEmbedding { key, .. } => Some(self.map.shard_for(key)),
                _ => None,
            };
            match owner {
                Some(shard) => by_shard
                    .entry(shard.0)
                    .or_insert((shard, Vec::new()))
                    .1
                    .push(i),
                None => slots[i] = Some(self.route(request)?),
            }
        }
        // Pair each group with its shard's client (scatter-style borrow
        // split: each client is moved out of the borrow list exactly once).
        let mut jobs: Vec<(Vec<usize>, Vec<Request>, &mut FailoverClient)> = Vec::new();
        let mut clients: Vec<(&u32, &mut FailoverClient)> = self.clients.iter_mut().collect();
        for (shard, idxs) in by_shard.into_values() {
            let batch: Vec<Request> = idxs.iter().map(|&i| requests[i].clone()).collect();
            let i = clients
                .iter()
                .position(|(id, _)| **id == shard.0)
                .expect("bind_clients covers every mapped shard");
            let (_, client) = clients.swap_remove(i);
            jobs.push((idxs, batch, client));
        }
        let results: Vec<ScatterResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = jobs
                .into_iter()
                .map(|(idxs, batch, client)| scope.spawn(move || (idxs, client.call_many(&batch))))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pipelined scatter thread panicked"))
                .collect()
        });
        for (idxs, result) in results {
            let responses = result?;
            if responses.len() != idxs.len() {
                return Err(ClientError::UnexpectedResponse("pipelined batch"));
            }
            for (&slot, response) in idxs.iter().zip(responses) {
                slots[slot] = Some(response);
            }
        }
        Ok(slots
            .into_iter()
            .map(|r| r.expect("every request was grouped or routed"))
            .collect())
    }
}

/// Merge scattered hits into a global top-k: ascending distance
/// (`total_cmp`, so NaNs order deterministically too), ties broken by
/// key. Shards hold disjoint key sets, so no deduplication is needed.
pub fn merge_topk(mut hits: Vec<WireHit>, k: usize) -> Vec<WireHit> {
    hits.sort_by(|a, b| {
        a.distance
            .total_cmp(&b.distance)
            .then_with(|| a.key.cmp(&b.key))
    });
    hits.truncate(k);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(key: &str, distance: f32) -> WireHit {
        WireHit {
            key: key.to_string(),
            distance,
        }
    }

    #[test]
    fn merge_sorts_truncates_and_breaks_ties_by_key() {
        let merged = merge_topk(
            vec![hit("c", 2.0), hit("b", 1.0), hit("a", 1.0), hit("d", 3.0)],
            3,
        );
        assert_eq!(merged, vec![hit("a", 1.0), hit("b", 1.0), hit("c", 2.0)]);
    }

    #[test]
    fn merge_handles_fewer_hits_than_k() {
        assert_eq!(merge_topk(vec![hit("a", 0.5)], 10), vec![hit("a", 0.5)]);
        assert!(merge_topk(Vec::new(), 10).is_empty());
    }
}
