//! A TCP front for the router: accepts ordinary wire-protocol
//! connections and answers them through a [`RouterClient`].
//!
//! The router tier is deliberately thin — framing, decode, route, encode.
//! All real work (admission, batching, deadline shedding) happens on the
//! shard servers; all routing logic lives in [`RouterClient`]. Each
//! connection gets its own router (and therefore its own per-shard
//! connections), so concurrent clients scatter in parallel without a
//! shared lock, the same way each client connection to a shard server is
//! independent.

use crate::control::ControlPlane;
use crate::router::{RouterClient, RouterConfig};
use fstore_serve::api::Transport;
use fstore_serve::{read_frame, write_frame, ClientError, ErrorCode, Request, Response, WireError};
use parking_lot::Mutex;
use std::io::BufReader;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running router server; dropping it (or calling
/// [`shutdown`](RouterHandle::shutdown)) stops the acceptor, cuts open
/// connections, and joins every thread.
pub struct RouterHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    acceptor: Option<JoinHandle<()>>,
}

impl RouterHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn shutdown(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Release);
        for conn in self.conns.lock().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Start a router server on `addr` (port 0 picks a free port).
pub fn start_router(
    addr: &str,
    control: Arc<ControlPlane>,
    config: RouterConfig,
) -> std::io::Result<RouterHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));

    let acceptor = {
        let stop = Arc::clone(&stop);
        let conns = Arc::clone(&conns);
        std::thread::spawn(move || {
            let mut workers: Vec<JoinHandle<()>> = Vec::new();
            for incoming in listener.incoming() {
                if stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(socket) = incoming else { continue };
                if socket.set_nodelay(true).is_err() {
                    continue;
                }
                if let Ok(registered) = socket.try_clone() {
                    conns.lock().push(registered);
                }
                let router = RouterClient::new(Arc::clone(&control), config.clone());
                workers.push(std::thread::spawn(move || {
                    connection_loop(socket, router);
                }));
            }
            for worker in workers {
                let _ = worker.join();
            }
        })
    };

    Ok(RouterHandle {
        addr,
        stop,
        conns,
        acceptor: Some(acceptor),
    })
}

/// Serve one connection: frame in, route, frame out, until EOF or error.
fn connection_loop(socket: TcpStream, mut router: RouterClient) {
    let writer = socket;
    let Ok(read_half) = writer.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = writer;
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(payload)) => payload,
            Ok(None) | Err(_) => return, // EOF, cut by shutdown, or dead peer
        };
        let response = match Request::decode(&payload) {
            Ok(request) => router
                .call(&request)
                .unwrap_or_else(|error| error_response(&error)),
            Err(e) => Response::error(ErrorCode::BadRequest, format!("undecodable request: {e}")),
        };
        if write_frame(&mut writer, &response.encode()).is_err() {
            return;
        }
    }
}

/// Map a router-side client failure onto a wire error response. A typed
/// server error passes through untouched (the shard already said why);
/// everything else means the shard could not be reached at all.
fn error_response(error: &ClientError) -> Response {
    match error {
        ClientError::Server { code, message } => Response::Error {
            code: *code,
            message: message.clone(),
        },
        ClientError::Wire(WireError::Oversized(n)) => Response::error(
            ErrorCode::FrameTooLarge,
            format!("shard response declared {n} bytes"),
        ),
        other => Response::error(ErrorCode::Internal, format!("shard unreachable: {other}")),
    }
}
