//! A TCP front for the router: accepts ordinary wire-protocol
//! connections and answers them through a [`RouterClient`].
//!
//! The router tier is deliberately thin — framing, decode, route, encode.
//! All real work (admission, batching, deadline shedding) happens on the
//! shard servers; all routing logic lives in [`RouterClient`]. Each
//! connection gets its own router (and therefore its own per-shard
//! connections), so concurrent clients scatter in parallel without a
//! shared lock, the same way each client connection to a shard server is
//! independent.

use crate::control::ControlPlane;
use crate::router::{RouterClient, RouterConfig};
use fstore_serve::api::Transport;
use fstore_serve::{
    write_frame_vectored, ClientError, ErrorCode, FrameEvent, FramePool, FrameReader, Request,
    Response, WireError, MAX_FRAME_LEN,
};
use parking_lot::Mutex;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running router server; dropping it (or calling
/// [`shutdown`](RouterHandle::shutdown)) stops the acceptor, cuts open
/// connections, and joins every thread.
pub struct RouterHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    acceptor: Option<JoinHandle<()>>,
}

impl RouterHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn shutdown(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Release);
        for conn in self.conns.lock().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Start a router server on `addr` (port 0 picks a free port).
pub fn start_router(
    addr: &str,
    control: Arc<ControlPlane>,
    config: RouterConfig,
) -> std::io::Result<RouterHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));

    let acceptor = {
        let stop = Arc::clone(&stop);
        let conns = Arc::clone(&conns);
        // One encode-buffer pool for the whole router tier; every
        // connection's responses are serialized out of recycled buffers.
        let pool = Arc::new(FramePool::default());
        std::thread::spawn(move || {
            let mut workers: Vec<JoinHandle<()>> = Vec::new();
            for incoming in listener.incoming() {
                if stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(socket) = incoming else { continue };
                if socket.set_nodelay(true).is_err() {
                    continue;
                }
                if let Ok(registered) = socket.try_clone() {
                    conns.lock().push(registered);
                }
                let router = RouterClient::new(Arc::clone(&control), config.clone());
                let pool = Arc::clone(&pool);
                workers.push(std::thread::spawn(move || {
                    connection_loop(socket, router, &pool);
                }));
            }
            for worker in workers {
                let _ = worker.join();
            }
        })
    };

    Ok(RouterHandle {
        addr,
        stop,
        conns,
        acceptor: Some(acceptor),
    })
}

/// Requests one router connection keeps decoded and waiting while earlier
/// ones are still being routed — the front's pipeline depth.
const ROUTER_PIPELINE: usize = 64;

/// Serve one connection: a reader thread keeps decoding frames ahead
/// (up to [`ROUTER_PIPELINE`] in flight) while this thread routes each
/// request and writes its response — in arrival order, from a pooled
/// buffer, vectored — so frame I/O overlaps the scatter-gather work.
fn connection_loop(socket: TcpStream, mut router: RouterClient, pool: &FramePool) {
    let Ok(read_half) = socket.try_clone() else {
        return;
    };
    let (tx, rx) = std::sync::mpsc::sync_channel::<Result<Request, Response>>(ROUTER_PIPELINE);
    let reader_thread = std::thread::spawn(move || {
        let mut reader = FrameReader::new();
        loop {
            let decoded = match reader.read_frame(&read_half, MAX_FRAME_LEN, None, None) {
                // Undecodable payload → typed refusal that must still go
                // out in order.
                Ok(FrameEvent::Frame(payload)) => Request::decode(payload).map_err(|e| {
                    Response::error(ErrorCode::BadRequest, format!("undecodable request: {e}"))
                }),
                Ok(FrameEvent::TooLarge { declared }) => {
                    // Refuse, then stop: the payload was never read, so
                    // the stream position is unrecoverable.
                    let _ = tx.send(Err(Response::error(
                        ErrorCode::FrameTooLarge,
                        format!("request frame declared {declared} bytes"),
                    )));
                    return;
                }
                _ => return, // EOF, cut by shutdown, or dead peer
            };
            if tx.send(decoded).is_err() {
                return; // the writer side died on a socket error
            }
        }
    });
    let mut writer = &socket;
    for decoded in rx {
        let response = match decoded {
            Ok(request) => router
                .call(&request)
                .unwrap_or_else(|error| error_response(&error)),
            Err(refusal) => refusal,
        };
        let mut buf = pool.get();
        response.encode_into(&mut buf);
        let ok = write_frame_vectored(&mut writer, buf.as_slice()).is_ok();
        pool.put(buf);
        if !ok {
            break;
        }
    }
    // Unblock the reader (it may be parked waiting for a frame) and join.
    let _ = socket.shutdown(Shutdown::Both);
    let _ = reader_thread.join();
}

/// Map a router-side client failure onto a wire error response. A typed
/// server error passes through untouched (the shard already said why);
/// everything else means the shard could not be reached at all.
fn error_response(error: &ClientError) -> Response {
    match error {
        ClientError::Server { code, message } => Response::Error {
            code: *code,
            message: message.clone(),
        },
        // Re-encode the typed refusal exactly as a shard would, so a
        // client behind the router front can parse the term back out.
        ClientError::NotLeader { current_term } => {
            Response::error(ErrorCode::NotLeader, format!("current_term={current_term}"))
        }
        ClientError::WriteFailed { .. } => Response::error(ErrorCode::Internal, format!("{error}")),
        ClientError::Wire(WireError::Oversized(n)) => Response::error(
            ErrorCode::FrameTooLarge,
            format!("shard response declared {n} bytes"),
        ),
        other => Response::error(ErrorCode::Internal, format!("shard unreachable: {other}")),
    }
}
