//! The minimal control plane: owns the shard map, health-checks shard
//! leaders, and promotes a follower when a leader stops answering.
//!
//! There is deliberately no consensus here — one control plane process
//! owns the map, the same way one leader owns each component's snapshot
//! cell. The map lives in a [`SnapshotCell`], so publication is atomic
//! and versioned: routers compare [`ControlPlane::version`] against the
//! map they routed with last and resync their per-shard clients when it
//! moved (see `RouterClient::refresh`).
//!
//! Failure detection is conservative: a leader must miss
//! [`ControlPlaneConfig::failure_threshold`] *consecutive* probes before
//! its shard is promoted, so one slow probe never flips the topology.
//! Promotion is map-level — the first follower becomes the preferred
//! endpoint ([`ShardMap::promote`] rotates the dead leader to the back).
//! Making that follower a *replication* leader (so writes resume) is the
//! data-plane half, `Follower::promote`; the cluster harness wires the
//! two together and [`PromotionEvent`] records what happened for tests
//! and operators.

use crate::map::{ShardId, ShardMap};
use fstore_common::{SnapshotCell, Versioned};
use fstore_serve::{
    ClientBuilder, ClientConfig, ClientError, ControlSnapshot, ErrorCode, FeatureClient, StoreApi,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Control-plane tuning.
#[derive(Debug, Clone)]
pub struct ControlPlaneConfig {
    /// Consecutive failed probes before a leader is declared dead and its
    /// shard promoted.
    pub failure_threshold: u32,
    /// Socket deadlines for probe connections — tight, so a dead leader
    /// costs a probe round milliseconds, not the client default seconds.
    pub probe: ClientConfig,
}

impl Default for ControlPlaneConfig {
    fn default() -> Self {
        ControlPlaneConfig {
            failure_threshold: 2,
            probe: ClientConfig {
                connect_timeout: Some(Duration::from_millis(250)),
                read_timeout: Some(Duration::from_millis(250)),
                write_timeout: Some(Duration::from_millis(250)),
                deadline_budget: None,
                ..ClientConfig::default()
            },
        }
    }
}

/// One promotion the control plane performed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromotionEvent {
    pub shard: ShardId,
    /// The leader endpoint that stopped answering.
    pub demoted: String,
    /// The follower endpoint now preferred.
    pub promoted: String,
    /// The map version the promotion published.
    pub map_version: u64,
    /// The leader term the promotion granted — every routed write to the
    /// shard now carries it, and the old leader is fenced below it.
    pub term: u64,
}

/// Owns the versioned shard map and the probe loop.
pub struct ControlPlane {
    map: SnapshotCell<ShardMap>,
    config: ControlPlaneConfig,
    /// Consecutive failed probes per shard, reset by any success.
    strikes: Mutex<HashMap<u32, u32>>,
    promotions: Mutex<Vec<PromotionEvent>>,
    /// Promote commands awaiting delivery: shard id → (new leader
    /// endpoint, granted term). Retried every probe round until acked, so
    /// a promote lost to a transient connect failure still lands.
    pending_promotes: Mutex<HashMap<u32, (String, u64)>>,
    /// Demote fences awaiting delivery: demoted endpoint → fence term.
    /// Retried every probe round; a dead ex-leader is fenced the moment
    /// it revives and answers again, closing the zombie window.
    pending_fences: Mutex<HashMap<String, u64>>,
    /// Completed probe rounds.
    probe_rounds: AtomicU64,
}

impl ControlPlane {
    pub fn new(map: ShardMap, config: ControlPlaneConfig) -> Arc<Self> {
        Arc::new(ControlPlane {
            map: SnapshotCell::new(map),
            config,
            strikes: Mutex::new(HashMap::new()),
            promotions: Mutex::new(Vec::new()),
            pending_promotes: Mutex::new(HashMap::new()),
            pending_fences: Mutex::new(HashMap::new()),
            probe_rounds: AtomicU64::new(0),
        })
    }

    /// The current map (cheap: an `Arc` clone off the snapshot cell).
    pub fn map(&self) -> Arc<ShardMap> {
        self.map.load()
    }

    /// The current map with its publication epoch.
    pub fn current(&self) -> Versioned<ShardMap> {
        self.map.read()
    }

    /// The current map's version — what routers poll to notice changes.
    pub fn version(&self) -> u64 {
        self.map.load().version()
    }

    /// Promotions performed so far, oldest first.
    pub fn promotions(&self) -> Vec<PromotionEvent> {
        self.promotions.lock().clone()
    }

    /// Promote `shard`'s first follower to preferred endpoint, bump its
    /// leader term, and publish the new map. Returns the event, or `None`
    /// if the shard is unknown or has no follower.
    ///
    /// Publication also queues the data-plane half for delivery: a
    /// `Promote` to the new leader (so it starts accepting writes at the
    /// granted term) and a `Demote` fence to the old one (so a revived
    /// zombie refuses writes stamped with its stale term). Both are
    /// retried every probe round until acked.
    pub fn promote(&self, shard: ShardId) -> Option<PromotionEvent> {
        // Serialize topology changes through the cell's updater so two
        // concurrent promotions cannot both derive from the same base map.
        let (_, event) = self.map.update(|map, _| {
            let Some(next) = map.promote(shard) else {
                return (map.clone(), None);
            };
            let demoted = map.shard(shard).expect("promoted from this map").leader();
            let info = next.shard(shard).expect("still present");
            let event = PromotionEvent {
                shard,
                demoted: demoted.to_string(),
                promoted: info.leader().to_string(),
                map_version: next.version(),
                term: info.term,
            };
            (next, Some(event))
        });
        if let Some(event) = &event {
            self.strikes.lock().remove(&shard.0);
            self.pending_promotes
                .lock()
                .insert(shard.0, (event.promoted.clone(), event.term));
            // A newer fence for the same endpoint supersedes an older one.
            self.pending_fences
                .lock()
                .insert(event.demoted.clone(), event.term);
            self.promotions.lock().push(event.clone());
        }
        event
    }

    /// One probe round: health-check every shard leader *concurrently*
    /// (detection latency is one probe deadline, not shard-count of
    /// them), count strikes, promote shards whose leader crossed the
    /// failure threshold, then retry any undelivered promote/fence
    /// commands. Returns the promotions this round performed.
    pub fn probe_once(&self) -> Vec<PromotionEvent> {
        let map = self.map();
        let alive: Vec<(ShardId, bool)> = std::thread::scope(|scope| {
            let handles: Vec<_> = map
                .shards()
                .iter()
                .map(|shard| {
                    let addr = shard.leader().to_string();
                    let id = shard.id;
                    scope.spawn(move || (id, self.probe_leader(&addr)))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("probe thread panicked"))
                .collect()
        });
        let mut promoted = Vec::new();
        for (id, alive) in alive {
            if alive {
                self.strikes.lock().remove(&id.0);
                continue;
            }
            let strikes = {
                let mut strikes = self.strikes.lock();
                let s = strikes.entry(id.0).or_insert(0);
                *s += 1;
                *s
            };
            if strikes >= self.config.failure_threshold {
                if let Some(event) = self.promote(id) {
                    promoted.push(event);
                }
            }
        }
        self.deliver_pending();
        self.probe_rounds.fetch_add(1, Ordering::AcqRel);
        promoted
    }

    /// Whether `addr` counts as alive. A healthy answer is alive; so is
    /// typed pushback (`Overloaded`, `ShuttingDown`) — a shedding or
    /// draining server is *up* and pushing back, and promoting it would
    /// turn load into a spurious failover. Only silence (connect/read
    /// failure) and hard protocol violations strike.
    fn probe_leader(&self, addr: &str) -> bool {
        let Some(mut client) = self.probe_client(addr) else {
            return false;
        };
        match client.health() {
            Ok(_) => true,
            Err(ClientError::Server { code, .. }) => {
                matches!(code, ErrorCode::Overloaded | ErrorCode::ShuttingDown)
            }
            Err(_) => false,
        }
    }

    /// A one-shot direct connection under the probe deadlines.
    fn probe_client(&self, addr: &str) -> Option<FeatureClient> {
        let built = ClientBuilder::new()
            .endpoint(addr)
            .connect_timeout(self.config.probe.connect_timeout)
            .read_timeout(self.config.probe.read_timeout)
            .write_timeout(self.config.probe.write_timeout)
            .build();
        match built {
            Ok(fstore_serve::AnyClient::Direct(c)) => Some(c),
            _ => None,
        }
    }

    /// Retry undelivered promote and fence commands. An entry leaves the
    /// queue when the node acks it — or answers `NotLeader` with a term
    /// at or above the command's, which proves the node already sits at
    /// (or beyond) the state the command was meant to install.
    fn deliver_pending(&self) {
        let promotes: Vec<(u32, String, u64)> = self
            .pending_promotes
            .lock()
            .iter()
            .map(|(&shard, (addr, term))| (shard, addr.clone(), *term))
            .collect();
        for (shard, addr, term) in promotes {
            if self.deliver(&addr, |c| c.promote(shard, term), term) {
                let mut pending = self.pending_promotes.lock();
                // Only clear the entry this delivery was for — a newer
                // promotion may have replaced it mid-flight.
                if pending
                    .get(&shard)
                    .is_some_and(|(a, t)| a == &addr && *t == term)
                {
                    pending.remove(&shard);
                }
            }
        }
        let fences: Vec<(String, u64)> = self
            .pending_fences
            .lock()
            .iter()
            .map(|(addr, &term)| (addr.clone(), term))
            .collect();
        for (addr, term) in fences {
            // The shard id is advisory on a demote; 0 keeps the frame valid.
            if self.deliver(&addr, |c| c.demote(0, term), term) {
                let mut pending = self.pending_fences.lock();
                if pending.get(&addr) == Some(&term) {
                    pending.remove(&addr);
                }
            }
        }
    }

    /// Run one admin command against `addr`; true when the queue entry is
    /// settled (acked, or refused by a node already at/above `term`).
    fn deliver(
        &self,
        addr: &str,
        op: impl FnOnce(&mut FeatureClient) -> Result<fstore_serve::WriteAck, ClientError>,
        term: u64,
    ) -> bool {
        let Some(mut client) = self.probe_client(addr) else {
            return false;
        };
        match op(&mut client) {
            Ok(_) => true,
            Err(ClientError::NotLeader { current_term }) => current_term >= term,
            Err(_) => false,
        }
    }

    /// Control-plane observability, merged into serving metrics via
    /// [`fstore_serve::ServingMetrics::set_control_provider`].
    pub fn snapshot(&self) -> ControlSnapshot {
        let map = self.map();
        ControlSnapshot {
            probe_rounds: self.probe_rounds.load(Ordering::Acquire),
            promotions: self.promotions.lock().len() as u64,
            map_version: map.version(),
            strikes: self
                .strikes
                .lock()
                .iter()
                .map(|(&shard, &s)| (ShardId(shard).to_string(), u64::from(s)))
                .collect(),
            terms: map
                .shards()
                .iter()
                .map(|s| (s.id.to_string(), s.term))
                .collect(),
            pending_fences: (self.pending_fences.lock().len() + self.pending_promotes.lock().len())
                as u64,
        }
    }

    /// Run [`probe_once`](Self::probe_once) every `interval` on a
    /// background thread until the handle is stopped.
    pub fn start(self: &Arc<Self>, interval: Duration) -> ControlHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let control = Arc::clone(self);
        let stop2 = Arc::clone(&stop);
        let join = std::thread::spawn(move || {
            while !stop2.load(Ordering::Acquire) {
                control.probe_once();
                // Sleep in slices so stop() returns promptly.
                let mut left = interval;
                while !stop2.load(Ordering::Acquire) && left > Duration::ZERO {
                    let slice = left.min(Duration::from_millis(20));
                    std::thread::sleep(slice);
                    left = left.saturating_sub(slice);
                }
            }
        });
        ControlHandle {
            stop,
            join: Some(join),
        }
    }
}

/// Stops the probe loop when dropped or [`stop`](ControlHandle::stop)ped.
pub struct ControlHandle {
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl ControlHandle {
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ControlHandle {
    fn drop(&mut self) {
        self.halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::ShardInfo;

    fn two_replica_map() -> ShardMap {
        ShardMap::new(vec![
            ShardInfo::new(ShardId(0), vec!["127.0.0.1:1".into(), "127.0.0.1:2".into()]),
            ShardInfo::new(ShardId(1), vec!["127.0.0.1:3".into()]),
        ])
    }

    #[test]
    fn promote_publishes_a_new_version_and_records_the_event() {
        let control = ControlPlane::new(two_replica_map(), ControlPlaneConfig::default());
        let v1 = control.version();
        let event = control.promote(ShardId(0)).expect("shard 0 has a follower");
        assert_eq!(event.demoted, "127.0.0.1:1");
        assert_eq!(event.promoted, "127.0.0.1:2");
        assert_eq!(control.version(), v1 + 1);
        assert_eq!(
            control.map().shard(ShardId(0)).unwrap().leader(),
            "127.0.0.1:2"
        );
        assert_eq!(control.promotions(), vec![event]);
    }

    #[test]
    fn promote_without_a_follower_is_refused() {
        let control = ControlPlane::new(two_replica_map(), ControlPlaneConfig::default());
        assert!(control.promote(ShardId(1)).is_none());
        assert!(control.promotions().is_empty());
    }

    #[test]
    fn dead_leaders_need_consecutive_strikes() {
        // Nothing listens on these ports, so every probe fails; the first
        // round must not promote (threshold 2), the second must.
        let control = ControlPlane::new(two_replica_map(), ControlPlaneConfig::default());
        assert!(control.probe_once().is_empty(), "one strike is not enough");
        let events = control.probe_once();
        assert_eq!(events.len(), 1, "second strike promotes shard 0");
        assert_eq!(events[0].shard, ShardId(0));
        // Shard 1 has no follower: probed, struck, but never promoted.
        assert!(control.probe_once().is_empty());
    }
}
