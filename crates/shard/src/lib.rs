//! `fstore-shard` — horizontal sharding: nothing before this crate
//! scales the *dataset*. Replication (`fstore-repl`) multiplies read
//! capacity, but every node still holds every entity and every embedding
//! table; here the key space is partitioned across shard servers and a
//! router presents them as one store.
//!
//! * [`map`] — the versioned [`ShardMap`]: consistent hashing over a
//!   vnode ring, balanced and movement-minimal under resharding (both
//!   properties pinned by proptests).
//! * [`control`] — the minimal [`ControlPlane`]: owns the map in a
//!   snapshot cell, health-checks shard leaders, and promotes a shard's
//!   first follower when its leader misses consecutive probes.
//! * [`router`] — the scatter-gather [`RouterClient`]: splits batches by
//!   owning shard, fans `SearchNearest` to every shard and merges the
//!   per-shard top-k into a global top-k, and fronts each shard with a
//!   `FailoverClient` (circuit breakers, retries — PR 5's machinery).
//!   It implements the serve crate's `Transport`, so the whole
//!   `StoreApi` works against a cluster unchanged.
//! * [`server`] — [`start_router`]: the router behind a plain TCP
//!   socket speaking the ordinary wire protocol; clients cannot tell a
//!   router from a single shard server.
//! * [`cluster`] — the in-process [`ShardCluster`] harness tests and
//!   experiments use to stand up N shards × (leader + followers), kill
//!   leaders, and drive promotions end to end.

pub mod cluster;
pub mod control;
pub mod map;
pub mod router;
pub mod server;

pub use cluster::{ClusterConfig, ShardCluster};
pub use control::{ControlHandle, ControlPlane, ControlPlaneConfig, PromotionEvent};
pub use map::{ShardId, ShardInfo, ShardMap, VNODES_PER_SHARD};
pub use router::{merge_topk, RouterClient, RouterConfig};
pub use server::{start_router, RouterHandle};
