//! The versioned shard map: which shard owns which key, decided by
//! consistent hashing over a ring of virtual nodes.
//!
//! Every shard contributes [`VNODES_PER_SHARD`] deterministic points on a
//! `u64` ring (hashes of `"shard-{id}/vnode-{v}"`); a key belongs to the
//! shard owning the first ring point at or after the key's hash, wrapping
//! at the top. Two properties fall out, both pinned by proptests:
//!
//! * **Balance** — with enough vnodes the arc lengths even out, so shard
//!   loads stay within a small constant factor of each other.
//! * **Minimal movement** — adding shard N+1 inserts only that shard's
//!   points; every key that moves, moves *to* the new shard, so a reshard
//!   relocates ~1/(N+1) of keys instead of nearly all of them (what
//!   `hash % N` would do).
//!
//! A map is immutable; topology changes ([`ShardMap::promote`],
//! [`ShardMap::with_shard`]) produce a new map with a bumped
//! [`version`](ShardMap::version). The control plane publishes maps
//! through a `SnapshotCell`, and routers compare versions to notice a
//! change — the same copy-on-write discipline every other component uses.

use fstore_common::hash::fx_hash_one;

/// Virtual nodes each shard contributes to the ring. 64 keeps the
/// max/min load ratio under ~2 for realistic key counts while the ring
/// stays small enough to rebuild on every topology change.
pub const VNODES_PER_SHARD: usize = 64;

/// Identifies one shard (stable across promotions and resharding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShardId(pub u32);

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard-{}", self.0)
    }
}

/// One shard's replica set: endpoints in preference order, leader first,
/// plus the leader term that fences writes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardInfo {
    pub id: ShardId,
    /// `endpoints[0]` is the leader (writes and preferred reads); the rest
    /// are followers a `FailoverClient` may fall back to.
    pub endpoints: Vec<String>,
    /// The shard's leader term — bumped by every promotion, stamped onto
    /// every routed write, and checked by the serving node before it
    /// applies one. A node seeing a write with an older term than its own
    /// refuses it; a node seeing a *newer* term self-fences (it was
    /// superseded by a promotion it never heard about).
    pub term: u64,
}

impl ShardInfo {
    /// A shard starting at term 1 (the initial leader's term).
    pub fn new(id: ShardId, endpoints: Vec<String>) -> Self {
        ShardInfo {
            id,
            endpoints,
            term: 1,
        }
    }

    /// The current leader endpoint.
    pub fn leader(&self) -> &str {
        &self.endpoints[0]
    }
}

/// An immutable, versioned assignment of the key space to shards.
#[derive(Debug, Clone)]
pub struct ShardMap {
    version: u64,
    shards: Vec<ShardInfo>,
    /// `(ring point, index into shards)`, sorted by point. Rebuilt on
    /// construction — topology changes are rare, lookups are not.
    ring: Vec<(u64, u32)>,
}

impl ShardMap {
    /// Build version-1 of a map over `shards`. Panics on an empty shard
    /// list or a shard with no endpoints — an unroutable map is a
    /// construction bug, not a runtime condition.
    pub fn new(shards: Vec<ShardInfo>) -> Self {
        Self::with_version(shards, 1)
    }

    fn with_version(shards: Vec<ShardInfo>, version: u64) -> Self {
        assert!(!shards.is_empty(), "a shard map needs at least one shard");
        for s in &shards {
            assert!(!s.endpoints.is_empty(), "{} has no endpoints", s.id);
        }
        let mut ring = Vec::with_capacity(shards.len() * VNODES_PER_SHARD);
        for (i, shard) in shards.iter().enumerate() {
            for v in 0..VNODES_PER_SHARD {
                let point = fx_hash_one(&format!("shard-{}/vnode-{v}", shard.id.0));
                ring.push((point, i as u32));
            }
        }
        // Tie-break equal points by shard index so the ring order is
        // deterministic regardless of input order.
        ring.sort_unstable();
        ShardMap {
            version,
            shards,
            ring,
        }
    }

    /// Monotone map version; bumped by every topology change.
    pub fn version(&self) -> u64 {
        self.version
    }

    pub fn shards(&self) -> &[ShardInfo] {
        &self.shards
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard info for `id`, if the map knows it.
    pub fn shard(&self, id: ShardId) -> Option<&ShardInfo> {
        self.shards.iter().find(|s| s.id == id)
    }

    /// The shard owning `key`: the first ring point at or after the key's
    /// hash, wrapping past the top.
    pub fn shard_for(&self, key: &str) -> ShardId {
        let h = fx_hash_one(key);
        let i = self.ring.partition_point(|&(point, _)| point < h);
        let (_, shard_idx) = self.ring[if i == self.ring.len() { 0 } else { i }];
        self.shards[shard_idx as usize].id
    }

    /// A new map with `shard`'s dead leader rotated to the back of its
    /// endpoint list (the first follower becomes leader), the shard's
    /// leader term bumped, and the map version bumped. Returns `None`
    /// when the shard is unknown or has no follower to promote — a
    /// one-endpoint shard stays down until its leader returns.
    pub fn promote(&self, shard: ShardId) -> Option<ShardMap> {
        let info = self.shard(shard)?;
        if info.endpoints.len() < 2 {
            return None;
        }
        let mut shards = self.shards.clone();
        let info = shards.iter_mut().find(|s| s.id == shard).expect("found");
        info.endpoints.rotate_left(1);
        info.term += 1;
        Some(ShardMap::with_version(shards, self.version + 1))
    }

    /// A new map with one more shard and the version bumped — the reshard
    /// primitive. Only keys whose ring arc the new shard's vnodes claim
    /// move, all of them to the new shard.
    pub fn with_shard(&self, shard: ShardInfo) -> ShardMap {
        assert!(
            self.shard(shard.id).is_none(),
            "{} is already in the map",
            shard.id
        );
        let mut shards = self.shards.clone();
        shards.push(shard);
        ShardMap::with_version(shards, self.version + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(n: u32) -> ShardMap {
        ShardMap::new(
            (0..n)
                .map(|i| ShardInfo::new(ShardId(i), vec![format!("127.0.0.1:{}", 7000 + i)]))
                .collect(),
        )
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let m = map(4);
        for i in 0..1000 {
            let key = format!("user-{i}");
            let a = m.shard_for(&key);
            assert_eq!(a, m.shard_for(&key));
            assert!(m.shard(a).is_some());
        }
    }

    #[test]
    fn every_shard_owns_keys() {
        let m = map(4);
        let mut counts = [0usize; 4];
        for i in 0..4000 {
            counts[m.shard_for(&format!("user-{i}")).0 as usize] += 1;
        }
        assert!(
            counts.iter().all(|&c| c > 0),
            "a shard owns no keys: {counts:?}"
        );
    }

    #[test]
    fn promote_rotates_the_leader_and_bumps_the_version() {
        let m = ShardMap::new(vec![ShardInfo::new(
            ShardId(0),
            vec!["a".into(), "b".into(), "c".into()],
        )]);
        let m2 = m.promote(ShardId(0)).expect("has followers");
        assert_eq!(m2.version(), m.version() + 1);
        assert_eq!(m2.shard(ShardId(0)).unwrap().leader(), "b");
        assert_eq!(
            m2.shard(ShardId(0)).unwrap().term,
            m.shard(ShardId(0)).unwrap().term + 1,
            "promotion advances the shard's leader term"
        );
        assert_eq!(
            m2.shard(ShardId(0)).unwrap().endpoints,
            vec!["b".to_string(), "c".into(), "a".into()]
        );
        // Promotion never reroutes keys — the ring only sees shard ids.
        for i in 0..200 {
            let key = format!("k{i}");
            assert_eq!(m.shard_for(&key), m2.shard_for(&key));
        }
    }

    #[test]
    fn promote_refuses_a_shard_without_followers() {
        let m = map(2);
        assert!(m.promote(ShardId(0)).is_none());
        assert!(m.promote(ShardId(9)).is_none());
    }
}
