//! Property tests for the consistent-hash shard map — the two claims the
//! design rests on:
//!
//! * **Balance**: across arbitrary shard counts and key populations, the
//!   loaded shards stay within a bounded max/min ratio of each other (no
//!   shard starves, none is a hotspot).
//! * **Minimal movement**: adding shard N+1 moves only keys that land on
//!   the new shard — every moved key moves *to* it, and the moved
//!   fraction stays near the ideal 1/(N+1) instead of the ~(N)/(N+1) a
//!   modulo scheme would reshuffle.

use fstore_shard::{ShardId, ShardInfo, ShardMap};
use proptest::prelude::*;

fn map_of(n: u32) -> ShardMap {
    ShardMap::new(
        (0..n)
            .map(|i| ShardInfo::new(ShardId(i), vec![format!("127.0.0.1:{}", 7000 + i)]))
            .collect(),
    )
}

/// Count keys per shard for `keys` drawn from a deterministic population
/// offset by `salt` (so different cases exercise different key sets).
fn loads(map: &ShardMap, n_shards: u32, keys: usize, salt: u64) -> Vec<usize> {
    let mut counts = vec![0usize; n_shards as usize];
    for i in 0..keys {
        let shard = map.shard_for(&format!("entity-{salt}-{i}"));
        counts[shard.0 as usize] += 1;
    }
    counts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With 10k keys over up to 8 shards, the busiest shard carries at
    /// most 2.5x the quietest one's load. (Perfect balance is ratio 1;
    /// 64 vnodes/shard keeps the arc-length variance this tight.)
    #[test]
    fn hashing_stays_balanced(n_shards in 2u32..9, salt in 0u64..1_000) {
        let map = map_of(n_shards);
        let counts = loads(&map, n_shards, 10_000, salt);
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        prop_assert!(min > 0, "a shard owns no keys: {counts:?}");
        let ratio = max as f64 / min as f64;
        prop_assert!(
            ratio <= 2.5,
            "load ratio {ratio:.2} over bound 2.5: {counts:?}"
        );
    }

    /// Resharding N -> N+1 moves at most ~1.5/(N+1) of keys, and every
    /// key that moves lands on the new shard.
    #[test]
    fn reshard_moves_a_bounded_fraction_to_the_new_shard(
        n_shards in 1u32..8,
        salt in 0u64..1_000,
    ) {
        const KEYS: usize = 10_000;
        let before = map_of(n_shards);
        let new_id = ShardId(n_shards);
        let after = before.with_shard(ShardInfo::new(
            new_id,
            vec![format!("127.0.0.1:{}", 7000 + n_shards)],
        ));
        prop_assert_eq!(after.version(), before.version() + 1);

        let mut moved = 0usize;
        for i in 0..KEYS {
            let key = format!("entity-{salt}-{i}");
            let (a, b) = (before.shard_for(&key), after.shard_for(&key));
            if a != b {
                prop_assert_eq!(
                    b, new_id,
                    "key {} moved between old shards {} -> {}", key, a, b
                );
                moved += 1;
            }
        }
        let fraction = moved as f64 / KEYS as f64;
        let ideal = 1.0 / (n_shards as f64 + 1.0);
        prop_assert!(
            fraction <= ideal * 1.5,
            "moved {fraction:.3} of keys; ideal {ideal:.3}, bound {:.3}",
            ideal * 1.5
        );
        prop_assert!(
            fraction > 0.0,
            "the new shard claimed no keys at all"
        );
    }

    /// Promotion changes endpoints, never ownership: the same keys route
    /// to the same shards under the promoted map.
    #[test]
    fn promotion_never_moves_keys(n_shards in 1u32..7, salt in 0u64..1_000) {
        let before = ShardMap::new(
            (0..n_shards)
                .map(|i| ShardInfo::new(
                    ShardId(i),
                    vec![format!("l{i}"), format!("f{i}")],
                ))
                .collect(),
        );
        let after = before.promote(ShardId(0)).expect("shard 0 has a follower");
        for i in 0..2_000usize {
            let key = format!("entity-{salt}-{i}");
            prop_assert_eq!(before.shard_for(&key), after.shard_for(&key));
        }
    }
}
