//! Router loopback tests over a real in-process cluster: every shard
//! server is a live TCP endpoint, the router scatters over real sockets.
//!
//! The headline test kills a shard leader mid-traffic and requires the
//! combination of per-shard failover (instant, read-path) and
//! control-plane promotion (map-level, within the probe threshold) to
//! produce **zero wrong answers** — every read during the outage either
//! returns the correct seeded value via a follower or (never, with the
//! default retry budget) fails loudly; silently wrong data is the one
//! outcome the design must rule out.

use fstore_common::{EntityKey, Timestamp, Value};
use fstore_embed::{EmbeddingProvenance, EmbeddingTable};
use fstore_repl::{LeaderParts, ReplLeader};
use fstore_serve::{
    fixed_clock, start, ClientError, ErrorCode, FeatureClient, IndexSpec, Request, Response,
    ServeConfig, StoreApi, WireHit,
};
use fstore_shard::{ClusterConfig, ShardCluster, ShardId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const NOW: Timestamp = Timestamp(60_000);
const DIM: usize = 8;
const EMB_KEYS: usize = 40;
const USERS: usize = 20;

fn vector_for(i: usize) -> Vec<f32> {
    (0..DIM).map(|d| i as f32 * 0.1 + d as f32 * 0.01).collect()
}

fn score_for(u: usize) -> f64 {
    u as f64 * 0.25 + 1.0
}

/// Seed users and a partitioned embedding table: each shard's leader gets
/// exactly the keys the map assigns it, then an index over its slice.
fn seed(cluster: &ShardCluster) {
    for u in 0..USERS {
        cluster
            .put_online(
                "user",
                &EntityKey::new(format!("u{u}")),
                &[("score", Value::Float(score_for(u)))],
                NOW,
            )
            .unwrap();
    }
    for shard in cluster.map().shards() {
        let mut table = EmbeddingTable::new(DIM).expect("dim > 0");
        for i in 0..EMB_KEYS {
            let key = format!("e{i:04}");
            if cluster.shard_for(&key) == shard.id {
                table.insert(key, vector_for(i)).expect("insert");
            }
        }
        let leader = cluster.leader(shard.id);
        leader
            .parts()
            .embeddings
            .publish("emb", table, EmbeddingProvenance::default(), NOW)
            .expect("publish");
        leader
            .parts()
            .indexes
            .build("emb", &IndexSpec::Flat)
            .expect("index");
    }
    assert!(
        cluster.wait_converged(Duration::from_secs(10)),
        "followers never converged after seeding"
    );
}

fn two_shard_cluster() -> ShardCluster {
    let cluster = ShardCluster::start(
        ClusterConfig {
            shards: 2,
            followers: 1,
            ..ClusterConfig::default()
        },
        fixed_clock(NOW),
    )
    .expect("cluster starts");
    seed(&cluster);
    cluster
}

/// Hit content for byte-comparison: key plus the exact distance bits.
fn sig(hits: &[WireHit]) -> Vec<(String, u32)> {
    hits.iter()
        .map(|h| (h.key.clone(), h.distance.to_bits()))
        .collect()
}

#[test]
fn point_reads_and_batches_route_by_shard() {
    let cluster = two_shard_cluster();
    let mut router = cluster.router();

    // Every user answers with its seeded value, wherever it lives.
    for u in 0..USERS {
        let v = router
            .get_features("user", &format!("u{u}"), &["score"])
            .expect("routed read");
        assert_eq!(v.values, vec![Value::Float(score_for(u))], "u{u}");
    }

    // A batch spanning both shards comes back in caller order.
    let entities: Vec<String> = (0..USERS).map(|u| format!("u{u}")).collect();
    let refs: Vec<&str> = entities.iter().map(String::as_str).collect();
    let batch = router
        .get_features_batch("user", &refs, &["score"])
        .expect("routed batch");
    assert_eq!(batch.len(), USERS);
    for (u, v) in batch.iter().enumerate() {
        assert_eq!(v.entity, format!("u{u}"), "batch order broken at {u}");
        assert_eq!(v.values, vec![Value::Float(score_for(u))]);
    }

    // Embeddings route by key too.
    for i in [0usize, 7, 23, EMB_KEYS - 1] {
        let e = router
            .get_embedding("emb", &format!("e{i:04}"))
            .expect("routed embedding");
        assert_eq!(e.vector, vector_for(i), "e{i:04}");
    }

    // An entity that exists nowhere serves nulls — exactly the
    // single-node semantics, just routed to whichever shard owns the key.
    let missing = router
        .get_features("user", "no-such-user", &["score"])
        .expect("missing entities serve nulls, not errors");
    assert_eq!(missing.values, vec![Value::Null]);
    cluster.shutdown();
}

#[test]
fn scattered_search_matches_a_single_node_oracle() {
    let cluster = two_shard_cluster();
    let mut router = cluster.router();

    // The oracle: one server holding the WHOLE table.
    let oracle = ReplLeader::with_retention(LeaderParts::new(), 64);
    let mut full = EmbeddingTable::new(DIM).expect("dim > 0");
    for i in 0..EMB_KEYS {
        full.insert(format!("e{i:04}"), vector_for(i))
            .expect("insert");
    }
    oracle
        .parts()
        .embeddings
        .publish("emb", full, EmbeddingProvenance::default(), NOW)
        .expect("publish");
    oracle
        .parts()
        .indexes
        .build("emb", &IndexSpec::Flat)
        .expect("index");
    let oracle_handle =
        start(oracle.engine(fixed_clock(NOW)), ServeConfig::default()).expect("oracle server");
    let mut oracle_client = FeatureClient::connect(oracle_handle.addr()).expect("connect");

    // Explicit-vector searches across a spread of query points.
    for j in 0..10 {
        let query: Vec<f32> = (0..DIM)
            .map(|d| j as f32 * 0.37 + 0.003 + d as f32 * 0.01)
            .collect();
        let ours = router
            .search_nearest("emb", &query, 10, Default::default())
            .expect("routed search");
        let truth = oracle_client
            .search_nearest("emb", &query, 10, Default::default())
            .expect("oracle search");
        assert_eq!(
            sig(&ours.hits),
            sig(&truth.hits),
            "merged top-k diverged from the oracle for query {j}"
        );
    }

    // By-key searches: the anchor must be excluded globally, not just on
    // its home shard.
    for key in ["e0000", "e0007", "e0019", "e0039"] {
        let ours = router
            .search_nearest_by_key("emb", key, 5, Default::default())
            .expect("routed by-key search");
        let truth = oracle_client
            .search_nearest_by_key("emb", key, 5, Default::default())
            .expect("oracle by-key search");
        assert!(
            ours.hits.iter().all(|h| h.key != key),
            "anchor {key} leaked into its own neighbours"
        );
        assert_eq!(
            sig(&ours.hits),
            sig(&truth.hits),
            "by-key diverged at {key}"
        );
    }

    oracle_handle.shutdown();
    cluster.shutdown();
}

#[test]
fn leader_kill_promotes_a_follower_with_zero_wrong_answers() {
    let mut cluster = two_shard_cluster();
    let control = cluster.control();
    let victim = ShardId(0);

    // Traffic: a dedicated router hammers every user, checking every answer
    // against the seeded truth. Wrong answers and errors are counted
    // separately — an error is an availability miss, a wrong answer is a
    // correctness bug.
    let stop = Arc::new(AtomicBool::new(false));
    let traffic = {
        let stop = Arc::clone(&stop);
        let mut router = cluster.router();
        std::thread::spawn(move || -> (u64, u64, u64, Vec<String>) {
            let (mut ok, mut wrong, mut errors) = (0u64, 0u64, 0u64);
            let mut samples: Vec<String> = Vec::new();
            let mut u = 0usize;
            while !stop.load(Ordering::Acquire) {
                let entity = format!("u{}", u % USERS);
                match router.get_features("user", &entity, &["score"]) {
                    Ok(v) => {
                        if v.values == vec![Value::Float(score_for(u % USERS))] {
                            ok += 1;
                        } else {
                            wrong += 1;
                        }
                    }
                    Err(e) => {
                        errors += 1;
                        if samples.len() < 6 {
                            samples.push(format!("{e:?} stats={:?}", router.shard_stats()));
                        }
                    }
                }
                u += 1;
            }
            (ok, wrong, errors, samples)
        })
    };

    std::thread::sleep(Duration::from_millis(100));
    cluster.kill_leader(victim);

    // The control plane needs `failure_threshold` consecutive missed
    // probes (default 2) before it publishes the promoted map.
    assert!(
        control.probe_once().is_empty(),
        "one strike must not promote"
    );
    let events = control.probe_once();
    assert_eq!(events.len(), 1, "second strike promotes the dead leader");
    assert_eq!(events[0].shard, victim);
    assert_eq!(control.map().version(), events[0].map_version);

    // Keep traffic flowing against the promoted map for a while.
    std::thread::sleep(Duration::from_millis(200));
    stop.store(true, Ordering::Release);
    let (ok, wrong, errors, samples) = traffic.join().expect("traffic thread");
    assert!(ok > 0, "no reads completed at all");
    assert_eq!(wrong, 0, "a read returned silently wrong data");
    assert_eq!(
        errors, 0,
        "failover + retries should have absorbed the outage ({ok} ok, samples: {samples:?})"
    );

    // Data-plane promotion: the surviving follower becomes a replication
    // leader, writes resume, and the router sees them.
    cluster.promote_local(victim);
    let moved: usize = (0..USERS)
        .find(|u| cluster.shard_for(&format!("u{u}")) == victim)
        .expect("the victim shard owns at least one seeded user");
    cluster
        .put_online(
            "user",
            &EntityKey::new(format!("u{moved}")),
            &[("score", Value::Float(99.5))],
            NOW,
        )
        .unwrap();
    let mut router = cluster.router();
    let v = router
        .get_features("user", &format!("u{moved}"), &["score"])
        .expect("post-promotion read");
    assert_eq!(
        v.values,
        vec![Value::Float(99.5)],
        "a write to the promoted leader must be readable through the router"
    );
    cluster.shutdown();
}

#[test]
fn routed_writes_read_back_byte_identical() {
    let cluster = two_shard_cluster();
    let mut router = cluster.router();

    for u in 0..USERS {
        let entity = format!("u{u}");
        // A float with a deliberately awkward bit pattern and a unicode
        // string: the values must survive write → WAL-backed apply →
        // routed read bit-for-bit.
        let score = f64::from_bits(0x3FF8_0000_0000_0001 + u as u64);
        let values = [
            ("score", Value::Float(score)),
            ("label", Value::Str(format!("écrit-🦀-{u}"))),
        ];
        // The router stamps the authoritative term from its map; the
        // caller's term is irrelevant on the routed path.
        let ack = router
            .put_online("user", &entity, &values, 0)
            .expect("routed write");
        assert_eq!(ack.term, 1, "fresh cluster leaders hold term 1");

        let v = router
            .get_features("user", &entity, &["score", "label"])
            .expect("routed read-back");
        let expected: Vec<Value> = values.iter().map(|(_, v)| v.clone()).collect();
        assert_eq!(v.values, expected, "u{u} read back differently");
        let Value::Float(read) = v.values[0] else {
            panic!("score came back as {:?}", v.values[0]);
        };
        assert_eq!(
            read.to_bits(),
            score.to_bits(),
            "float bits mangled on the write path"
        );
    }
    cluster.shutdown();
}

#[test]
fn automatic_failover_routes_writes_and_fences_the_revived_zombie() {
    let mut cluster = two_shard_cluster();
    let control = cluster.control();
    let victim = ShardId(0);
    let moved: usize = (0..USERS)
        .find(|u| cluster.shard_for(&format!("u{u}")) == victim)
        .expect("the victim shard owns at least one seeded user");

    cluster.kill_leader(victim);

    // Two missed probes promote the follower — map-level (endpoint
    // rotation + term bump) and, via the wire-level `Promote` the control
    // plane sends, data-plane: the follower's engine runs its promotion
    // hook and starts accepting writes. No local intervention.
    assert!(control.probe_once().is_empty(), "one strike must not act");
    let events = control.probe_once();
    assert_eq!(events.len(), 1, "second strike promotes");
    assert_eq!(events[0].shard, victim);
    assert_eq!(events[0].term, 2, "promotion bumps the leader term");

    let mut router = cluster.router();
    let ack = router
        .put_online(
            "user",
            &format!("u{moved}"),
            &[("score", Value::Float(123.5))],
            0,
        )
        .expect("routed write lands on the promoted follower");
    assert_eq!(ack.term, 2, "the ack carries the post-failover term");
    let v = router
        .get_features("user", &format!("u{moved}"), &["score"])
        .expect("routed read");
    assert_eq!(v.values, vec![Value::Float(123.5)]);

    // The dead leader comes back believing it still leads at term 1 — a
    // zombie. Before the control plane reaches it, a *stale-term* write
    // sent straight at it would be accepted; the fence must close that.
    let zombie_addr = cluster.revive_leader(victim).expect("revive");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let fenced = loop {
        // Each probe round retries the pending fence until the revived
        // node acknowledges it.
        control.probe_once();
        if control.snapshot().pending_fences == 0 {
            break true;
        }
        if std::time::Instant::now() > deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(fenced, "the pending fence never reached the revived leader");

    let mut direct = FeatureClient::connect(zombie_addr).expect("connect to zombie");
    let err = direct
        .put_online(
            "user",
            &format!("u{moved}"),
            &[("score", Value::Float(666.0))],
            1,
        )
        .expect_err("a fenced zombie must refuse its old term");
    match err {
        ClientError::NotLeader { current_term } => {
            assert_eq!(current_term, 2, "the refusal names the fencing term")
        }
        other => panic!("expected NotLeader, got {other:?}"),
    }

    // Nothing the zombie did (or was prevented from doing) disturbed the
    // acknowledged post-failover write.
    let v = router
        .get_features("user", &format!("u{moved}"), &["score"])
        .expect("routed read after fencing");
    assert_eq!(v.values, vec![Value::Float(123.5)]);

    // The control section of any node's metrics records the episode.
    let snap = cluster.control_metrics();
    assert_eq!(snap.promotions, 1);
    assert_eq!(snap.terms.get("shard-0"), Some(&2));
    cluster.shutdown();
}

#[test]
fn router_tcp_front_speaks_the_wire_protocol() {
    let cluster = two_shard_cluster();
    let handle = fstore_shard::start_router("127.0.0.1:0", cluster.control(), Default::default())
        .expect("router server");

    // An ordinary FeatureClient cannot tell the router from a shard.
    let mut client = FeatureClient::connect(handle.addr()).expect("connect to router");
    let v = client
        .get_features("user", "u3", &["score"])
        .expect("read through the TCP router");
    assert_eq!(v.values, vec![Value::Float(score_for(3))]);
    let n = client
        .search_nearest("emb", &vector_for(5), 3, Default::default())
        .expect("search through the TCP router");
    assert_eq!(n.hits.len(), 3);
    assert_eq!(n.hits[0].key, "e0005");
    let (queue_depth, draining) = client.health().expect("aggregated health");
    assert_eq!(queue_depth, 0);
    assert!(!draining);

    // Replication endpoints are per-shard by design.
    match client.call(&Request::ReplSubscribe).expect("typed refusal") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected a BadRequest refusal, got {other:?}"),
    }

    handle.shutdown();
    cluster.shutdown();
}
