//! # fstore-durable
//!
//! Durability for the serving stack (paper §2.2.2's operational reality:
//! a feature store's serving tier must survive restarts without serving
//! wrong answers): a write-ahead log, on-disk columnar checkpoints, and
//! crash recovery that restarts a leader into its last *published* epoch.
//!
//! * [`wal`] — length-prefixed, CRC-32-checksummed records with
//!   epoch-tagged commit markers and a configurable fsync policy; recovery
//!   replays to the last complete commit and truncates the torn tail.
//! * [`checkpoint`] — the at-rest forms of the four components (binary
//!   columnar segments for the offline store, raw-vector blobs for
//!   embedding versions) under an atomically swapped manifest.
//! * [`leader`] — [`DurableLeader`] hooks the same publish path the
//!   replication `PubLog` taps and logs every publication; `open` is both
//!   cold start and crash recovery.
//! * [`codec`] — the delta/snapshot bodies and idempotent apply functions
//!   shared by replication and recovery (moved here from `fstore-repl`,
//!   which re-exports it).
//! * [`fseb`] — the `"FSEB"` embedding-blob codec, shared by checkpoints
//!   and the tiered pager (`fstore-tier`) so the at-rest format lives in
//!   exactly one place.
//! * [`cache`] — a follower's persisted last full snapshot, so restarts
//!   bootstrap from disk and catch up by delta instead of re-pulling the
//!   leader's whole state.

pub mod cache;
pub mod checkpoint;
pub mod codec;
pub mod fseb;
pub mod leader;
pub mod wal;

pub use cache::SnapshotCache;
pub use checkpoint::{CheckpointData, CheckpointStore, Manifest};
pub use fseb::{decode_blob, encode_blob, BlobHeader, BLOB_MAGIC};
pub use leader::{DurableConfig, DurableLeader, RecoveryReport};
pub use wal::{FsyncPolicy, WalRecord, WalReplay, WalWriter};
