//! A follower's local snapshot cache: the last full snapshot it pulled,
//! persisted so a restart can bootstrap from disk instead of re-pulling
//! the leader's entire state over the wire.
//!
//! The cache is one file, CRC-guarded and swapped atomically (temp file +
//! rename). A follower that restarts within the leader's retention window
//! installs the cached snapshot, then catches up through ordinary delta
//! sync; only a follower whose cache has lagged past retention pays for a
//! full wire transfer again.

use fstore_common::{FsError, Result};
use fstore_serve::codec::crc_block;
use std::path::PathBuf;

const MAGIC: &[u8; 4] = b"FSSC";

/// One cached full snapshot: `"FSSC" | crc u32 | repl_epoch u64 | payload`.
/// The CRC covers the epoch and payload.
#[derive(Debug, Clone)]
pub struct SnapshotCache {
    path: PathBuf,
}

impl SnapshotCache {
    pub fn new(path: impl Into<PathBuf>) -> SnapshotCache {
        SnapshotCache { path: path.into() }
    }

    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// Persist a snapshot payload captured at `repl_epoch` (atomic swap).
    pub fn store(&self, repl_epoch: u64, payload: &[u8]) -> Result<()> {
        let mut body = Vec::with_capacity(payload.len() + 8);
        body.extend_from_slice(&repl_epoch.to_le_bytes());
        body.extend_from_slice(payload);
        let out = crc_block::encode(MAGIC, &body);

        if let Some(parent) = self.path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| FsError::Storage(format!("create {}: {e}", parent.display())))?;
        }
        let tmp = self.path.with_extension("tmp");
        std::fs::write(&tmp, &out)
            .map_err(|e| FsError::Storage(format!("write snapshot cache: {e}")))?;
        std::fs::rename(&tmp, &self.path)
            .map_err(|e| FsError::Storage(format!("swap snapshot cache: {e}")))
    }

    /// Load the cached snapshot: `Ok(None)` when no cache exists,
    /// `Err(Corruption)` when one exists but fails its checksum.
    pub fn load(&self) -> Result<Option<(u64, Vec<u8>)>> {
        let bytes = match std::fs::read(&self.path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(FsError::Storage(format!("read snapshot cache: {e}"))),
        };
        let body = crc_block::decode(MAGIC, &bytes)
            .map_err(|e| FsError::Corruption(format!("snapshot cache: {e}")))?;
        if body.len() < 8 {
            return Err(FsError::Corruption("truncated snapshot cache".into()));
        }
        let repl_epoch = u64::from_le_bytes(body[0..8].try_into().unwrap());
        Ok(Some((repl_epoch, body[8..].to_vec())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("fstore_cache_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn store_load_round_trip() {
        let cache = SnapshotCache::new(tmp("round.cache"));
        cache.store(42, b"snapshot payload").unwrap();
        let (epoch, payload) = cache.load().unwrap().unwrap();
        assert_eq!(epoch, 42);
        assert_eq!(payload, b"snapshot payload");
        // Overwrites swap in cleanly.
        cache.store(43, b"newer").unwrap();
        assert_eq!(cache.load().unwrap().unwrap(), (43, b"newer".to_vec()));
    }

    #[test]
    fn missing_cache_is_none() {
        let cache = SnapshotCache::new(tmp("never_written.cache"));
        std::fs::remove_file(cache.path()).ok();
        assert!(cache.load().unwrap().is_none());
    }

    #[test]
    fn corruption_is_detected() {
        let path = tmp("corrupt.cache");
        let cache = SnapshotCache::new(&path);
        cache.store(7, b"payload").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(cache.load(), Err(FsError::Corruption(_))));
    }
}
