//! Checkpoints: the durable base state the WAL replays on top of.
//!
//! A checkpoint directory holds the four components in their natural
//! at-rest forms — the offline store in the binary columnar segment format
//! ([`OfflineStore::save_binary`]), each embedding version as a raw-vector
//! blob, and the online rows / index build instructions as JSON. A
//! `MANIFEST.json` names the live checkpoint and the component epochs it
//! was captured at; it is swapped with a temp-file-plus-rename, so the
//! manifest either names a complete checkpoint or the previous one — never
//! a half-written directory. Stale checkpoint directories and rotated WAL
//! files are only garbage-collected *after* the swap.
//!
//! Layout under the durability directory:
//!
//! ```text
//! MANIFEST.json            → { repl_epoch, component epochs }
//! checkpoint-<epoch>/      offline.bin, emb-<i>.blob, online.json, indexes.json
//! wal-<epoch>.log          the WAL since that checkpoint
//! ```

use crate::codec::{IndexBuild, OnlineRow, VersionRepr};
use crate::fseb::{decode_blob, encode_blob};
use fstore_common::{FsError, Result};
use fstore_storage::OfflineStore;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

const MANIFEST_VERSION: u32 = 1;

/// The durable root's commit record: which checkpoint is live and the
/// epochs its components were captured at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest {
    pub version: u32,
    /// The WAL sequence number the checkpoint covers: recovery loads the
    /// checkpoint, then replays `wal-<repl_epoch>.log` past it.
    pub repl_epoch: u64,
    pub offline_epoch: u64,
    pub embeddings_epoch: u64,
    pub index_epoch: u64,
}

/// Everything a checkpoint persists (and recovery loads back).
#[derive(Debug, Clone)]
pub struct CheckpointData {
    pub repl_epoch: u64,
    pub offline: OfflineStore,
    pub offline_epoch: u64,
    pub embeddings: Vec<VersionRepr>,
    pub embeddings_epoch: u64,
    pub online: Vec<OnlineRow>,
    pub indexes: Vec<IndexBuild>,
    pub index_epoch: u64,
}

fn write_file(path: &Path, bytes: &[u8]) -> Result<()> {
    std::fs::write(path, bytes)
        .map_err(|e| FsError::Storage(format!("write {}: {e}", path.display())))
}

fn read_file(path: &Path) -> Result<Vec<u8>> {
    std::fs::read(path).map_err(|e| FsError::Storage(format!("read {}: {e}", path.display())))
}

/// The on-disk root: manifest, checkpoint directories, WAL files.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Open (creating if needed) a durability directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<CheckpointStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| FsError::Storage(format!("create {}: {e}", dir.display())))?;
        Ok(CheckpointStore { dir })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The WAL file paired with the checkpoint at `repl_epoch`.
    pub fn wal_path(&self, repl_epoch: u64) -> PathBuf {
        self.dir.join(format!("wal-{repl_epoch}.log"))
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join("MANIFEST.json")
    }

    fn checkpoint_dir(&self, repl_epoch: u64) -> PathBuf {
        self.dir.join(format!("checkpoint-{repl_epoch}"))
    }

    /// Read the manifest; `None` means a cold (never-checkpointed) root.
    pub fn load_manifest(&self) -> Result<Option<Manifest>> {
        let bytes = match std::fs::read(self.manifest_path()) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(FsError::Storage(format!("read manifest: {e}"))),
        };
        let manifest: Manifest = serde_json::from_slice(&bytes)
            .map_err(|e| FsError::Corruption(format!("unparseable manifest: {e}")))?;
        if manifest.version != MANIFEST_VERSION {
            return Err(FsError::Storage(format!(
                "unsupported manifest v{} (expected v{MANIFEST_VERSION})",
                manifest.version
            )));
        }
        Ok(Some(manifest))
    }

    /// Persist a checkpoint and swap the manifest to it. Everything lands
    /// in a temp directory first; the `rename` into place and then the
    /// manifest's own temp-file rename are the only visible transitions.
    ///
    /// A checkpoint for `repl_epoch` that already exists *and* is named by
    /// the manifest is left alone — equal epochs mean equal state (the WAL
    /// sequence totally orders publications), so rewriting it buys nothing.
    pub fn write(&self, data: &CheckpointData) -> Result<Manifest> {
        let manifest = Manifest {
            version: MANIFEST_VERSION,
            repl_epoch: data.repl_epoch,
            offline_epoch: data.offline_epoch,
            embeddings_epoch: data.embeddings_epoch,
            index_epoch: data.index_epoch,
        };
        let final_dir = self.checkpoint_dir(data.repl_epoch);
        let current = self.load_manifest().ok().flatten();
        if final_dir.exists() && current.is_some_and(|m| m.repl_epoch == data.repl_epoch) {
            return Ok(manifest);
        }

        let tmp_dir = self.dir.join(format!("checkpoint-{}.tmp", data.repl_epoch));
        if tmp_dir.exists() {
            std::fs::remove_dir_all(&tmp_dir)
                .map_err(|e| FsError::Storage(format!("clear stale tmp checkpoint: {e}")))?;
        }
        std::fs::create_dir_all(&tmp_dir)
            .map_err(|e| FsError::Storage(format!("create tmp checkpoint: {e}")))?;

        data.offline.save_binary(&tmp_dir.join("offline.bin"))?;
        for (i, version) in data.embeddings.iter().enumerate() {
            write_file(
                &tmp_dir.join(format!("emb-{i}.blob")),
                &encode_blob(version)?,
            )?;
        }
        write_file(
            &tmp_dir.join("online.json"),
            serde_json::to_string(&data.online)
                .map_err(|e| FsError::Serde(e.to_string()))?
                .as_bytes(),
        )?;
        write_file(
            &tmp_dir.join("indexes.json"),
            serde_json::to_string(&data.indexes)
                .map_err(|e| FsError::Serde(e.to_string()))?
                .as_bytes(),
        )?;

        if final_dir.exists() {
            // Not named by the manifest (interrupted earlier attempt) —
            // safe to replace.
            std::fs::remove_dir_all(&final_dir)
                .map_err(|e| FsError::Storage(format!("clear orphan checkpoint: {e}")))?;
        }
        std::fs::rename(&tmp_dir, &final_dir)
            .map_err(|e| FsError::Storage(format!("publish checkpoint: {e}")))?;

        let tmp_manifest = self.dir.join("MANIFEST.json.tmp");
        write_file(
            &tmp_manifest,
            serde_json::to_string_pretty(&manifest)
                .map_err(|e| FsError::Serde(e.to_string()))?
                .as_bytes(),
        )?;
        std::fs::rename(&tmp_manifest, self.manifest_path())
            .map_err(|e| FsError::Storage(format!("swap manifest: {e}")))?;
        Ok(manifest)
    }

    /// Load the checkpoint the manifest names (`None` on a cold root).
    pub fn load(&self) -> Result<Option<CheckpointData>> {
        let Some(manifest) = self.load_manifest()? else {
            return Ok(None);
        };
        let dir = self.checkpoint_dir(manifest.repl_epoch);
        let offline = OfflineStore::load_binary(&dir.join("offline.bin"))?;
        let mut embeddings = Vec::new();
        for i in 0.. {
            let path = dir.join(format!("emb-{i}.blob"));
            if !path.exists() {
                break;
            }
            embeddings.push(decode_blob(&read_file(&path)?)?);
        }
        let online: Vec<OnlineRow> = serde_json::from_slice(&read_file(&dir.join("online.json"))?)
            .map_err(|e| FsError::Corruption(format!("unparseable online.json: {e}")))?;
        let indexes: Vec<IndexBuild> =
            serde_json::from_slice(&read_file(&dir.join("indexes.json"))?)
                .map_err(|e| FsError::Corruption(format!("unparseable indexes.json: {e}")))?;
        Ok(Some(CheckpointData {
            repl_epoch: manifest.repl_epoch,
            offline,
            offline_epoch: manifest.offline_epoch,
            embeddings,
            embeddings_epoch: manifest.embeddings_epoch,
            online,
            indexes,
            index_epoch: manifest.index_epoch,
        }))
    }

    /// Remove checkpoint directories and WAL files other than the ones for
    /// `keep_epoch`. Called only after a manifest swap, so nothing the live
    /// manifest references is ever deleted.
    pub fn gc(&self, keep_epoch: u64) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        let keep_ckpt = format!("checkpoint-{keep_epoch}");
        let keep_wal = format!("wal-{keep_epoch}.log");
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let stale_ckpt = name.starts_with("checkpoint-") && name != keep_ckpt;
            let stale_wal = name.starts_with("wal-") && name != keep_wal;
            if stale_ckpt {
                let _ = std::fs::remove_dir_all(entry.path());
            } else if stale_wal {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fstore_common::{Schema, Timestamp, Value, ValueType};
    use fstore_embed::EmbeddingProvenance;
    use fstore_serve::IndexSpec;
    use fstore_storage::TableConfig;

    fn tmp_root(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("fstore_ckpt_tests").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn sample_data(repl_epoch: u64) -> CheckpointData {
        let mut offline = OfflineStore::new();
        offline
            .create_table("t", TableConfig::new(Schema::of(&[("x", ValueType::Int)])))
            .unwrap();
        offline.append("t", &[Value::Int(7)]).unwrap();
        CheckpointData {
            repl_epoch,
            offline,
            offline_epoch: 3,
            embeddings: vec![VersionRepr {
                name: "emb".into(),
                version: 1,
                created_at: Timestamp::millis(5),
                provenance: EmbeddingProvenance::default(),
                dim: 2,
                keys: vec!["a".into(), "b".into()],
                vectors: vec![vec![1.0, 2.0], vec![3.0, -0.5]],
                consumers: vec!["ranker".into()],
            }],
            embeddings_epoch: 2,
            online: vec![OnlineRow {
                group: "user".into(),
                entity: "u1".into(),
                feature: "score".into(),
                value: Value::Float(0.5),
                written_at: Timestamp::millis(9),
            }],
            indexes: vec![IndexBuild {
                table: "emb".into(),
                spec: IndexSpec::Flat,
                built_from_version: 1,
                generation: 4,
            }],
            index_epoch: 4,
        }
    }

    #[test]
    fn checkpoint_round_trips() {
        let store = CheckpointStore::open(tmp_root("round_trip")).unwrap();
        assert!(store.load().unwrap().is_none());
        let data = sample_data(11);
        let manifest = store.write(&data).unwrap();
        assert_eq!(manifest.repl_epoch, 11);

        let loaded = store.load().unwrap().unwrap();
        assert_eq!(loaded.repl_epoch, 11);
        assert_eq!(loaded.offline_epoch, 3);
        assert_eq!(loaded.offline.num_rows("t").unwrap(), 1);
        assert_eq!(loaded.embeddings, data.embeddings);
        assert_eq!(loaded.online, data.online);
        assert_eq!(loaded.indexes, data.indexes);
        assert_eq!(loaded.index_epoch, 4);
    }

    #[test]
    fn blob_round_trips_and_rejects_corruption() {
        let v = sample_data(1).embeddings.remove(0);
        let bytes = encode_blob(&v).unwrap();
        assert_eq!(decode_blob(&bytes).unwrap(), v);
        for i in [0, 5, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(
                matches!(decode_blob(&bad), Err(FsError::Corruption(_))),
                "byte {i}"
            );
        }
    }

    #[test]
    fn newer_checkpoint_supersedes_and_gc_removes_the_old_one() {
        let store = CheckpointStore::open(tmp_root("supersede")).unwrap();
        store.write(&sample_data(5)).unwrap();
        let mut newer = sample_data(9);
        newer.offline.append("t", &[Value::Int(8)]).unwrap();
        store.write(&newer).unwrap();
        std::fs::write(store.wal_path(9), b"").unwrap();
        store.gc(9);

        assert!(!store.dir().join("checkpoint-5").exists());
        assert!(store.dir().join("checkpoint-9").exists());
        assert!(store.wal_path(9).exists());
        let loaded = store.load().unwrap().unwrap();
        assert_eq!(loaded.repl_epoch, 9);
        assert_eq!(loaded.offline.num_rows("t").unwrap(), 2);
    }

    #[test]
    fn rewriting_the_live_epoch_is_a_no_op() {
        let store = CheckpointStore::open(tmp_root("same_epoch")).unwrap();
        store.write(&sample_data(5)).unwrap();
        // Same epoch again (recovery that replayed nothing) — must not fail
        // on the existing directory.
        store.write(&sample_data(5)).unwrap();
        assert_eq!(store.load().unwrap().unwrap().repl_epoch, 5);
    }

    #[test]
    fn empty_components_checkpoint_cleanly() {
        let store = CheckpointStore::open(tmp_root("empty")).unwrap();
        let data = CheckpointData {
            repl_epoch: 0,
            offline: OfflineStore::new(),
            offline_epoch: 0,
            embeddings: Vec::new(),
            embeddings_epoch: 0,
            online: Vec::new(),
            indexes: Vec::new(),
            index_epoch: 0,
        };
        store.write(&data).unwrap();
        let loaded = store.load().unwrap().unwrap();
        assert!(loaded.offline.table_names().is_empty());
        assert!(loaded.embeddings.is_empty());
    }
}
