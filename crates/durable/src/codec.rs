//! Delta and snapshot payloads: what crosses the wire *and* what lands in
//! the write-ahead log.
//!
//! The publication log ([`fstore_common::PubLog`]) and the WAL both store
//! bodies as opaque JSON strings; this module defines the per-component
//! body types, the diff functions publish hooks use to produce them, and
//! the apply functions followers and crash recovery use to replay them.
//! (It lives here rather than in `fstore-repl` so durability does not
//! depend on replication; `fstore-repl` re-exports it.) Three invariants
//! keep at-least-once delivery — and WAL replay over a checkpoint, which
//! is the same re-delivery problem — safe:
//!
//! * **applies are idempotent** — re-delivering a delta a follower already
//!   holds is a no-op (appends carry their start row, version installs
//!   upsert, index builds pin their generation, online puts overwrite);
//! * **epochs ride outside the body** — the follower installs each body at
//!   the leader-dictated component epoch from the [`DeltaRecord`], never a
//!   locally minted one;
//! * **indexes ship as build instructions** — an index is a deterministic
//!   function of `(table@version, spec)` because specs carry fixed seeds,
//!   so followers rebuild instead of deserializing index bytes.
//!
//! [`DeltaRecord`]: fstore_common::DeltaRecord

use fstore_common::{
    ComponentKind, DeltaRecord, EntityKey, FieldDef, FsError, ReadEpoch, Result, Schema, Timestamp,
    Value, ValueType,
};
use fstore_embed::{
    EmbeddingDb, EmbeddingProvenance, EmbeddingStore, EmbeddingTable, EmbeddingVersion,
};
use fstore_serve::{IndexCatalog, IndexMap, IndexSpec};
use fstore_storage::{OfflineDb, OfflineStore, OnlineStore, ScanRequest, TableConfig};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Encode any body as its wire JSON.
pub fn encode<T: Serialize>(body: &T) -> Result<String> {
    serde_json::to_string(body).map_err(|e| FsError::Serde(e.to_string()))
}

/// Decode a wire JSON body.
pub fn decode<T: Deserialize>(body: &str) -> Result<T> {
    serde_json::from_str(body).map_err(|e| FsError::Serde(e.to_string()))
}

/// The CRC block envelope (`magic | crc32(body) LE | body`) every durable
/// binary artifact shares — snapshot caches, embedding blobs — re-exported
/// from the wire codec so there is exactly one implementation of the
/// framing.
pub use fstore_serve::codec::crc_block;

// ---------------------------------------------------------------------------
// Offline store
// ---------------------------------------------------------------------------

/// One schema field on the wire ([`FieldDef`] itself does not serialize).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldRepr {
    pub name: String,
    pub ty: ValueType,
    pub nullable: bool,
}

/// A full offline table: configuration plus every row. Used when a table
/// is new, reconfigured, or otherwise not reachable by appending.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableRepr {
    pub name: String,
    pub fields: Vec<FieldRepr>,
    pub time_column: Option<String>,
    pub segment_rows: usize,
    pub rows: Vec<Vec<Value>>,
}

/// Rows appended to an existing table. `start_row` is the table's row
/// count before the append, which is what makes re-delivery idempotent:
/// an applier that already holds some or all of these rows skips them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableAppend {
    pub table: String,
    pub start_row: usize,
    pub rows: Vec<Vec<Value>>,
}

/// What changed between two offline-store snapshots.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OfflineDelta {
    pub drops: Vec<String>,
    pub replaces: Vec<TableRepr>,
    pub appends: Vec<TableAppend>,
}

/// Capture one table wholesale.
pub fn table_repr(store: &OfflineStore, name: &str) -> Result<TableRepr> {
    let fields = store
        .schema(name)?
        .fields()
        .iter()
        .map(|f| FieldRepr {
            name: f.name.clone(),
            ty: f.ty,
            nullable: f.nullable,
        })
        .collect();
    Ok(TableRepr {
        name: name.to_string(),
        fields,
        time_column: store.time_column(name)?,
        segment_rows: store.segment_rows(name)?,
        rows: store.scan(name, &ScanRequest::all())?.rows,
    })
}

fn create_from_repr(store: &mut OfflineStore, repr: &TableRepr) -> Result<()> {
    let schema = Schema::new(
        repr.fields
            .iter()
            .map(|f| FieldDef {
                name: f.name.clone(),
                ty: f.ty,
                nullable: f.nullable,
            })
            .collect(),
    )?;
    let mut config = TableConfig::new(schema).with_segment_rows(repr.segment_rows);
    if let Some(col) = &repr.time_column {
        config = config.with_time_column(col.clone());
    }
    store.create_table(&repr.name, config)?;
    for row in &repr.rows {
        store.append(&repr.name, row)?;
    }
    Ok(())
}

fn table_config_matches(base: &OfflineStore, new: &OfflineStore, name: &str) -> Result<bool> {
    Ok(base.schema(name)? == new.schema(name)?
        && base.time_column(name)? == new.time_column(name)?
        && base.segment_rows(name)? == new.segment_rows(name)?)
}

/// Diff two offline snapshots into a replayable delta. The store is
/// append-only within a table, so a grown table whose configuration is
/// unchanged ships only its tail rows; everything else ships wholesale.
pub fn diff_offline(base: &OfflineStore, new: &OfflineStore) -> Result<OfflineDelta> {
    let mut delta = OfflineDelta::default();
    for name in base.table_names() {
        if !new.has_table(name) {
            delta.drops.push(name.to_string());
        }
    }
    for name in new.table_names() {
        if !base.has_table(name) || !table_config_matches(base, new, name)? {
            delta.replaces.push(table_repr(new, name)?);
            continue;
        }
        let base_rows = base.num_rows(name)?;
        let new_rows = new.num_rows(name)?;
        if new_rows < base_rows {
            delta.replaces.push(table_repr(new, name)?);
        } else if new_rows > base_rows {
            let rows = new.scan(name, &ScanRequest::all())?.rows;
            delta.appends.push(TableAppend {
                table: name.to_string(),
                start_row: base_rows,
                rows: rows[base_rows..].to_vec(),
            });
        }
    }
    delta.drops.sort();
    delta.replaces.sort_by(|a, b| a.name.cmp(&b.name));
    delta.appends.sort_by(|a, b| a.table.cmp(&b.table));
    Ok(delta)
}

/// Replay an offline delta. Idempotent under re-delivery; a state the
/// delta cannot possibly apply to (rows missing below an append's start
/// row) is an error — the follower treats it as corruption and falls back
/// to a full snapshot.
pub fn apply_offline(store: &mut OfflineStore, delta: &OfflineDelta) -> Result<()> {
    for name in &delta.drops {
        if store.has_table(name) {
            store.drop_table(name)?;
        }
    }
    for repr in &delta.replaces {
        if store.has_table(&repr.name) {
            store.drop_table(&repr.name)?;
        }
        create_from_repr(store, repr)?;
    }
    for append in &delta.appends {
        let have = store.num_rows(&append.table)?;
        if have < append.start_row {
            return Err(FsError::Storage(format!(
                "replica table `{}` has {have} rows but the delta starts at row {}",
                append.table, append.start_row
            )));
        }
        let already = have - append.start_row;
        for row in append.rows.iter().skip(already) {
            store.append(&append.table, row)?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Embedding catalog
// ---------------------------------------------------------------------------

/// One embedding version, flattened for the wire. Rows are exported in
/// sorted key order, so equal stores produce equal reprs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VersionRepr {
    pub name: String,
    pub version: u32,
    pub created_at: Timestamp,
    pub provenance: EmbeddingProvenance,
    pub dim: usize,
    pub keys: Vec<String>,
    pub vectors: Vec<Vec<f32>>,
    pub consumers: Vec<String>,
}

/// The embedding versions touched by one publication.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingsDelta {
    pub versions: Vec<VersionRepr>,
}

/// Flatten one version.
pub fn version_repr(v: &EmbeddingVersion) -> VersionRepr {
    let (keys, vectors) = v.table.export_rows();
    VersionRepr {
        name: v.name.clone(),
        version: v.version,
        created_at: v.created_at,
        provenance: v.provenance.clone(),
        dim: v.table.dim(),
        keys,
        vectors,
        consumers: v.consumers.clone(),
    }
}

/// Rebuild a version from its repr.
pub fn version_from_repr(r: &VersionRepr) -> Result<EmbeddingVersion> {
    if r.keys.len() != r.vectors.len() {
        return Err(FsError::Serde(format!(
            "embedding repr `{}@v{}`: {} keys but {} vectors",
            r.name,
            r.version,
            r.keys.len(),
            r.vectors.len()
        )));
    }
    let mut table = EmbeddingTable::new(r.dim)?;
    for (key, vector) in r.keys.iter().zip(&r.vectors) {
        table.insert(key.clone(), vector.clone())?;
    }
    Ok(EmbeddingVersion {
        name: r.name.clone(),
        version: r.version,
        created_at: r.created_at,
        provenance: r.provenance.clone(),
        table,
        consumers: r.consumers.clone(),
    })
}

/// Diff two embedding-store snapshots: every version present in `new` but
/// absent from — or no longer the same allocation as — `base`. Stores
/// share untouched versions by `Arc` across clone-on-write publications,
/// so pointer identity is an exact changed-or-new test; a deep copy would
/// merely over-include, which is correct (applies upsert).
pub fn diff_embeddings(base: &EmbeddingStore, new: &EmbeddingStore) -> EmbeddingsDelta {
    let mut versions: Vec<VersionRepr> = new
        .list()
        .into_iter()
        .filter(|v| {
            base.get(&v.name, v.version)
                .map_or(true, |b| !std::ptr::eq(b, *v))
        })
        .map(version_repr)
        .collect();
    versions.sort_by(|a, b| (&a.name, a.version).cmp(&(&b.name, b.version)));
    EmbeddingsDelta { versions }
}

/// Replay an embeddings delta (upsert every shipped version).
pub fn apply_embeddings(store: &mut EmbeddingStore, delta: &EmbeddingsDelta) -> Result<()> {
    for repr in &delta.versions {
        store.install_version(version_from_repr(repr)?)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Index catalog
// ---------------------------------------------------------------------------

/// Build instructions for one index snapshot: enough for a follower to
/// reconstruct it deterministically and pin both the source version and
/// the leader's swap generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexBuild {
    pub table: String,
    pub spec: IndexSpec,
    pub built_from_version: u32,
    pub generation: u64,
}

/// The index snapshots swapped by one catalog publication.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IndexDelta {
    pub builds: Vec<IndexBuild>,
}

/// The index snapshots in `new` that `base` does not share (by `Arc`
/// identity), as deterministic build instructions sorted by table.
pub fn diff_indexes(base: &IndexMap, new: &IndexMap) -> IndexDelta {
    let mut builds: Vec<IndexBuild> = new
        .iter()
        .filter(|(name, snap)| base.get(*name).is_none_or(|b| !Arc::ptr_eq(b, snap)))
        .map(|(name, snap)| IndexBuild {
            table: name.clone(),
            spec: snap.spec.clone(),
            built_from_version: snap.built_from_version,
            generation: snap.generation,
        })
        .collect();
    builds.sort_by(|a, b| a.table.cmp(&b.table));
    IndexDelta { builds }
}

// ---------------------------------------------------------------------------
// Online store
// ---------------------------------------------------------------------------

/// One replicated online write: a row of feature values for one entity,
/// each carrying the leader's write timestamp so follower-served ages
/// match the leader's exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineDelta {
    pub group: String,
    pub entity: String,
    pub features: Vec<(String, Value, Timestamp)>,
}

/// Replay an online delta (puts overwrite, hence idempotent).
pub fn apply_online(store: &OnlineStore, delta: &OnlineDelta) {
    let entity = EntityKey::new(delta.entity.clone());
    for (feature, value, written_at) in &delta.features {
        store.put(&delta.group, &entity, feature, value.clone(), *written_at);
    }
}

/// One online KV row in flattened form (bootstrap snapshots only; steady
/// state ships [`OnlineDelta`]s).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineRow {
    pub group: String,
    pub entity: String,
    pub feature: String,
    pub value: Value,
    pub written_at: Timestamp,
}

/// Capture every online row.
pub fn export_online(store: &OnlineStore) -> Vec<OnlineRow> {
    store
        .export_rows()
        .into_iter()
        .map(|(group, entity, feature, entry)| OnlineRow {
            group,
            entity,
            feature,
            value: entry.value,
            written_at: entry.written_at,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Full snapshot
// ---------------------------------------------------------------------------

/// The leader's complete replicable state at one replication epoch: what a
/// follower bootstraps (or falls back) from. Component epochs ride along
/// so the follower installs each cell at exactly the leader's epoch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FullSnapshot {
    /// Replication epoch: every delta with `seq <= repl_epoch` is folded in.
    pub repl_epoch: u64,
    pub offline_epoch: u64,
    /// [`OfflineStore::snapshot_json`] payload (the durability format).
    pub offline_json: String,
    pub embeddings_epoch: u64,
    pub embeddings: Vec<VersionRepr>,
    pub online: Vec<OnlineRow>,
    pub index_epoch: u64,
    pub indexes: Vec<IndexBuild>,
}

/// Capture a [`FullSnapshot`] of four live components at `repl_epoch`.
///
/// Callers pin `repl_epoch` however their log requires (the replication
/// leader captures under [`PubLog::frozen`], the durable leader under its
/// WAL lock); a publication that installs concurrently will be re-delivered
/// as a later delta, and applies are idempotent, so readers converge.
///
/// [`PubLog::frozen`]: fstore_common::PubLog::frozen
pub fn capture_snapshot(
    repl_epoch: u64,
    offline: &OfflineDb,
    embeddings: &EmbeddingDb,
    online: &OnlineStore,
    indexes: &IndexCatalog,
) -> Result<FullSnapshot> {
    let off = offline.read();
    let emb = embeddings.read();
    let idx = indexes.current();
    Ok(FullSnapshot {
        repl_epoch,
        offline_epoch: off.epoch.as_u64(),
        offline_json: off.value.snapshot_json()?,
        embeddings_epoch: emb.epoch.as_u64(),
        embeddings: diff_embeddings(&EmbeddingStore::new(), &emb.value).versions,
        online: export_online(online),
        index_epoch: idx.epoch.as_u64(),
        indexes: diff_indexes(&IndexMap::default(), &idx.value).builds,
    })
}

/// Replay one delta record into live components at its leader-dictated
/// component epoch — the shared apply path for follower sync and WAL
/// recovery (both are at-least-once redelivery of the same records).
pub fn apply_record(
    offline: &OfflineDb,
    embeddings: &EmbeddingDb,
    online: &OnlineStore,
    indexes: &IndexCatalog,
    record: &DeltaRecord,
) -> Result<()> {
    let epoch = ReadEpoch(record.component_epoch);
    match record.component {
        ComponentKind::Offline => {
            let delta: OfflineDelta = decode(&record.body)?;
            offline.apply_replica(epoch, |s| apply_offline(s, &delta))
        }
        ComponentKind::Embeddings => {
            let delta: EmbeddingsDelta = decode(&record.body)?;
            embeddings.apply_replica(epoch, |s| apply_embeddings(s, &delta))
        }
        ComponentKind::Index => {
            let delta: IndexDelta = decode(&record.body)?;
            for build in &delta.builds {
                indexes
                    .install_replica(
                        &build.table,
                        &build.spec,
                        build.built_from_version,
                        build.generation,
                    )
                    .map_err(|e| FsError::Storage(format!("replica index build: {e}")))?;
            }
            Ok(())
        }
        ComponentKind::Online => {
            let delta: OnlineDelta = decode(&record.body)?;
            apply_online(online, &delta);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_table() -> TableConfig {
        TableConfig::new(Schema::of(&[("x", ValueType::Int)]))
    }

    #[test]
    fn offline_diff_ships_appends_for_grown_tables_and_reprs_for_new_ones() {
        let mut base = OfflineStore::new();
        base.create_table("t", int_table()).unwrap();
        base.append("t", &[Value::Int(1)]).unwrap();

        let mut new = base.clone();
        new.append("t", &[Value::Int(2)]).unwrap();
        new.create_table("u", int_table()).unwrap();

        let delta = diff_offline(&base, &new).unwrap();
        assert!(delta.drops.is_empty());
        assert_eq!(delta.appends.len(), 1);
        assert_eq!(delta.appends[0].start_row, 1);
        assert_eq!(delta.appends[0].rows, vec![vec![Value::Int(2)]]);
        assert_eq!(delta.replaces.len(), 1);
        assert_eq!(delta.replaces[0].name, "u");

        // Applying the delta to a copy of base reproduces new.
        let mut replica = base.clone();
        apply_offline(&mut replica, &delta).unwrap();
        assert_eq!(replica.num_rows("t").unwrap(), 2);
        assert!(replica.has_table("u"));

        // Re-applying (at-least-once delivery) changes nothing.
        apply_offline(&mut replica, &delta).unwrap();
        assert_eq!(replica.num_rows("t").unwrap(), 2);
    }

    #[test]
    fn offline_apply_rejects_an_impossible_append() {
        let mut store = OfflineStore::new();
        store.create_table("t", int_table()).unwrap();
        let delta = OfflineDelta {
            appends: vec![TableAppend {
                table: "t".into(),
                start_row: 5,
                rows: vec![vec![Value::Int(9)]],
            }],
            ..OfflineDelta::default()
        };
        assert!(apply_offline(&mut store, &delta).is_err());
    }

    #[test]
    fn offline_drop_round_trips() {
        let mut base = OfflineStore::new();
        base.create_table("gone", int_table()).unwrap();
        let new = OfflineStore::new();
        let delta = diff_offline(&base, &new).unwrap();
        assert_eq!(delta.drops, vec!["gone".to_string()]);
        apply_offline(&mut base, &delta).unwrap();
        assert!(!base.has_table("gone"));
    }

    #[test]
    fn embedding_versions_round_trip_through_reprs() {
        let mut table = EmbeddingTable::new(2).unwrap();
        table.insert("b", vec![3.0, 4.0]).unwrap();
        table.insert("a", vec![1.0, 2.0]).unwrap();
        let mut store = EmbeddingStore::new();
        store
            .publish(
                "emb",
                table,
                EmbeddingProvenance::default(),
                Timestamp::EPOCH,
            )
            .unwrap();

        let delta = diff_embeddings(&EmbeddingStore::new(), &store);
        assert_eq!(delta.versions.len(), 1);
        assert_eq!(delta.versions[0].keys, vec!["a", "b"]);

        let mut replica = EmbeddingStore::new();
        apply_embeddings(&mut replica, &delta).unwrap();
        assert_eq!(
            replica.resolve("emb").unwrap().table.get("b"),
            Some(&[3.0, 4.0][..])
        );

        // Unchanged stores diff to nothing (Arc-shared versions).
        let same = store.clone();
        assert!(diff_embeddings(&store, &same).versions.is_empty());
    }

    #[test]
    fn bodies_survive_json_round_trips() {
        let body = OnlineDelta {
            group: "user".into(),
            entity: "u1".into(),
            features: vec![("score".into(), Value::Float(0.5), Timestamp::millis(7))],
        };
        let json = encode(&body).unwrap();
        assert_eq!(decode::<OnlineDelta>(&json).unwrap(), body);

        let build = IndexBuild {
            table: "emb".into(),
            spec: IndexSpec::Flat,
            built_from_version: 3,
            generation: 11,
        };
        let json = encode(&IndexDelta {
            builds: vec![build.clone()],
        })
        .unwrap();
        assert_eq!(decode::<IndexDelta>(&json).unwrap().builds, vec![build]);
    }
}
