//! The `"FSEB"` embedding-blob codec — the at-rest form of one embedding
//! version, shared by checkpoints ([`crate::checkpoint`]) and the tiered
//! pager (`fstore-tier`), so the format lives in exactly one place (next
//! to [`crate::codec::crc_block`], which frames it).
//!
//! Layout: `"FSEB" | crc u32 | header_len u32 | header JSON |
//! keys.len()*dim raw little-endian f32s`. The CRC covers everything
//! after itself. The tier crate's `"FSEG"` segment format reuses
//! [`BlobHeader`] for its identity half and adds block geometry on top.

use crate::codec::VersionRepr;
use fstore_common::{FsError, Result, Timestamp};
use fstore_embed::EmbeddingProvenance;
use fstore_serve::codec::crc_block;
use serde::{Deserialize, Serialize};

/// File magic for embedding blobs.
pub const BLOB_MAGIC: &[u8; 4] = b"FSEB";

/// The metadata half of an embedding version: everything but the vectors,
/// which follow the JSON header as raw little-endian `f32`s in key order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlobHeader {
    pub name: String,
    pub version: u32,
    pub created_at: Timestamp,
    pub provenance: EmbeddingProvenance,
    pub consumers: Vec<String>,
    pub dim: usize,
    pub keys: Vec<String>,
}

impl BlobHeader {
    /// The metadata of `v` (vectors excluded).
    pub fn of(v: &VersionRepr) -> BlobHeader {
        BlobHeader {
            name: v.name.clone(),
            version: v.version,
            created_at: v.created_at,
            provenance: v.provenance.clone(),
            consumers: v.consumers.clone(),
            dim: v.dim,
            keys: v.keys.clone(),
        }
    }
}

/// Serialize one embedding version as a blob.
pub fn encode_blob(v: &VersionRepr) -> Result<Vec<u8>> {
    let header = serde_json::to_string(&BlobHeader::of(v))
        .map_err(|e| FsError::Serde(e.to_string()))?
        .into_bytes();
    let mut body = Vec::with_capacity(8 + header.len() + v.vectors.len() * v.dim * 4);
    body.extend_from_slice(&(header.len() as u32).to_le_bytes());
    body.extend_from_slice(&header);
    for vector in &v.vectors {
        if vector.len() != v.dim {
            return Err(FsError::Serde(format!(
                "embedding `{}@v{}` has a {}-dim vector in a {}-dim table",
                v.name,
                v.version,
                vector.len(),
                v.dim
            )));
        }
        for x in vector {
            body.extend_from_slice(&x.to_le_bytes());
        }
    }
    Ok(crc_block::encode(BLOB_MAGIC, &body))
}

/// Decode a blob back into a [`VersionRepr`], verifying magic, CRC, and
/// the vector-byte count against the header.
pub fn decode_blob(bytes: &[u8]) -> Result<VersionRepr> {
    let body = crc_block::decode(BLOB_MAGIC, bytes)
        .map_err(|e| FsError::Corruption(format!("embedding blob: {e}")))?;
    if body.len() < 4 {
        return Err(FsError::Corruption(
            "truncated embedding blob header".into(),
        ));
    }
    let header_len = u32::from_le_bytes(body[0..4].try_into().unwrap()) as usize;
    if body.len() < 4 + header_len {
        return Err(FsError::Corruption(
            "truncated embedding blob header".into(),
        ));
    }
    let header: BlobHeader = serde_json::from_slice(&body[4..4 + header_len])
        .map_err(|e| FsError::Corruption(format!("unparseable embedding blob header: {e}")))?;
    let vec_bytes = &body[4 + header_len..];
    if vec_bytes.len() != header.keys.len() * header.dim * 4 {
        return Err(FsError::Corruption(format!(
            "embedding blob `{}@v{}` has {} vector bytes, expected {}",
            header.name,
            header.version,
            vec_bytes.len(),
            header.keys.len() * header.dim * 4
        )));
    }
    let vectors = vec_bytes
        .chunks_exact(header.dim * 4)
        .map(|row| {
            row.chunks_exact(4)
                .map(|b| f32::from_le_bytes(b.try_into().unwrap()))
                .collect()
        })
        .collect();
    Ok(VersionRepr {
        name: header.name,
        version: header.version,
        created_at: header.created_at,
        provenance: header.provenance,
        dim: header.dim,
        keys: header.keys,
        vectors,
        consumers: header.consumers,
    })
}
