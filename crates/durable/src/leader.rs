//! The durable leader: a serving stack whose every publication is
//! write-ahead logged, periodically checkpointed, and recoverable after a
//! crash into the last *published* epoch.
//!
//! [`DurableLeader::open`] is both cold start and crash recovery — the two
//! are deliberately the same code path:
//!
//! 1. load the checkpoint the manifest names and restore every component
//!    at its recorded epoch (offline → embeddings → online → indexes, the
//!    same order a replication follower bootstraps in);
//! 2. replay the WAL's committed deltas past the checkpoint through the
//!    same idempotent apply functions follower sync uses;
//! 3. re-checkpoint at the recovered sequence and rotate the WAL, so the
//!    next restart replays nothing that this one already folded in;
//! 4. hook every component's publish path ([`add_publish_hook`], so a
//!    replication leader can hook the same cells independently) to log
//!    future publications.
//!
//! The WAL taps the identical publish path the replication `PubLog` taps:
//! a publication is diffed against the previous snapshot and appended as a
//! delta + epoch-tagged commit marker. Durability and replication are the
//! same stream, written to disk instead of shipped to followers.
//!
//! [`add_publish_hook`]: fstore_storage::OfflineDb::add_publish_hook

use crate::checkpoint::{CheckpointData, CheckpointStore};
use crate::codec::{self, OnlineDelta};
use crate::wal::{FsyncPolicy, WalRecord, WalWriter};
use fstore_common::{ComponentKind, DeltaRecord, EntityKey, ReadEpoch, Result, Timestamp, Value};
use fstore_core::FeatureServer;
use fstore_embed::{EmbeddingDb, EmbeddingStore};
use fstore_serve::{Clock, IndexCatalog, IndexMap, ServeEngine, ServingMetrics};
use fstore_storage::{OfflineDb, OfflineStore, OnlineStore};
use parking_lot::Mutex;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Durability configuration.
#[derive(Debug, Clone, Copy)]
pub struct DurableConfig {
    /// When WAL commit markers fsync. Default: [`FsyncPolicy::Always`].
    pub fsync: FsyncPolicy,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig {
            fsync: FsyncPolicy::Always,
        }
    }
}

/// What [`DurableLeader::open`] recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// No manifest existed — a fresh directory, nothing to recover.
    pub cold_start: bool,
    /// Sequence number of the checkpoint that was loaded (0 if cold).
    pub checkpoint_epoch: u64,
    /// The last published sequence number the leader restarted into.
    pub recovered_epoch: u64,
    /// Committed WAL deltas replayed on top of the checkpoint.
    pub replayed: usize,
    /// Logged-but-uncommitted deltas dropped (never acknowledged).
    pub dropped_uncommitted: usize,
    /// Bytes truncated off the WAL tail (uncommitted, torn, or corrupt).
    pub truncated_bytes: u64,
    /// Wall-clock cost of the whole open (load + replay + re-checkpoint).
    pub recovery_ms: u64,
}

struct WalState {
    writer: WalWriter,
}

/// A leader whose components are backed by a WAL and checkpoints on disk.
pub struct DurableLeader {
    store: CheckpointStore,
    config: DurableConfig,
    offline: OfflineDb,
    online: Arc<OnlineStore>,
    embeddings: EmbeddingDb,
    indexes: Arc<IndexCatalog>,
    wal: Arc<Mutex<WalState>>,
    /// The last sequence number assigned to a publication — the leader's
    /// "published epoch" for durability purposes.
    seq: Arc<AtomicU64>,
    metrics: Arc<Mutex<Option<Arc<ServingMetrics>>>>,
    last_recovery: RecoveryReport,
}

/// Append one publication (delta + commit marker) to the WAL and return
/// the sequence it committed at. Sequence assignment happens under the
/// WAL lock, so on-disk order always matches sequence order even when
/// cells publish concurrently.
///
/// An `Err` means the commit marker is not known to be on disk — the
/// write path that acknowledges clients ([`DurableLeader::log_online`])
/// must refuse to ack on it. Publish *hooks* have nowhere to surface the
/// error and drop it; the state they described becomes durable again at
/// the next checkpoint. (A production system would trip a fail-stop fuse
/// there.)
fn log_publication(
    wal: &Arc<Mutex<WalState>>,
    seq_counter: &Arc<AtomicU64>,
    metrics: &Arc<Mutex<Option<Arc<ServingMetrics>>>>,
    component: ComponentKind,
    component_epoch: u64,
    body: String,
) -> Result<u64> {
    let mut wal = wal.lock();
    let seq = seq_counter.fetch_add(1, Ordering::AcqRel) + 1;
    let delta = WalRecord::Delta(DeltaRecord {
        seq,
        component,
        component_epoch,
        body,
    });
    let results = [
        wal.writer.append(&delta),
        wal.writer.append(&WalRecord::Commit { seq }),
    ];
    let mut failure = None;
    if let Some(m) = metrics.lock().as_ref() {
        for info in results.iter().flatten() {
            m.record_wal_append(info.bytes, info.fsynced);
        }
    }
    for result in results {
        if let Err(e) = result {
            failure.get_or_insert(e);
        }
    }
    match failure {
        Some(e) => Err(e),
        None => Ok(seq),
    }
}

impl DurableLeader {
    /// Open (or create) the durability directory at `dir`, recovering into
    /// the last published epoch. See the module docs for the protocol.
    pub fn open(
        dir: impl Into<PathBuf>,
        config: DurableConfig,
    ) -> Result<(Arc<DurableLeader>, RecoveryReport)> {
        let started = Instant::now();
        let store = CheckpointStore::open(dir)?;

        let embeddings = EmbeddingDb::new();
        let offline = OfflineDb::new();
        let online = Arc::new(OnlineStore::default());
        let indexes = Arc::new(IndexCatalog::new(embeddings.clone()));

        // 1. Checkpoint restore, component order matching follower bootstrap.
        let checkpoint = store.load()?;
        let cold_start = checkpoint.is_none();
        let mut checkpoint_epoch = 0u64;
        if let Some(data) = checkpoint {
            checkpoint_epoch = data.repl_epoch;
            offline.restore(data.offline, ReadEpoch(data.offline_epoch));
            let mut emb = EmbeddingStore::new();
            for repr in &data.embeddings {
                emb.install_version(codec::version_from_repr(repr)?)?;
            }
            embeddings.restore(emb, ReadEpoch(data.embeddings_epoch));
            for row in &data.online {
                online.put(
                    &row.group,
                    &EntityKey::new(row.entity.clone()),
                    &row.feature,
                    row.value.clone(),
                    row.written_at,
                );
            }
            for build in &data.indexes {
                indexes
                    .install_replica(
                        &build.table,
                        &build.spec,
                        build.built_from_version,
                        build.generation,
                    )
                    .map_err(|e| {
                        fstore_common::FsError::Storage(format!("recover index build: {e}"))
                    })?;
            }
        }

        // 2. WAL replay past the checkpoint.
        let replay = crate::wal::recover(&store.wal_path(checkpoint_epoch))?;
        let mut replayed = 0usize;
        for record in &replay.committed {
            if record.seq <= checkpoint_epoch {
                continue; // re-delivered below the checkpoint; already folded in
            }
            codec::apply_record(&offline, &embeddings, &online, &indexes, record)?;
            replayed += 1;
        }
        let recovered_epoch = checkpoint_epoch.max(replay.last_seq);

        // 3. Re-checkpoint at the recovered sequence and rotate the WAL, so
        // the *next* restart replays nothing this one already folded in.
        let data = capture_checkpoint(recovered_epoch, &offline, &embeddings, &online, &indexes)?;
        store.write(&data)?;
        let rotate = recovered_epoch != checkpoint_epoch || cold_start;
        let writer = WalWriter::open(store.wal_path(recovered_epoch), config.fsync, rotate)?;
        store.gc(recovered_epoch);

        let report = RecoveryReport {
            cold_start,
            checkpoint_epoch,
            recovered_epoch,
            replayed,
            dropped_uncommitted: replay.dropped_uncommitted,
            truncated_bytes: replay.truncated_bytes,
            recovery_ms: started.elapsed().as_millis() as u64,
        };

        let leader = Arc::new(DurableLeader {
            store,
            config,
            offline,
            online,
            embeddings,
            indexes,
            wal: Arc::new(Mutex::new(WalState { writer })),
            seq: Arc::new(AtomicU64::new(recovered_epoch)),
            metrics: Arc::new(Mutex::new(None)),
            last_recovery: report,
        });

        // 4. Hook the publish paths — from here on, every publication is
        // logged before anyone can observe a state that contains it only
        // in memory.
        leader.install_hooks();
        Ok((leader, report))
    }

    fn install_hooks(&self) {
        {
            let wal = Arc::clone(&self.wal);
            let seq = Arc::clone(&self.seq);
            let metrics = Arc::clone(&self.metrics);
            let base: Mutex<Arc<OfflineStore>> = Mutex::new(self.offline.snapshot());
            self.offline.add_publish_hook(move |v| {
                let mut base = base.lock();
                let body = codec::diff_offline(&base, &v.value)
                    .and_then(|delta| codec::encode(&delta))
                    .unwrap_or_else(|_| String::from("{}"));
                let _ = log_publication(
                    &wal,
                    &seq,
                    &metrics,
                    ComponentKind::Offline,
                    v.epoch.as_u64(),
                    body,
                );
                *base = Arc::clone(&v.value);
            });
        }
        {
            let wal = Arc::clone(&self.wal);
            let seq = Arc::clone(&self.seq);
            let metrics = Arc::clone(&self.metrics);
            let base: Mutex<Arc<EmbeddingStore>> = Mutex::new(self.embeddings.snapshot());
            self.embeddings.add_publish_hook(move |v| {
                let mut base = base.lock();
                let delta = codec::diff_embeddings(&base, &v.value);
                let body = codec::encode(&delta).unwrap_or_else(|_| String::from("{}"));
                let _ = log_publication(
                    &wal,
                    &seq,
                    &metrics,
                    ComponentKind::Embeddings,
                    v.epoch.as_u64(),
                    body,
                );
                *base = Arc::clone(&v.value);
            });
        }
        {
            let wal = Arc::clone(&self.wal);
            let seq = Arc::clone(&self.seq);
            let metrics = Arc::clone(&self.metrics);
            let base: Mutex<IndexMap> = Mutex::new(self.indexes.current().value.as_ref().clone());
            self.indexes.add_publish_hook(move |v| {
                let mut base = base.lock();
                let delta = codec::diff_indexes(&base, &v.value);
                let body = codec::encode(&delta).unwrap_or_else(|_| String::from("{}"));
                let _ = log_publication(
                    &wal,
                    &seq,
                    &metrics,
                    ComponentKind::Index,
                    v.epoch.as_u64(),
                    body,
                );
                *base = v.value.as_ref().clone();
            });
        }
    }

    /// Write one entity's features to the online store *and* the WAL,
    /// returning the WAL sequence the write committed at. The online
    /// store has no snapshot cell to hook, so durable online writes must
    /// go through here (mirroring the replication leader's rule). An
    /// `Err` means the commit marker is not known durable — callers that
    /// acknowledge clients must surface it instead of acking.
    pub fn put_online(
        &self,
        group: &str,
        entity: &EntityKey,
        values: &[(&str, Value)],
        now: Timestamp,
    ) -> Result<u64> {
        self.online.put_row(group, entity, values, now);
        self.log_online(&OnlineDelta {
            group: group.to_string(),
            entity: entity.as_str().to_string(),
            features: values
                .iter()
                .map(|(f, v)| ((*f).to_string(), v.clone(), now))
                .collect(),
        })
    }

    /// WAL-log an online delta that was already applied to the store —
    /// the hook a replication leader calls so its `put_online` is
    /// durable. Returns the WAL sequence of the commit marker; `Err`
    /// means the delta is not known to be on disk and the write must not
    /// be acknowledged.
    pub fn log_online(&self, delta: &OnlineDelta) -> Result<u64> {
        let body = codec::encode(delta).unwrap_or_else(|_| String::from("{}"));
        log_publication(
            &self.wal,
            &self.seq,
            &self.metrics,
            ComponentKind::Online,
            0,
            body,
        )
    }

    /// Take a checkpoint at the current published sequence and rotate the
    /// WAL. Capturing under the WAL lock pins the sequence: a publication
    /// that installed its cell but has not logged yet will land *after*
    /// this checkpoint's sequence and be replayed idempotently on restart.
    pub fn checkpoint(&self) -> Result<()> {
        let mut wal = self.wal.lock();
        let seq = self.seq.load(Ordering::Acquire);
        let data = capture_checkpoint(
            seq,
            &self.offline,
            &self.embeddings,
            &self.online,
            &self.indexes,
        )?;
        self.store.write(&data)?;
        wal.writer = WalWriter::open(self.store.wal_path(seq), self.config.fsync, true)?;
        self.store.gc(seq);
        drop(wal);
        if let Some(m) = self.metrics.lock().as_ref() {
            m.record_checkpoint();
        }
        Ok(())
    }

    /// Export durability counters (and the last recovery) through serving
    /// metrics.
    pub fn attach_metrics(&self, metrics: Arc<ServingMetrics>) {
        metrics.record_recovery(
            self.last_recovery.recovery_ms,
            self.last_recovery.recovered_epoch,
        );
        *self.metrics.lock() = Some(metrics);
    }

    /// The last sequence number assigned to a publication.
    pub fn published_seq(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    /// What the `open` that produced this leader recovered.
    pub fn last_recovery(&self) -> RecoveryReport {
        self.last_recovery
    }

    pub fn offline(&self) -> &OfflineDb {
        &self.offline
    }

    pub fn online(&self) -> &Arc<OnlineStore> {
        &self.online
    }

    pub fn embeddings(&self) -> &EmbeddingDb {
        &self.embeddings
    }

    pub fn indexes(&self) -> &Arc<IndexCatalog> {
        &self.indexes
    }

    /// A ready-to-start [`ServeEngine`] over the durable components,
    /// stamping feature vectors with the offline epoch like the
    /// replication leader and follower engines do — so answers before and
    /// after a crash-restart are byte-comparable.
    pub fn engine(&self, clock: Clock) -> ServeEngine {
        let offline = self.offline.clone();
        ServeEngine::new(
            FeatureServer::new(Arc::clone(&self.online))
                .with_epoch_source(Arc::new(move || offline.epoch())),
            clock,
        )
        .with_embeddings(self.embeddings.clone())
        .with_index_catalog(Arc::clone(&self.indexes))
    }
}

/// Capture the four components as checkpoint data at `repl_epoch`.
fn capture_checkpoint(
    repl_epoch: u64,
    offline: &OfflineDb,
    embeddings: &EmbeddingDb,
    online: &OnlineStore,
    indexes: &IndexCatalog,
) -> Result<CheckpointData> {
    let off = offline.read();
    let emb = embeddings.read();
    let idx = indexes.current();
    Ok(CheckpointData {
        repl_epoch,
        offline: off.value.as_ref().clone(),
        offline_epoch: off.epoch.as_u64(),
        embeddings: codec::diff_embeddings(&EmbeddingStore::new(), &emb.value).versions,
        embeddings_epoch: emb.epoch.as_u64(),
        online: codec::export_online(online),
        indexes: codec::diff_indexes(&IndexMap::default(), &idx.value).builds,
        index_epoch: idx.epoch.as_u64(),
    })
}
