//! The write-ahead log: length-prefixed, CRC-checksummed records with
//! epoch-tagged commit markers.
//!
//! Every publication the durable leader logs is two records: a
//! [`WalRecord::Delta`] carrying the serialized change, then a
//! [`WalRecord::Commit`] naming the sequence number the publication was
//! assigned. The commit marker is the durability point — the fsync policy
//! is applied there, and [`recover`] only surfaces deltas whose commit made
//! it to disk. Everything after the last complete commit (valid-but-
//! uncommitted deltas, torn record fragments, CRC failures) is *truncated
//! off the file*, not just skipped: a skipped-but-kept delta would be
//! resurrected by the next writer's commit marker.
//!
//! Record envelope (little-endian):
//!
//! ```text
//! len u32 | crc32(len_bytes ++ body) u32 | body
//! body := kind u8 (1 = delta, 2 = commit) ++ payload
//! ```
//!
//! Delta payloads are the JSON of a [`DeltaRecord`]; commit payloads are
//! the 8-byte sequence number.

use fstore_common::{crc32_update, DeltaRecord, FsError, Result};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

const KIND_DELTA: u8 = 1;
const KIND_COMMIT: u8 = 2;

/// When the WAL calls `fsync` — always the trade between write latency and
/// the number of commits a crash can lose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync at every commit marker: a crash loses nothing acknowledged.
    Always,
    /// fsync every N commit markers: a crash loses at most N-1 commits.
    EveryN(u32),
    /// Never fsync (the OS flushes eventually): fastest, weakest.
    Never,
}

/// One WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A serialized publication, identical in shape to what the replication
    /// log ships — durability and replication speak the same deltas.
    Delta(DeltaRecord),
    /// The record above (and any earlier uncommitted deltas) are now
    /// durable state as of sequence number `seq`.
    Commit { seq: u64 },
}

/// Encode one record into its on-disk envelope.
pub fn encode_record(record: &WalRecord) -> Vec<u8> {
    let mut body = Vec::new();
    match record {
        WalRecord::Delta(d) => {
            body.push(KIND_DELTA);
            body.extend_from_slice(
                serde_json::to_string(d)
                    .expect("delta records serialize")
                    .as_bytes(),
            );
        }
        WalRecord::Commit { seq } => {
            body.push(KIND_COMMIT);
            body.extend_from_slice(&seq.to_le_bytes());
        }
    }
    let len = (body.len() as u32).to_le_bytes();
    let crc = crc32_update(crc32_update(0, &len), &body);
    let mut out = Vec::with_capacity(body.len() + 8);
    out.extend_from_slice(&len);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Decode the record at the front of `buf`.
///
/// `Ok(Some((record, consumed)))` on success, `Ok(None)` when `buf` holds
/// only a prefix of a record (a torn tail — not an error until someone
/// decides the file has no more bytes coming), `Err(Corruption)` when the
/// bytes are structurally complete but wrong (CRC mismatch, unknown kind,
/// unparseable payload).
pub fn decode_record(buf: &[u8]) -> Result<Option<(WalRecord, usize)>> {
    if buf.len() < 8 {
        return Ok(None);
    }
    let len_bytes = &buf[0..4];
    let len = u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
    let want_crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    if len == 0 {
        return Err(FsError::Corruption("zero-length WAL record".into()));
    }
    if buf.len() < 8 + len {
        return Ok(None);
    }
    let body = &buf[8..8 + len];
    let got_crc = crc32_update(crc32_update(0, len_bytes), body);
    if got_crc != want_crc {
        return Err(FsError::Corruption(format!(
            "WAL record checksum mismatch: stored {want_crc:#010x}, computed {got_crc:#010x}"
        )));
    }
    let record = match body[0] {
        KIND_DELTA => {
            let d: DeltaRecord = serde_json::from_slice(&body[1..])
                .map_err(|e| FsError::Corruption(format!("unparseable WAL delta: {e}")))?;
            WalRecord::Delta(d)
        }
        KIND_COMMIT => {
            if body.len() != 9 {
                return Err(FsError::Corruption(format!(
                    "WAL commit marker has {} payload bytes, expected 8",
                    body.len() - 1
                )));
            }
            WalRecord::Commit {
                seq: u64::from_le_bytes(body[1..9].try_into().unwrap()),
            }
        }
        k => return Err(FsError::Corruption(format!("unknown WAL record kind {k}"))),
    };
    Ok(Some((record, 8 + len)))
}

/// What one [`WalWriter::append`] did, so callers can feed metrics.
#[derive(Debug, Clone, Copy)]
pub struct AppendInfo {
    pub bytes: u64,
    pub fsynced: bool,
}

/// An append-only WAL file handle.
pub struct WalWriter {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    commits_since_sync: u32,
    appends: u64,
    fsyncs: u64,
    bytes: u64,
}

impl WalWriter {
    /// Open `path` for appending (creating it if needed). `truncate` starts
    /// the log over — used when rotating at a checkpoint.
    pub fn open(
        path: impl Into<PathBuf>,
        policy: FsyncPolicy,
        truncate: bool,
    ) -> Result<WalWriter> {
        let path = path.into();
        let mut opts = OpenOptions::new();
        opts.create(true);
        if truncate {
            opts.write(true).truncate(true);
        } else {
            opts.append(true);
        }
        let file = opts
            .open(&path)
            .map_err(|e| FsError::Storage(format!("open WAL {}: {e}", path.display())))?;
        Ok(WalWriter {
            file,
            path,
            policy,
            commits_since_sync: 0,
            appends: 0,
            fsyncs: 0,
            bytes: 0,
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record; commit markers trigger the fsync policy.
    pub fn append(&mut self, record: &WalRecord) -> Result<AppendInfo> {
        let frame = encode_record(record);
        self.file
            .write_all(&frame)
            .map_err(|e| FsError::Storage(format!("append to WAL {}: {e}", self.path.display())))?;
        self.appends += 1;
        self.bytes += frame.len() as u64;
        let mut fsynced = false;
        if matches!(record, WalRecord::Commit { .. }) {
            let due = match self.policy {
                FsyncPolicy::Always => true,
                FsyncPolicy::EveryN(n) => {
                    self.commits_since_sync += 1;
                    self.commits_since_sync >= n.max(1)
                }
                FsyncPolicy::Never => false,
            };
            if due {
                self.sync()?;
                fsynced = true;
            }
        }
        Ok(AppendInfo {
            bytes: frame.len() as u64,
            fsynced,
        })
    }

    /// Force an fsync regardless of policy.
    pub fn sync(&mut self) -> Result<()> {
        self.file
            .sync_data()
            .map_err(|e| FsError::Storage(format!("fsync WAL {}: {e}", self.path.display())))?;
        self.fsyncs += 1;
        self.commits_since_sync = 0;
        Ok(())
    }

    pub fn appends(&self) -> u64 {
        self.appends
    }

    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// What [`recover`] found in (and did to) a WAL file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WalReplay {
    /// Every delta covered by a complete commit marker, in log order.
    pub committed: Vec<DeltaRecord>,
    /// The last committed sequence number (0 if none).
    pub last_seq: u64,
    /// Valid-looking deltas after the last commit — logged but never
    /// committed; they are dropped (and truncated) with the torn tail.
    pub dropped_uncommitted: usize,
    /// Bytes cut off the end of the file (uncommitted + torn + corrupt).
    pub truncated_bytes: u64,
}

/// Replay a WAL file up to its last complete commit, truncating everything
/// after it. A missing file is an empty (not corrupt) log.
pub fn recover(path: &Path) -> Result<WalReplay> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalReplay::default()),
        Err(e) => {
            return Err(FsError::Storage(format!(
                "read WAL {}: {e}",
                path.display()
            )))
        }
    };

    let mut replay = WalReplay::default();
    let mut pending: Vec<DeltaRecord> = Vec::new();
    let mut pos = 0usize;
    // End of the last complete commit unit — the only durable prefix.
    let mut committed_end = 0usize;
    loop {
        match decode_record(&bytes[pos..]) {
            Ok(Some((record, consumed))) => {
                pos += consumed;
                match record {
                    WalRecord::Delta(d) => pending.push(d),
                    WalRecord::Commit { seq } => {
                        replay.committed.append(&mut pending);
                        replay.last_seq = seq;
                        committed_end = pos;
                    }
                }
            }
            // A torn tail or a corrupt record both end the durable prefix.
            Ok(None) | Err(FsError::Corruption(_)) => break,
            Err(e) => return Err(e),
        }
    }
    replay.dropped_uncommitted = pending.len();
    replay.truncated_bytes = (bytes.len() - committed_end) as u64;
    if replay.truncated_bytes > 0 {
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| FsError::Storage(format!("truncate WAL {}: {e}", path.display())))?;
        file.set_len(committed_end as u64)
            .and_then(|()| file.sync_all())
            .map_err(|e| FsError::Storage(format!("truncate WAL {}: {e}", path.display())))?;
    }
    Ok(replay)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fstore_common::ComponentKind;

    fn delta(seq: u64, body: &str) -> DeltaRecord {
        DeltaRecord {
            seq,
            component: ComponentKind::Offline,
            component_epoch: seq,
            body: body.to_string(),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("fstore_wal_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn records_round_trip() {
        for record in [
            WalRecord::Delta(delta(3, "{\"appends\":[]}")),
            WalRecord::Commit { seq: 3 },
            WalRecord::Delta(delta(u64::MAX, "")),
        ] {
            let bytes = encode_record(&record);
            let (decoded, consumed) = decode_record(&bytes).unwrap().unwrap();
            assert_eq!(decoded, record);
            assert_eq!(consumed, bytes.len());
        }
    }

    #[test]
    fn single_bit_flip_is_corruption() {
        let bytes = encode_record(&WalRecord::Commit { seq: 9 });
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            // Depending on which byte flips, the record may look torn
            // (length grew) or corrupt (CRC mismatch) — never decode clean.
            match decode_record(&bad) {
                Ok(Some((rec, _))) => panic!("byte {i} flipped but decoded {rec:?}"),
                Ok(None) | Err(FsError::Corruption(_)) => {}
                Err(e) => panic!("unexpected error class: {e}"),
            }
        }
    }

    #[test]
    fn writer_appends_and_recovery_replays_committed_prefix() {
        let path = tmp("basic.log");
        std::fs::remove_file(&path).ok();
        let mut w = WalWriter::open(&path, FsyncPolicy::Always, true).unwrap();
        for seq in 1..=3u64 {
            w.append(&WalRecord::Delta(delta(seq, "d"))).unwrap();
            w.append(&WalRecord::Commit { seq }).unwrap();
        }
        // A logged-but-uncommitted delta must not survive recovery.
        w.append(&WalRecord::Delta(delta(4, "lost"))).unwrap();
        assert_eq!(w.appends(), 7);
        assert_eq!(w.fsyncs(), 3);
        drop(w);

        let replay = recover(&path).unwrap();
        assert_eq!(replay.last_seq, 3);
        assert_eq!(replay.committed.len(), 3);
        assert_eq!(replay.dropped_uncommitted, 1);
        assert!(replay.truncated_bytes > 0);

        // The file itself was truncated: re-recovery is clean and a new
        // writer appends after the committed prefix.
        let again = recover(&path).unwrap();
        assert_eq!(again.last_seq, 3);
        assert_eq!(again.truncated_bytes, 0);
        let mut w = WalWriter::open(&path, FsyncPolicy::Always, false).unwrap();
        w.append(&WalRecord::Delta(delta(4, "kept"))).unwrap();
        w.append(&WalRecord::Commit { seq: 4 }).unwrap();
        drop(w);
        let after = recover(&path).unwrap();
        assert_eq!(after.last_seq, 4);
        assert_eq!(after.committed.len(), 4);
        assert_eq!(after.committed[3].body, "kept");
    }

    #[test]
    fn fsync_policies_gate_commit_syncs() {
        let path = tmp("policy.log");
        let mut w = WalWriter::open(&path, FsyncPolicy::EveryN(3), true).unwrap();
        for seq in 1..=7u64 {
            let info = w.append(&WalRecord::Commit { seq }).unwrap();
            assert_eq!(info.fsynced, seq % 3 == 0);
        }
        assert_eq!(w.fsyncs(), 2);

        let mut w = WalWriter::open(&path, FsyncPolicy::Never, true).unwrap();
        assert!(!w.append(&WalRecord::Commit { seq: 1 }).unwrap().fsynced);
        assert_eq!(w.fsyncs(), 0);
    }

    #[test]
    fn torn_write_truncated_at_every_offset_of_the_final_record() {
        let path = tmp("torn.log");
        // Two committed units, then a final delta+commit pair that we tear
        // at every possible byte boundary.
        let mut prefix = Vec::new();
        for seq in 1..=2u64 {
            prefix.extend_from_slice(&encode_record(&WalRecord::Delta(delta(seq, "keep"))));
            prefix.extend_from_slice(&encode_record(&WalRecord::Commit { seq }));
        }
        let mut tail = Vec::new();
        tail.extend_from_slice(&encode_record(&WalRecord::Delta(delta(3, "torn"))));
        tail.extend_from_slice(&encode_record(&WalRecord::Commit { seq: 3 }));
        let commit3_at = tail.len() - encode_record(&WalRecord::Commit { seq: 3 }).len();

        for cut in 0..=tail.len() {
            std::fs::write(&path, [&prefix[..], &tail[..cut]].concat()).unwrap();
            let replay = recover(&path).unwrap();
            if cut == tail.len() {
                assert_eq!(replay.last_seq, 3, "cut {cut}");
                assert_eq!(replay.committed.len(), 3);
                assert_eq!(replay.truncated_bytes, 0);
            } else {
                assert_eq!(replay.last_seq, 2, "cut {cut}");
                assert_eq!(replay.committed.len(), 2);
                assert_eq!(
                    replay.dropped_uncommitted,
                    usize::from(cut >= commit3_at),
                    "cut {cut}"
                );
                assert_eq!(replay.truncated_bytes, cut as u64, "cut {cut}");
                // The durable prefix survives byte-for-byte.
                assert_eq!(std::fs::read(&path).unwrap(), prefix, "cut {cut}");
            }
        }
    }

    #[test]
    fn corrupt_middle_record_ends_the_durable_prefix() {
        let path = tmp("corrupt.log");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode_record(&WalRecord::Delta(delta(1, "good"))));
        bytes.extend_from_slice(&encode_record(&WalRecord::Commit { seq: 1 }));
        let unit1_len = bytes.len();
        bytes.extend_from_slice(&encode_record(&WalRecord::Delta(delta(2, "bad"))));
        bytes.extend_from_slice(&encode_record(&WalRecord::Commit { seq: 2 }));
        bytes[unit1_len + 10] ^= 0xFF; // corrupt unit 2's delta
        std::fs::write(&path, &bytes).unwrap();

        let replay = recover(&path).unwrap();
        assert_eq!(replay.last_seq, 1);
        assert_eq!(replay.committed.len(), 1);
        assert_eq!(std::fs::read(&path).unwrap().len(), unit1_len);
    }

    #[test]
    fn missing_file_is_an_empty_log() {
        let replay = recover(Path::new("/nonexistent/fstore/wal.log")).unwrap();
        assert_eq!(replay, WalReplay::default());
    }
}
