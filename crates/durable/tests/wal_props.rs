//! Property tests for the WAL record format: every record round-trips
//! byte-exactly, strict prefixes of a valid record read as torn (never as
//! a different record, never a panic), and a log of N committed
//! publications cut at an arbitrary byte recovers exactly some prefix of
//! those publications — nothing reordered, nothing invented.

use fstore_common::{ComponentKind, DeltaRecord};
use fstore_durable::wal::{decode_record, encode_record, recover};
use fstore_durable::{FsyncPolicy, WalRecord, WalWriter};
use proptest::prelude::*;
use std::path::PathBuf;

fn arb_component() -> impl Strategy<Value = ComponentKind> {
    prop_oneof![
        Just(ComponentKind::Offline),
        Just(ComponentKind::Embeddings),
        Just(ComponentKind::Index),
        Just(ComponentKind::Online),
    ]
}

fn arb_body() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        Just("{}".to_string()),
        Just("{\"tables\":[],\"appends\":[]}".to_string()),
        Just("unicodé → 🦀 and \"quotes\"".to_string()),
        proptest::collection::vec(any::<u8>(), 0..200)
            .prop_map(|bs| String::from_utf8_lossy(&bs).into_owned()),
    ]
}

fn arb_delta() -> impl Strategy<Value = DeltaRecord> {
    (any::<u64>(), arb_component(), any::<u64>(), arb_body()).prop_map(
        |(seq, component, component_epoch, body)| DeltaRecord {
            seq,
            component,
            component_epoch,
            body,
        },
    )
}

fn arb_record() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        arb_delta().prop_map(WalRecord::Delta),
        any::<u64>().prop_map(|seq| WalRecord::Commit { seq }),
    ]
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fstore_wal_props_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

proptest! {
    /// Encode → decode is the identity, and decode consumes exactly the
    /// encoded length (so records can be streamed back-to-back).
    #[test]
    fn records_round_trip_byte_exactly(record in arb_record()) {
        let bytes = encode_record(&record);
        let (decoded, consumed) = decode_record(&bytes).unwrap().expect("complete record");
        prop_assert_eq!(decoded, record);
        prop_assert_eq!(consumed, bytes.len());
    }

    /// A strict prefix of a record is always "torn" (`Ok(None)`) — it is
    /// never misread as a complete record and never an error, because a
    /// writer cut mid-append must look like a clean tail to recovery.
    #[test]
    fn strict_prefixes_read_as_torn(record in arb_record(), permille in 0u32..1000) {
        let bytes = encode_record(&record);
        let cut = bytes.len() * permille as usize / 1000; // < len since permille < 1000
        prop_assert!(decode_record(&bytes[..cut]).unwrap().is_none());
    }

    /// Two records streamed back-to-back decode in order from one buffer.
    #[test]
    fn concatenated_records_decode_in_order(a in arb_record(), b in arb_record()) {
        let mut buf = encode_record(&a);
        let second = encode_record(&b);
        buf.extend_from_slice(&second);
        let (first, used) = decode_record(&buf).unwrap().expect("first record");
        prop_assert_eq!(first, a);
        let (rest, used2) = decode_record(&buf[used..]).unwrap().expect("second record");
        prop_assert_eq!(rest, b);
        prop_assert_eq!(used + used2, buf.len());
    }

    /// Write N committed publications, cut the file at an arbitrary byte,
    /// and recover: the result is exactly the longest prefix of complete
    /// commit units that fits in the cut — in order, byte-preserved, and
    /// stable under a second recovery.
    #[test]
    fn any_cut_recovers_an_exact_committed_prefix(
        bodies in proptest::collection::vec(arb_body(), 1..6),
        permille in 0u32..1001,
    ) {
        let path = tmp(&format!("cut-{:x}.log", crc_of(&bodies, permille)));
        std::fs::remove_file(&path).ok();

        // Write the full log and remember where each commit unit ends.
        let mut writer = WalWriter::open(&path, FsyncPolicy::Never, true).unwrap();
        let mut unit_ends = Vec::new();
        let mut deltas = Vec::new();
        let mut end = 0usize;
        for (i, body) in bodies.iter().enumerate() {
            let seq = (i + 1) as u64;
            let delta = DeltaRecord {
                seq,
                component: ComponentKind::Online,
                component_epoch: 0,
                body: body.clone(),
            };
            end += writer.append(&WalRecord::Delta(delta.clone())).unwrap().bytes as usize;
            end += writer.append(&WalRecord::Commit { seq }).unwrap().bytes as usize;
            unit_ends.push(end);
            deltas.push(delta);
        }
        writer.sync().unwrap();
        drop(writer);

        let full = std::fs::read(&path).unwrap();
        prop_assert_eq!(full.len(), end);
        let cut = full.len() * permille as usize / 1000;
        std::fs::write(&path, &full[..cut]).unwrap();

        let survivors = unit_ends.iter().filter(|&&e| e <= cut).count();
        let replay = recover(&path).unwrap();
        prop_assert_eq!(replay.committed.len(), survivors);
        prop_assert_eq!(&replay.committed[..], &deltas[..survivors]);
        prop_assert_eq!(replay.last_seq, survivors as u64);
        prop_assert_eq!(
            replay.truncated_bytes,
            (cut - unit_ends.get(survivors.wrapping_sub(1)).copied().unwrap_or(0)) as u64
        );

        // The truncation left exactly the durable prefix on disk, and a
        // second recovery is a clean no-op over it.
        let after = std::fs::read(&path).unwrap();
        let keep = unit_ends.get(survivors.wrapping_sub(1)).copied().unwrap_or(0);
        prop_assert_eq!(&after[..], &full[..keep]);
        let again = recover(&path).unwrap();
        prop_assert_eq!(again.committed.len(), survivors);
        prop_assert_eq!(again.truncated_bytes, 0);

        std::fs::remove_file(&path).ok();
    }
}

/// A stable per-case file name so parallel proptest cases don't collide.
fn crc_of(bodies: &[String], permille: u32) -> u32 {
    let mut buf = Vec::new();
    for b in bodies {
        buf.extend_from_slice(b.as_bytes());
        buf.push(0);
    }
    buf.extend_from_slice(&permille.to_le_bytes());
    fstore_common::crc32(&buf)
}
