//! Crash-recovery end to end: a durable leader serves over a real socket,
//! "crashes" (dropped with a WAL full of unreplayed publications), and a
//! reopened leader answers every endpoint byte-for-byte identically to the
//! pre-crash captures — same payloads, same epochs.

use fstore_common::{EntityKey, Schema, Timestamp, Value, ValueType};
use fstore_durable::{DurableConfig, DurableLeader};
use fstore_embed::{EmbeddingProvenance, EmbeddingTable};
use fstore_serve::{fixed_clock, start, FeatureClient, IndexSpec, Request, Response, ServeConfig};
use fstore_storage::TableConfig;
use std::path::PathBuf;
use std::sync::Arc;

fn now_ts() -> Timestamp {
    Timestamp::millis(1_000_000)
}

fn serve_config() -> ServeConfig {
    ServeConfig::builder()
        .addr("127.0.0.1:0")
        .workers(2)
        .queue_depth(64)
        .max_batch(8)
        .build()
        .unwrap()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fstore_recovery_loopback_{}_{name}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Seed a freshly opened leader with state on all four components.
fn seed(leader: &Arc<DurableLeader>) {
    leader
        .offline()
        .write(|s| {
            s.create_table(
                "events",
                TableConfig::new(Schema::of(&[("n", ValueType::Int)])).with_segment_rows(8),
            )
        })
        .unwrap();
    for batch in 0..5 {
        leader
            .offline()
            .write(|s| {
                for i in 0..10 {
                    s.append("events", &[Value::Int(batch * 10 + i)])?;
                }
                Ok(())
            })
            .unwrap();
    }

    let mut table = EmbeddingTable::new(4).unwrap();
    for i in 0..6 {
        table
            .insert(format!("e{i}"), vec![i as f32, i as f32 * 0.5, 3.0, 1.0])
            .unwrap();
    }
    leader
        .embeddings()
        .publish("emb", table, EmbeddingProvenance::default(), now_ts())
        .unwrap();
    leader.indexes().build("emb", &IndexSpec::Flat).unwrap();

    for u in 0..4 {
        leader
            .put_online(
                "user",
                &EntityKey::new(format!("u{u}")),
                &[
                    ("score", Value::Float(0.25 * u as f64)),
                    ("tier", Value::Str(format!("t{u}"))),
                ],
                now_ts(),
            )
            .unwrap();
    }
}

fn probe_requests() -> Vec<Request> {
    vec![
        Request::GetFeatures {
            group: "user".into(),
            entity: "u1".into(),
            features: vec!["score".into(), "tier".into()],
        },
        Request::GetEmbedding {
            table: "emb".into(),
            key: "e3".into(),
        },
        Request::SearchNearest {
            table: "emb".into(),
            query: vec![2.0, 1.0, 3.0, 1.0],
            k: 3,
            options: Default::default(),
        },
    ]
}

/// Serve the leader on a loopback socket and capture each probe's raw
/// response bytes.
fn capture(leader: &Arc<DurableLeader>) -> Vec<Vec<u8>> {
    let handle = start(leader.engine(fixed_clock(now_ts())), serve_config()).unwrap();
    let mut client = FeatureClient::connect(handle.addr()).unwrap();
    let captures: Vec<Vec<u8>> = probe_requests()
        .iter()
        .map(|request| {
            let response = client.call(request).unwrap();
            assert!(
                !matches!(response, Response::Error { .. }),
                "probe errored: {response:?}"
            );
            response.encode().to_vec()
        })
        .collect();
    drop(client);
    handle.shutdown();
    captures
}

#[test]
fn crash_restart_answers_every_endpoint_byte_identically() {
    let dir = temp_dir("crash");

    let (leader, report) = DurableLeader::open(&dir, DurableConfig::default()).unwrap();
    assert!(report.cold_start);
    seed(&leader);

    let before = capture(&leader);
    let published = leader.published_seq();
    let offline_epoch = leader.offline().epoch();
    let emb_epoch = leader.embeddings().epoch();
    assert!(published > 0, "seeding logged nothing");

    // Crash: drop without checkpointing. Everything since the cold-start
    // checkpoint lives only in the WAL.
    drop(leader);

    let (revived, report) = DurableLeader::open(&dir, DurableConfig::default()).unwrap();
    assert!(!report.cold_start);
    assert_eq!(report.checkpoint_epoch, 0, "crash skipped checkpointing");
    assert_eq!(report.replayed as u64, published, "every commit replays");
    assert_eq!(
        report.recovered_epoch, published,
        "restarted into the last published epoch"
    );
    assert_eq!(revived.published_seq(), published);
    assert_eq!(revived.offline().epoch(), offline_epoch);
    assert_eq!(revived.embeddings().epoch(), emb_epoch);
    assert_eq!(
        revived.offline().read().value.num_rows("events").unwrap(),
        50
    );

    let after = capture(&revived);
    assert_eq!(before, after, "post-recovery answers diverged");

    // The open re-checkpointed: a third restart replays nothing and still
    // answers identically.
    drop(revived);
    let (again, report) = DurableLeader::open(&dir, DurableConfig::default()).unwrap();
    assert_eq!(report.checkpoint_epoch, published);
    assert_eq!(report.replayed, 0);
    assert_eq!(report.recovered_epoch, published);
    assert_eq!(capture(&again), before);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn explicit_checkpoint_makes_restart_replay_free() {
    let dir = temp_dir("checkpointed");

    let (leader, _) = DurableLeader::open(&dir, DurableConfig::default()).unwrap();
    seed(&leader);
    leader.checkpoint().unwrap();
    let published = leader.published_seq();
    let before = capture(&leader);
    drop(leader);

    let (revived, report) = DurableLeader::open(&dir, DurableConfig::default()).unwrap();
    assert_eq!(report.checkpoint_epoch, published);
    assert_eq!(report.replayed, 0, "checkpoint made the WAL empty");
    assert_eq!(report.recovered_epoch, published);
    assert_eq!(capture(&revived), before);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_and_uncommitted_wal_tails_are_dropped_not_served() {
    let dir = temp_dir("torn");

    let (leader, _) = DurableLeader::open(&dir, DurableConfig::default()).unwrap();
    seed(&leader);
    let published = leader.published_seq();
    let before = capture(&leader);
    drop(leader);

    // Fake a crash mid-append: a complete-but-uncommitted delta followed
    // by a torn fragment at the very end of the live WAL.
    let wal_path = dir.join("wal-0.log");
    assert!(wal_path.exists(), "live WAL not where recovery will look");
    let uncommitted = fstore_durable::wal::encode_record(&fstore_durable::WalRecord::Delta(
        fstore_common::DeltaRecord {
            seq: published + 1,
            component: fstore_common::ComponentKind::Online,
            component_epoch: 0,
            body: "{\"group\":\"user\",\"entity\":\"ghost\",\"features\":[]}".into(),
        },
    ));
    let torn = &fstore_durable::wal::encode_record(&fstore_durable::WalRecord::Commit {
        seq: published + 1,
    })[..5];
    let mut bytes = std::fs::read(&wal_path).unwrap();
    bytes.extend_from_slice(&uncommitted);
    bytes.extend_from_slice(torn);
    std::fs::write(&wal_path, &bytes).unwrap();

    let (revived, report) = DurableLeader::open(&dir, DurableConfig::default()).unwrap();
    assert_eq!(report.dropped_uncommitted, 1, "uncommitted delta dropped");
    assert!(report.truncated_bytes > 0, "torn tail truncated");
    assert_eq!(
        report.recovered_epoch, published,
        "unacknowledged write must not advance the epoch"
    );
    assert_eq!(capture(&revived), before, "ghost write leaked into serving");

    std::fs::remove_dir_all(&dir).ok();
}
