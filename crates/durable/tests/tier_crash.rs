//! Crash safety for tiered embeddings: segments are *derived* state, so a
//! kill mid-demotion — spilled cold versions, a torn temp segment, even a
//! corrupted published segment — must not cost a byte. Recovery rebuilds
//! every version resident from the checkpoint + WAL and serves it
//! byte-identically; re-attaching a tier afterwards re-spills over the
//! stale files.

use fstore_common::Timestamp;
use fstore_durable::{DurableConfig, DurableLeader};
use fstore_embed::{EmbeddingProvenance, EmbeddingTable};
use fstore_serve::{fixed_clock, start, FeatureClient, ServeConfig, StoreApi};
use fstore_tier::{TierConfig, TieredEmbeddings};
use std::collections::HashMap;
use std::path::PathBuf;

const DIM: usize = 8;
const ROWS: usize = 32;
const VERSIONS: u32 = 6;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fstore_tier_crash_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn vector_for(version: u32, row: usize) -> Vec<f32> {
    (0..DIM)
        .map(|j| (u64::from(version) * 1_000 + (row * DIM + j) as u64) as f32 * 0.5)
        .collect()
}

fn seed_versions(leader: &DurableLeader) -> HashMap<(u32, String), Vec<f32>> {
    let mut oracle = HashMap::new();
    for version in 1..=VERSIONS {
        let mut t = EmbeddingTable::new(DIM).unwrap();
        for row in 0..ROWS {
            let key = format!("k{row:02}");
            let v = vector_for(version, row);
            oracle.insert((version, key.clone()), v.clone());
            t.insert(key, v).unwrap();
        }
        leader
            .embeddings()
            .publish(
                "emb",
                t,
                EmbeddingProvenance::default(),
                Timestamp::millis(i64::from(version)),
            )
            .unwrap();
    }
    oracle
}

/// Serve the leader and read every (version, key) over the wire.
fn verify_all(leader: &DurableLeader, oracle: &HashMap<(u32, String), Vec<f32>>, label: &str) {
    let handle = start(
        leader.engine(fixed_clock(Timestamp::millis(0))),
        ServeConfig::builder()
            .addr("127.0.0.1:0")
            .workers(2)
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut client = FeatureClient::connect(handle.addr()).unwrap();
    for version in 1..=VERSIONS {
        let table = format!("emb@v{version}");
        for row in 0..ROWS {
            let key = format!("k{row:02}");
            let read = client.get_embedding(&table, &key).unwrap();
            assert_eq!(
                read.vector,
                oracle[&(version, key.clone())],
                "{label}: {table} {key} diverged"
            );
        }
    }
    drop(client);
    handle.shutdown();
}

#[test]
fn kill_mid_demotion_recovers_every_spilled_vector() {
    let dir = temp_dir("mid_demotion");
    let tier_dir = dir.join("tier");

    let (leader, report) = DurableLeader::open(&dir, DurableConfig::default()).unwrap();
    assert!(report.cold_start);
    let oracle = seed_versions(&leader);

    // Budget ~2 versions: the cold majority spills.
    let version_bytes = (ROWS * DIM * 4) as u64;
    let mut config = TierConfig::new(&tier_dir, 2 * version_bytes);
    config.block_bytes = 256;
    let tier = TieredEmbeddings::attach(leader.embeddings(), config).unwrap();
    tier.demote_now().unwrap();
    let spilled_before = tier.stats().snapshot().spilled_versions;
    assert!(spilled_before >= 3, "spilled {spilled_before}");

    // Reads through the spilled tables still match pre-spill publications.
    verify_all(&leader, &oracle, "tiered pre-crash");

    // Kill mid-demotion: the tier dies with cold versions on disk, a torn
    // temp segment from an in-flight write, and one published segment
    // corrupted by the "crash". None of it matters — segments are derived.
    tier.shutdown();
    std::fs::write(tier_dir.join("emb-v9.seg.tmp"), b"FSEG\x01\x02torn").unwrap();
    let seg1 = tier_dir.join("emb-v1.seg");
    if seg1.exists() {
        let bytes = std::fs::read(&seg1).unwrap();
        std::fs::write(&seg1, &bytes[..bytes.len() / 2]).unwrap();
    }
    drop(leader);

    // Recovery: checkpoint + WAL rebuild every version fully resident;
    // nothing reads the (stale, half-corrupt) segment files.
    let (revived, report) = DurableLeader::open(&dir, DurableConfig::default()).unwrap();
    assert!(!report.cold_start);
    let store = revived.embeddings().snapshot();
    for version in 1..=VERSIONS {
        assert!(
            !store.get("emb", version).unwrap().table.is_spilled(),
            "v{version} must recover resident"
        );
    }
    verify_all(&revived, &oracle, "post-crash");

    // A fresh tier over the same dir re-demotes, overwriting stale
    // segments, and spilled reads are byte-identical again.
    let mut config = TierConfig::new(&tier_dir, 2 * version_bytes);
    config.block_bytes = 256;
    let tier = TieredEmbeddings::attach(revived.embeddings(), config).unwrap();
    tier.demote_now().unwrap();
    assert!(tier.stats().snapshot().spilled_versions >= 3);
    assert_eq!(tier.last_error(), None);
    verify_all(&revived, &oracle, "re-tiered post-crash");

    tier.shutdown();
    drop(revived);
    std::fs::remove_dir_all(&dir).ok();
}
