//! Workspace-wide error type.
//!
//! A single enum keeps cross-crate `Result` plumbing simple and lets the
//! facade crate expose one error surface. Variants are grouped by subsystem;
//! each carries a human-readable message with enough context to act on.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, FsError>;

/// The error type for all `fstore` operations.
#[derive(Debug, Clone, PartialEq)]
pub enum FsError {
    /// A schema/type mismatch: expected vs. found.
    TypeMismatch {
        expected: String,
        found: String,
        context: String,
    },
    /// A named object (table, feature, embedding, model…) was not found.
    NotFound { kind: &'static str, name: String },
    /// An attempt to register a name that already exists.
    AlreadyExists { kind: &'static str, name: String },
    /// Malformed input to a parser (feature expression language).
    Parse { message: String, position: usize },
    /// A query/plan-time validation failure (unknown column, bad aggregate…).
    Plan(String),
    /// A runtime evaluation failure (division by zero with strict mode, etc.).
    Eval(String),
    /// Storage-layer failure (partition missing, segment corrupt…).
    Storage(String),
    /// Streaming-layer failure (late event beyond allowed lateness…).
    Stream(String),
    /// Embedding-layer failure (dimension mismatch, unknown version…).
    Embedding(String),
    /// Index-layer failure (not built, dimension mismatch…).
    Index(String),
    /// Model-layer failure (shape mismatch, not fitted…).
    Model(String),
    /// Monitoring failure (empty reference window, invalid threshold…).
    Monitor(String),
    /// Invalid argument supplied by the caller.
    InvalidArgument(String),
    /// Serialization/deserialization failure (model store artifacts).
    Serde(String),
    /// A durable file failed its integrity checks (bad magic, CRC mismatch,
    /// impossible length). Distinct from [`FsError::Storage`] so recovery
    /// paths can tell "the disk lied" from ordinary operational failures.
    Corruption(String),
}

impl FsError {
    /// Shorthand for a [`FsError::NotFound`].
    pub fn not_found(kind: &'static str, name: impl Into<String>) -> Self {
        FsError::NotFound {
            kind,
            name: name.into(),
        }
    }

    /// Shorthand for a [`FsError::AlreadyExists`].
    pub fn already_exists(kind: &'static str, name: impl Into<String>) -> Self {
        FsError::AlreadyExists {
            kind,
            name: name.into(),
        }
    }

    /// Shorthand for a [`FsError::TypeMismatch`].
    pub fn type_mismatch(
        expected: impl Into<String>,
        found: impl Into<String>,
        context: impl Into<String>,
    ) -> Self {
        FsError::TypeMismatch {
            expected: expected.into(),
            found: found.into(),
            context: context.into(),
        }
    }
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::TypeMismatch {
                expected,
                found,
                context,
            } => {
                write!(
                    f,
                    "type mismatch in {context}: expected {expected}, found {found}"
                )
            }
            FsError::NotFound { kind, name } => write!(f, "{kind} not found: {name}"),
            FsError::AlreadyExists { kind, name } => write!(f, "{kind} already exists: {name}"),
            FsError::Parse { message, position } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            FsError::Plan(m) => write!(f, "plan error: {m}"),
            FsError::Eval(m) => write!(f, "evaluation error: {m}"),
            FsError::Storage(m) => write!(f, "storage error: {m}"),
            FsError::Stream(m) => write!(f, "stream error: {m}"),
            FsError::Embedding(m) => write!(f, "embedding error: {m}"),
            FsError::Index(m) => write!(f, "index error: {m}"),
            FsError::Model(m) => write!(f, "model error: {m}"),
            FsError::Monitor(m) => write!(f, "monitor error: {m}"),
            FsError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            FsError::Serde(m) => write!(f, "serialization error: {m}"),
            FsError::Corruption(m) => write!(f, "corruption detected: {m}"),
        }
    }
}

impl std::error::Error for FsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = FsError::type_mismatch("Int", "Str", "column `age`");
        let s = e.to_string();
        assert!(
            s.contains("Int") && s.contains("Str") && s.contains("age"),
            "{s}"
        );
    }

    #[test]
    fn not_found_display() {
        let e = FsError::not_found("feature", "user_rating_v2");
        assert_eq!(e.to_string(), "feature not found: user_rating_v2");
    }

    #[test]
    fn already_exists_display() {
        let e = FsError::already_exists("table", "trips");
        assert_eq!(e.to_string(), "table already exists: trips");
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&FsError::Plan("x".into()));
    }

    #[test]
    fn parse_error_reports_position() {
        let e = FsError::Parse {
            message: "unexpected `)`".into(),
            position: 17,
        };
        assert!(e.to_string().contains("byte 17"));
    }
}
