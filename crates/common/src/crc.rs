//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the checksum
//! guarding every durable record the workspace writes to disk (WAL frames,
//! segment files, cached snapshots).
//!
//! Table-driven, one table built at compile time; no external crate, per the
//! vendored-deps policy. The incremental form ([`crc32_update`]) lets callers
//! checksum a header and a payload without concatenating them.

/// The 256-entry lookup table for the reflected IEEE polynomial.
const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// Feed `bytes` into a running checksum previously returned by
/// [`crc32`] or `crc32_update`. Start a chain with `crc32_update(0, ..)`.
pub fn crc32_update(crc: u32, bytes: &[u8]) -> u32 {
    let mut crc = !crc;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// The CRC-32 of `bytes` in one shot.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data = b"header-bytes|payload-bytes-0123456789";
        for split in 0..data.len() {
            let inc = crc32_update(crc32_update(0, &data[..split]), &data[split..]);
            assert_eq!(inc, crc32(data), "split at {split}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"durability matters";
        let good = crc32(data);
        let mut corrupted = data.to_vec();
        for i in 0..corrupted.len() {
            for bit in 0..8 {
                corrupted[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), good, "flip byte {i} bit {bit}");
                corrupted[i] ^= 1 << bit;
            }
        }
    }
}
