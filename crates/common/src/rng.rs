//! Deterministic pseudo-random generation for workloads and experiments.
//!
//! Every experiment in EXPERIMENTS.md must be reproducible bit-for-bit, so
//! workload generators use these small, well-known generators (SplitMix64 to
//! seed, Xoshiro256++ to run) instead of depending on the stream stability of
//! an external crate. The [`Rng`] trait carries the distribution helpers the
//! workspace needs: uniforms, Gaussians, exponentials, Poisson counts, and a
//! Zipf sampler (the popularity-skew engine behind the rare-entity
//! experiments E5/E8).

/// Common interface over the generators in this module.
pub trait Rng {
    /// Next raw 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)` (Lemire-style; `n` must be nonzero).
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0)");
        // Widening-multiply rejection method: unbiased.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "range_i64: empty range {lo}..{hi}");
        lo.wrapping_add(self.below((hi - lo) as u64) as i64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli draw.
    fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal via Box–Muller (no spare caching: keeps state simple
    /// and deterministic under interleaving).
    fn normal(&mut self) -> f64 {
        let u1 = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE); // (0,1]
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with the given mean and standard deviation.
    fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Exponential with rate `lambda` (mean `1/lambda`).
    fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0);
        -(1.0 - self.next_f64()).ln() / lambda
    }

    /// Poisson count with mean `lambda` (Knuth's product method; fine for the
    /// event-rate magnitudes our stream generators use).
    fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda >= 0.0);
        if lambda == 0.0 {
            return 0;
        }
        if lambda > 30.0 {
            // Normal approximation for large rates, clamped at zero.
            return self.normal_with(lambda, lambda.sqrt()).round().max(0.0) as u64;
        }
        let limit = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.next_f64();
            if p <= limit {
                return k;
            }
            k += 1;
        }
    }

    /// Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Uniformly choose an element (panics on an empty slice).
    fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// Sample `k` distinct indices from `[0, n)` (reservoir; order arbitrary).
    fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        let mut reservoir: Vec<usize> = (0..k).collect();
        for i in k..n {
            let j = self.below(i as u64 + 1) as usize;
            if j < k {
                reservoir[j] = i;
            }
        }
        reservoir
    }
}

/// SplitMix64 — used to derive independent seeds/streams.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Xoshiro256++ — the workhorse generator for workloads.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed via SplitMix64 per the reference implementation's recommendation.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Derive an independent child stream (for parallel generators that must
    /// stay deterministic regardless of interleaving).
    pub fn fork(&mut self, stream: u64) -> Xoshiro256 {
        let base = self.next_u64();
        Xoshiro256::seeded(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

impl Rng for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Zipf(α) sampler over ranks `0..n` (rank 0 most popular), via inverse-CDF
/// lookup on a precomputed table. O(n) memory, O(log n) per draw — exactly
/// right for our vocabulary sizes (≤ a few hundred thousand).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf over empty support");
        assert!(alpha >= 0.0, "negative Zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += (rank as f64).powf(-alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability mass of `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        let lo = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        self.cdf[rank] - lo
    }

    /// Draw a rank in `[0, n)`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u = rng.next_f64();
        // partition_point returns the first index whose cdf >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256::seeded(42);
        let mut b = Xoshiro256::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256::seeded(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn forked_streams_diverge_but_are_deterministic() {
        let mut parent1 = Xoshiro256::seeded(7);
        let mut parent2 = Xoshiro256::seeded(7);
        let mut f1 = parent1.fork(1);
        let mut f2 = parent2.fork(1);
        let mut g = parent1.fork(2);
        assert_eq!(f1.next_u64(), f2.next_u64());
        assert_ne!(f1.next_u64(), g.next_u64());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Xoshiro256::seeded(1);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = Xoshiro256::seeded(2);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[r.below(7) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = Xoshiro256::seeded(3);
        let n = 50_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.normal();
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn poisson_mean_matches_lambda() {
        let mut r = Xoshiro256::seeded(4);
        for &lambda in &[0.5, 3.0, 12.0, 80.0] {
            let n = 20_000;
            let total: u64 = (0..n).map(|_| r.poisson(lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < 0.15 * lambda.max(1.0),
                "λ={lambda} mean={mean}"
            );
        }
    }

    #[test]
    fn exponential_mean() {
        let mut r = Xoshiro256::seeded(5);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Xoshiro256::seeded(6);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input untouched"
        );
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = Xoshiro256::seeded(7);
        let s = r.sample_indices(50, 10);
        assert_eq!(s.len(), 10);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(sorted.iter().all(|&i| i < 50));
    }

    #[test]
    fn zipf_is_skewed_and_normalized() {
        let z = Zipf::new(1000, 1.0);
        let total: f64 = (0..1000).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(z.pmf(0) > 5.0 * z.pmf(9), "Zipf head not heavy enough");

        let mut r = Xoshiro256::seeded(8);
        let mut head = 0;
        let n = 20_000;
        for _ in 0..n {
            if z.sample(&mut r) < 10 {
                head += 1;
            }
        }
        let expected: f64 = (0..10).map(|i| z.pmf(i)).sum::<f64>() * n as f64;
        assert!(
            (head as f64 - expected).abs() < 0.1 * expected,
            "head={head} exp={expected}"
        );
    }

    #[test]
    fn zipf_alpha_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for rank in 0..4 {
            assert!((z.pmf(rank) - 0.25).abs() < 1e-12);
        }
    }
}
