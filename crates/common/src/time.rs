//! Timestamps and partition-date arithmetic.
//!
//! The feature store partitions offline data by *date* and performs
//! point-in-time joins on millisecond timestamps. We keep our own minimal
//! time types (milliseconds since the Unix epoch, proleptic Gregorian dates)
//! so the whole workspace is deterministic and does not depend on wall-clock
//! or timezone state.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Milliseconds since the Unix epoch (UTC). Negative values are allowed and
/// represent pre-1970 instants, though the store never generates them.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct Timestamp(pub i64);

/// A span of time in milliseconds. Used for cadences, windows and TTLs.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct Duration(pub i64);

pub const MILLIS_PER_SECOND: i64 = 1_000;
pub const MILLIS_PER_MINUTE: i64 = 60 * MILLIS_PER_SECOND;
pub const MILLIS_PER_HOUR: i64 = 60 * MILLIS_PER_MINUTE;
pub const MILLIS_PER_DAY: i64 = 24 * MILLIS_PER_HOUR;

impl Duration {
    pub const ZERO: Duration = Duration(0);

    pub fn millis(ms: i64) -> Self {
        Duration(ms)
    }
    pub fn seconds(s: i64) -> Self {
        Duration(s * MILLIS_PER_SECOND)
    }
    pub fn minutes(m: i64) -> Self {
        Duration(m * MILLIS_PER_MINUTE)
    }
    pub fn hours(h: i64) -> Self {
        Duration(h * MILLIS_PER_HOUR)
    }
    pub fn days(d: i64) -> Self {
        Duration(d * MILLIS_PER_DAY)
    }
    pub fn as_millis(self) -> i64 {
        self.0
    }
    pub fn is_positive(self) -> bool {
        self.0 > 0
    }
}

impl Timestamp {
    /// The epoch itself; convenient experiment origin.
    pub const EPOCH: Timestamp = Timestamp(0);

    pub fn millis(ms: i64) -> Self {
        Timestamp(ms)
    }

    pub fn as_millis(self) -> i64 {
        self.0
    }

    /// The partition date (days since epoch, floored) this instant falls in.
    pub fn date(self) -> Date {
        Date(self.0.div_euclid(MILLIS_PER_DAY) as i32)
    }

    /// Saturating difference `self - earlier`.
    pub fn since(self, earlier: Timestamp) -> Duration {
        Duration(self.0 - earlier.0)
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;
    fn sub(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 - rhs.0)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;
    fn sub(self, rhs: Timestamp) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let date = self.date();
        let rem = self.0.rem_euclid(MILLIS_PER_DAY);
        let (h, m, s, ms) = (
            rem / MILLIS_PER_HOUR,
            rem % MILLIS_PER_HOUR / MILLIS_PER_MINUTE,
            rem % MILLIS_PER_MINUTE / MILLIS_PER_SECOND,
            rem % MILLIS_PER_SECOND,
        );
        write!(f, "{date}T{h:02}:{m:02}:{s:02}.{ms:03}Z")
    }
}

/// A calendar date used as the offline-store partition key, stored as whole
/// days since the Unix epoch. Display formats as ISO `YYYY-MM-DD` using the
/// proleptic Gregorian calendar.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct Date(pub i32);

impl Date {
    pub fn from_days(days: i32) -> Self {
        Date(days)
    }

    pub fn days_since_epoch(self) -> i32 {
        self.0
    }

    /// Midnight (inclusive start) of this date.
    pub fn start(self) -> Timestamp {
        Timestamp(self.0 as i64 * MILLIS_PER_DAY)
    }

    /// Midnight of the following date (exclusive end).
    pub fn end(self) -> Timestamp {
        Timestamp((self.0 as i64 + 1) * MILLIS_PER_DAY)
    }

    pub fn next(self) -> Date {
        Date(self.0 + 1)
    }

    pub fn prev(self) -> Date {
        Date(self.0 - 1)
    }

    /// Civil (year, month, day) via Howard Hinnant's `civil_from_days`.
    pub fn civil(self) -> (i32, u32, u32) {
        let z = self.0 as i64 + 719_468;
        let era = z.div_euclid(146_097);
        let doe = z.rem_euclid(146_097); // day of era [0, 146096]
        let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
        ((y + i64::from(m <= 2)) as i32, m, d)
    }

    /// Inverse of [`Date::civil`] (`days_from_civil`).
    pub fn from_civil(y: i32, m: u32, d: u32) -> Self {
        let y = i64::from(y) - i64::from(m <= 2);
        let era = y.div_euclid(400);
        let yoe = y.rem_euclid(400);
        let mp = i64::from(if m > 2 { m - 3 } else { m + 9 });
        let doy = (153 * mp + 2) / 5 + i64::from(d) - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        Date((era * 146_097 + doe - 719_468) as i32)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.civil();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

/// A simulated, manually-advanced clock.
///
/// Materialization scheduling, streaming watermarks and freshness metrics all
/// read "now" from a [`SimClock`], which makes every experiment reproducible
/// and lets tests fast-forward days in microseconds.
#[derive(Debug, Clone)]
pub struct SimClock {
    now: Timestamp,
}

impl SimClock {
    pub fn new(start: Timestamp) -> Self {
        SimClock { now: start }
    }

    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Advance the clock by `d`; panics on a negative span (time cannot
    /// run backwards in a simulation, and silently allowing it hides bugs).
    pub fn advance(&mut self, d: Duration) {
        assert!(
            d.0 >= 0,
            "SimClock cannot move backwards (advance by {} ms)",
            d.0
        );
        self.now += d;
    }

    /// Jump directly to `t` (must not be earlier than the current instant).
    pub fn advance_to(&mut self, t: Timestamp) {
        assert!(
            t >= self.now,
            "SimClock cannot move backwards (to {} from {})",
            t.0,
            self.now.0
        );
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_of_epoch_is_1970() {
        assert_eq!(Timestamp::EPOCH.date().civil(), (1970, 1, 1));
        assert_eq!(Timestamp::EPOCH.date().to_string(), "1970-01-01");
    }

    #[test]
    fn civil_round_trips_across_leap_years() {
        for days in [-1000, -1, 0, 1, 59, 60, 365, 366, 11_016, 18_628, 20_000] {
            let d = Date::from_days(days);
            let (y, m, dd) = d.civil();
            assert_eq!(Date::from_civil(y, m, dd), d, "days={days}");
        }
    }

    #[test]
    fn known_dates() {
        assert_eq!(Date::from_civil(2000, 3, 1).to_string(), "2000-03-01");
        assert_eq!(Date::from_civil(2021, 8, 16).days_since_epoch(), 18_855);
        assert_eq!(Date::from_days(18_855).civil(), (2021, 8, 16));
    }

    #[test]
    fn timestamp_date_boundaries() {
        let d = Date::from_days(3);
        assert_eq!(d.start().date(), d);
        assert_eq!((d.end() - Duration::millis(1)).date(), d);
        assert_eq!(d.end().date(), d.next());
    }

    #[test]
    fn negative_timestamps_floor_correctly() {
        // One millisecond before the epoch belongs to 1969-12-31.
        let t = Timestamp(-1);
        assert_eq!(t.date().civil(), (1969, 12, 31));
    }

    #[test]
    fn duration_constructors() {
        assert_eq!(Duration::days(1).as_millis(), 86_400_000);
        assert_eq!(
            Duration::hours(2) + Duration::minutes(30),
            Duration::minutes(150)
        );
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::millis(1_000);
        assert_eq!(t + Duration::seconds(2), Timestamp::millis(3_000));
        assert_eq!(t - Duration::seconds(1), Timestamp::EPOCH);
        assert_eq!(Timestamp::millis(5_000) - t, Duration::seconds(4));
    }

    #[test]
    fn display_formats() {
        let t = Date::from_civil(2021, 8, 16).start() + Duration::hours(13) + Duration::millis(42);
        assert_eq!(t.to_string(), "2021-08-16T13:00:00.042Z");
    }

    #[test]
    fn sim_clock_advances() {
        let mut c = SimClock::new(Timestamp::EPOCH);
        c.advance(Duration::hours(1));
        assert_eq!(c.now(), Timestamp::millis(MILLIS_PER_HOUR));
        c.advance_to(Timestamp::millis(MILLIS_PER_DAY));
        assert_eq!(c.now().date(), Date::from_days(1));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn sim_clock_rejects_regression() {
        let mut c = SimClock::new(Timestamp::millis(10));
        c.advance_to(Timestamp::millis(5));
    }
}
