//! A small, fast, non-cryptographic hasher (FxHash-style multiply-rotate),
//! used where hashing is hot and HashDoS is not a concern: online-store
//! shard routing, vocabulary maps, inverted lists. See the perf guidance in
//! the workspace coding guides — SipHash is needlessly slow for these paths.

use std::hash::{BuildHasherDefault, Hasher};

/// FxHash-style 64-bit hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher64 {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher64 {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) ^ rem.len() as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }
}

/// `BuildHasher` for [`FxHasher64`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher64>;

/// Drop-in `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the fast hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// Hash one value with [`FxHasher64`] — used for shard routing.
pub fn fx_hash_one<T: std::hash::Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher64::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(fx_hash_one(&"hello"), fx_hash_one(&"hello"));
        assert_ne!(fx_hash_one(&"hello"), fx_hash_one(&"hellp"));
    }

    #[test]
    fn maps_work() {
        let mut m: FxHashMap<String, i32> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(42);
        assert!(s.contains(&42));
    }

    #[test]
    fn spreads_sequential_keys() {
        // Shard routing quality: sequential entity ids should not all land in
        // one shard.
        let shards = 16u64;
        let mut counts = vec![0u32; shards as usize];
        for i in 0..1600u64 {
            counts[(fx_hash_one(&format!("user_{i}")) % shards) as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*min > 50, "shard starved: {counts:?}");
        assert!(*max < 200, "shard hot: {counts:?}");
    }

    #[test]
    fn partial_tail_bytes_differ() {
        assert_ne!(
            fx_hash_one(&[1u8, 2, 3][..]),
            fx_hash_one(&[1u8, 2, 3, 0][..])
        );
    }
}
