//! `VectorBuf`: an owned-or-shared buffer of `f32`s viewed as one dense
//! vector.
//!
//! The serving hot path wants to hand an embedding row from the store (or
//! from the tier block cache) straight to the wire encoder without copying
//! it into a fresh `Vec<f32>` per request. A resident embedding row is an
//! `Arc<[f32]>`; a cache block is an `Arc<[f32]>` holding many rows, of
//! which a read wants one window. `VectorBuf` covers both — a refcount
//! bump plus `(offset, len)` — while still accepting a plain `Vec<f32>`
//! for decoders, tests, and literals.

use std::sync::Arc;

#[derive(Clone)]
enum Repr {
    /// A standalone vector (decode path, literals).
    Owned(Vec<f32>),
    /// A window into a shared block (resident row or cache block).
    Shared(Arc<[f32]>),
}

/// An immutable `f32` vector that is either owned or a zero-copy window
/// into a shared block. Dereferences to `&[f32]`; equality compares the
/// viewed contents, not the backing representation.
#[derive(Clone)]
pub struct VectorBuf {
    repr: Repr,
    offset: usize,
    len: usize,
}

impl VectorBuf {
    /// Wrap a whole shared block (a resident embedding row).
    pub fn from_block(block: Arc<[f32]>) -> VectorBuf {
        let len = block.len();
        VectorBuf {
            repr: Repr::Shared(block),
            offset: 0,
            len,
        }
    }

    /// A window of `len` floats at `offset` into a shared block (one row of
    /// a multi-row cache block). Panics if the window is out of bounds —
    /// callers compute windows from trusted block geometry.
    pub fn window(block: Arc<[f32]>, offset: usize, len: usize) -> VectorBuf {
        assert!(
            offset
                .checked_add(len)
                .is_some_and(|end| end <= block.len()),
            "vector window {offset}+{len} out of bounds for block of {}",
            block.len()
        );
        VectorBuf {
            repr: Repr::Shared(block),
            offset,
            len,
        }
    }

    pub fn as_slice(&self) -> &[f32] {
        match &self.repr {
            Repr::Owned(v) => &v[self.offset..self.offset + self.len],
            Repr::Shared(b) => &b[self.offset..self.offset + self.len],
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when this buffer shares its backing storage (the zero-copy
    /// path); false when it owns a private allocation. The serving metrics
    /// use this to count responses that had to copy.
    pub fn is_shared(&self) -> bool {
        matches!(self.repr, Repr::Shared(_))
    }

    /// Extract an owned `Vec<f32>`, reusing the allocation when this buffer
    /// owns the whole thing.
    pub fn into_vec(self) -> Vec<f32> {
        match self.repr {
            Repr::Owned(v) if self.offset == 0 && self.len == v.len() => v,
            _ => self.as_slice().to_vec(),
        }
    }
}

impl From<Vec<f32>> for VectorBuf {
    fn from(v: Vec<f32>) -> VectorBuf {
        let len = v.len();
        VectorBuf {
            repr: Repr::Owned(v),
            offset: 0,
            len,
        }
    }
}

impl std::ops::Deref for VectorBuf {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        self.as_slice()
    }
}

impl AsRef<[f32]> for VectorBuf {
    fn as_ref(&self) -> &[f32] {
        self.as_slice()
    }
}

impl PartialEq for VectorBuf {
    fn eq(&self, other: &VectorBuf) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[f32]> for VectorBuf {
    fn eq(&self, other: &[f32]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<f32>> for VectorBuf {
    fn eq(&self, other: &Vec<f32>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::fmt::Debug for VectorBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_round_trips_without_copying() {
        let v = vec![1.0f32, 2.0, 3.0];
        let ptr = v.as_ptr();
        let buf = VectorBuf::from(v);
        assert!(!buf.is_shared());
        assert_eq!(buf.as_slice(), &[1.0, 2.0, 3.0]);
        let back = buf.into_vec();
        assert_eq!(back.as_ptr(), ptr, "whole owned buffer moves, not copies");
    }

    #[test]
    fn windows_view_into_shared_blocks() {
        let block: Arc<[f32]> = vec![0.0f32, 1.0, 2.0, 3.0, 4.0, 5.0].into();
        let row = VectorBuf::window(Arc::clone(&block), 2, 2);
        assert!(row.is_shared());
        assert_eq!(row.as_slice(), &[2.0, 3.0]);
        assert_eq!(row.len(), 2);
        let whole = VectorBuf::from_block(block);
        assert_eq!(whole.len(), 6);
        assert_eq!(&whole[4..], &[4.0, 5.0]);
    }

    #[test]
    fn equality_ignores_representation() {
        let block: Arc<[f32]> = vec![7.0f32, 8.0].into();
        let shared = VectorBuf::from_block(block);
        let owned = VectorBuf::from(vec![7.0f32, 8.0]);
        assert_eq!(shared, owned);
        assert_eq!(shared, vec![7.0f32, 8.0]);
        assert_ne!(owned, VectorBuf::from(vec![7.0f32]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_window_panics() {
        let block: Arc<[f32]> = vec![0.0f32; 4].into();
        let _ = VectorBuf::window(block, 2, 3);
    }
}
