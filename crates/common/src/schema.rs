//! Table and feature-row schemas.

use crate::error::{FsError, Result};
use crate::value::{Value, ValueType};
use std::collections::HashMap;
use std::sync::Arc;

/// One field of a [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    pub name: String,
    pub ty: ValueType,
    pub nullable: bool,
}

impl FieldDef {
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        FieldDef {
            name: name.into(),
            ty,
            nullable: true,
        }
    }

    pub fn not_null(name: impl Into<String>, ty: ValueType) -> Self {
        FieldDef {
            name: name.into(),
            ty,
            nullable: false,
        }
    }
}

/// An ordered set of named, typed fields with O(1) name lookup.
///
/// Schemas are immutable after construction and cheaply cloneable (the field
/// list lives behind an `Arc`), because every row batch and segment carries
/// a reference to its schema.
#[derive(Debug, Clone)]
pub struct Schema {
    fields: Arc<[FieldDef]>,
    by_name: Arc<HashMap<String, usize>>,
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.fields[..] == other.fields[..]
    }
}
impl Eq for Schema {}

impl Schema {
    /// Build a schema; fails on duplicate field names.
    pub fn new(fields: Vec<FieldDef>) -> Result<Self> {
        let mut by_name = HashMap::with_capacity(fields.len());
        for (i, f) in fields.iter().enumerate() {
            if by_name.insert(f.name.clone(), i).is_some() {
                return Err(FsError::InvalidArgument(format!(
                    "duplicate field `{}` in schema",
                    f.name
                )));
            }
        }
        Ok(Schema {
            fields: fields.into(),
            by_name: Arc::new(by_name),
        })
    }

    /// Convenience constructor from `(name, type)` pairs (all nullable).
    pub fn of(pairs: &[(&str, ValueType)]) -> Self {
        Schema::new(pairs.iter().map(|(n, t)| FieldDef::new(*n, *t)).collect())
            .expect("Schema::of called with duplicate names")
    }

    pub fn fields(&self) -> &[FieldDef] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    pub fn field(&self, name: &str) -> Option<&FieldDef> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// Validate that `row` matches this schema (arity, types, null policy).
    pub fn check_row(&self, row: &[Value]) -> Result<()> {
        if row.len() != self.fields.len() {
            return Err(FsError::InvalidArgument(format!(
                "row arity {} does not match schema arity {}",
                row.len(),
                self.fields.len()
            )));
        }
        for (f, v) in self.fields.iter().zip(row) {
            if v.is_null() {
                if !f.nullable {
                    return Err(FsError::InvalidArgument(format!(
                        "null in non-nullable field `{}`",
                        f.name
                    )));
                }
            } else if !v.fits(f.ty) {
                return Err(FsError::type_mismatch(
                    f.ty.to_string(),
                    v.value_type().map(|t| t.to_string()).unwrap_or_default(),
                    format!("field `{}`", f.name),
                ));
            }
        }
        Ok(())
    }

    /// A new schema with `extra` fields appended (fails on name clashes).
    pub fn extend(&self, extra: Vec<FieldDef>) -> Result<Schema> {
        let mut fields = self.fields.to_vec();
        fields.extend(extra);
        Schema::new(fields)
    }

    /// Project to a subset of columns, in the given order.
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let fields = names
            .iter()
            .map(|n| {
                self.field(n)
                    .cloned()
                    .ok_or_else(|| FsError::not_found("field", n.to_string()))
            })
            .collect::<Result<Vec<_>>>()?;
        Schema::new(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Schema {
        Schema::of(&[
            ("user_id", ValueType::Str),
            ("trips", ValueType::Int),
            ("rating", ValueType::Float),
        ])
    }

    #[test]
    fn lookup_by_name() {
        let s = demo();
        assert_eq!(s.index_of("trips"), Some(1));
        assert_eq!(s.field("rating").unwrap().ty, ValueType::Float);
        assert_eq!(s.index_of("nope"), None);
    }

    #[test]
    fn rejects_duplicate_names() {
        let err = Schema::new(vec![
            FieldDef::new("a", ValueType::Int),
            FieldDef::new("a", ValueType::Float),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn check_row_accepts_valid() {
        let s = demo();
        s.check_row(&[Value::from("u1"), Value::Int(3), Value::Float(4.5)])
            .unwrap();
        // Int widens to Float; nulls allowed when nullable.
        s.check_row(&[Value::from("u1"), Value::Null, Value::Int(4)])
            .unwrap();
    }

    #[test]
    fn check_row_rejects_bad_arity_and_types() {
        let s = demo();
        assert!(s.check_row(&[Value::from("u1")]).is_err());
        let err = s
            .check_row(&[Value::from("u1"), Value::from("three"), Value::Null])
            .unwrap_err();
        assert!(err.to_string().contains("trips"));
    }

    #[test]
    fn check_row_enforces_not_null() {
        let s = Schema::new(vec![FieldDef::not_null("id", ValueType::Int)]).unwrap();
        assert!(s.check_row(&[Value::Null]).is_err());
        s.check_row(&[Value::Int(1)]).unwrap();
    }

    #[test]
    fn extend_and_project() {
        let s = demo();
        let s2 = s
            .extend(vec![FieldDef::new("label", ValueType::Bool)])
            .unwrap();
        assert_eq!(s2.len(), 4);
        assert!(s2
            .extend(vec![FieldDef::new("trips", ValueType::Int)])
            .is_err());

        let p = s2.project(&["label", "user_id"]).unwrap();
        assert_eq!(p.fields()[0].name, "label");
        assert_eq!(p.fields()[1].name, "user_id");
        assert!(s2.project(&["ghost"]).is_err());
    }

    #[test]
    fn schemas_compare_by_fields() {
        assert_eq!(demo(), demo());
        assert_ne!(demo(), Schema::of(&[("x", ValueType::Int)]));
    }
}
