//! Replication substrate: epoch-tagged publication deltas and the leader's
//! bounded publication log.
//!
//! Every [`SnapshotCell`](crate::SnapshotCell) publication on a leader is
//! recorded as a [`DeltaRecord`] — which component published, the component
//! epoch the publication was stamped with, and a component-defined serialized
//! body describing what changed. Records live in a [`PubLog`]: an in-memory
//! ring with a bounded retention window, keyed by a leader-wide monotone
//! sequence number (the *replication epoch*). Followers replay records in
//! sequence order; one that has lagged past the retention window is told so
//! ([`DeltaQuery::Lagged`]) and re-bootstraps from a full snapshot instead.
//!
//! This module is deliberately payload-agnostic: bodies are opaque strings
//! (JSON in practice), encoded and decoded by `fstore-repl`, so the bottom
//! layer of the dependency graph stays free of storage/embedding types.

use std::fmt;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::snapshot::EpochRing;

/// Default number of delta records a [`PubLog`] retains.
pub const DEFAULT_LOG_RETENTION: usize = 64;

/// Which component a publication delta belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComponentKind {
    /// The offline store (`OfflineDb` cell).
    Offline,
    /// The embedding catalog (`EmbeddingDb` cell).
    Embeddings,
    /// The ANN index catalog (rebuild instructions, not index bytes).
    Index,
    /// The online KV store (per-row puts; no snapshot cell of its own).
    Online,
}

impl ComponentKind {
    /// Stable wire tag.
    pub fn as_u8(self) -> u8 {
        match self {
            ComponentKind::Offline => 0,
            ComponentKind::Embeddings => 1,
            ComponentKind::Index => 2,
            ComponentKind::Online => 3,
        }
    }

    /// Inverse of [`as_u8`](Self::as_u8); `None` for unknown tags.
    pub fn from_u8(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(ComponentKind::Offline),
            1 => Some(ComponentKind::Embeddings),
            2 => Some(ComponentKind::Index),
            3 => Some(ComponentKind::Online),
            _ => None,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            ComponentKind::Offline => "offline",
            ComponentKind::Embeddings => "embeddings",
            ComponentKind::Index => "index",
            ComponentKind::Online => "online",
        }
    }
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One publication, as recorded in the leader's log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaRecord {
    /// Leader-wide replication sequence number (first record is `1`).
    pub seq: u64,
    /// Component that published.
    pub component: ComponentKind,
    /// The component cell epoch this publication was stamped with (`0` for
    /// [`ComponentKind::Online`], which has no cell). Followers install at
    /// exactly this epoch so their responses echo the leader's.
    pub component_epoch: u64,
    /// Component-defined serialized payload (JSON).
    pub body: String,
}

/// Answer to "give me everything after sequence number `from`".
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaQuery {
    /// In-window: the records with `seq > from`, in order (empty = caught up).
    Deltas(Vec<DeltaRecord>),
    /// The caller lagged past the retention window — records it needs were
    /// evicted. It must re-bootstrap from a full snapshot.
    Lagged {
        /// Oldest sequence number still retained.
        oldest_retained: u64,
    },
}

struct LogInner {
    ring: EpochRing<DeltaRecord>,
    next_seq: u64,
}

/// The leader's in-memory publication log: a bounded ring of the most recent
/// [`DeltaRecord`]s (the same [`EpochRing`] the snapshot cells use for
/// history retention).
pub struct PubLog {
    inner: Mutex<LogInner>,
}

impl PubLog {
    /// An empty log retaining at most `retention` records (clamped to ≥ 1).
    pub fn new(retention: usize) -> Self {
        PubLog {
            inner: Mutex::new(LogInner {
                ring: EpochRing::new(retention),
                next_seq: 1,
            }),
        }
    }

    /// The retention bound (number of records).
    pub fn retention(&self) -> usize {
        self.inner.lock().ring.capacity()
    }

    /// Record a publication, returning the sequence number it was assigned.
    pub fn append(&self, component: ComponentKind, component_epoch: u64, body: String) -> u64 {
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.ring.push(
            seq,
            DeltaRecord {
                seq,
                component,
                component_epoch,
                body,
            },
        );
        seq
    }

    /// Sequence number of the most recent record (`0` if none yet).
    pub fn last_seq(&self) -> u64 {
        self.inner.lock().next_seq - 1
    }

    /// Oldest sequence number still retained (`next` if the log is empty —
    /// i.e. nothing older than the next record survives).
    pub fn oldest_retained(&self) -> u64 {
        let inner = self.inner.lock();
        inner.ring.oldest_key().unwrap_or(inner.next_seq)
    }

    /// Everything after sequence number `from`, or [`DeltaQuery::Lagged`] if
    /// records in `(from, oldest_retained)` have been evicted.
    pub fn since(&self, from: u64) -> DeltaQuery {
        let inner = self.inner.lock();
        let last = inner.next_seq - 1;
        if from >= last {
            return DeltaQuery::Deltas(Vec::new());
        }
        let oldest = inner.ring.oldest_key().unwrap_or(inner.next_seq);
        if from + 1 < oldest {
            return DeltaQuery::Lagged {
                oldest_retained: oldest,
            };
        }
        DeltaQuery::Deltas(
            inner
                .ring
                .iter()
                .filter(|(seq, _)| *seq > from)
                .map(|(_, r)| r.clone())
                .collect(),
        )
    }

    /// Run `f` with the log frozen (no appends can interleave), passing the
    /// current last sequence number. Full-snapshot capture uses this so the
    /// snapshot's replication epoch and its contents stay consistent: any
    /// publication that installs concurrently will be re-delivered as a delta
    /// `> last_seq`, and applies are idempotent.
    pub fn frozen<R>(&self, f: impl FnOnce(u64) -> R) -> R {
        let inner = self.inner.lock();
        f(inner.next_seq - 1)
    }
}

impl fmt::Debug for PubLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("PubLog")
            .field("last_seq", &(inner.next_seq - 1))
            .field("retained", &inner.ring.len())
            .field("retention", &inner.ring.capacity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_assigns_monotone_seqs_from_one() {
        let log = PubLog::new(8);
        assert_eq!(log.last_seq(), 0);
        assert_eq!(log.oldest_retained(), 1);
        assert_eq!(log.append(ComponentKind::Offline, 1, "a".into()), 1);
        assert_eq!(log.append(ComponentKind::Embeddings, 1, "b".into()), 2);
        assert_eq!(log.last_seq(), 2);
        assert_eq!(log.oldest_retained(), 1);
    }

    #[test]
    fn since_returns_tail_in_order() {
        let log = PubLog::new(8);
        for i in 0..5 {
            log.append(ComponentKind::Online, 0, format!("{i}"));
        }
        match log.since(2) {
            DeltaQuery::Deltas(d) => {
                assert_eq!(d.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![3, 4, 5]);
                assert_eq!(d[0].body, "2");
            }
            q => panic!("unexpected {q:?}"),
        }
        assert_eq!(log.since(5), DeltaQuery::Deltas(Vec::new()));
        assert_eq!(log.since(99), DeltaQuery::Deltas(Vec::new()));
    }

    #[test]
    fn lagging_past_retention_is_reported() {
        let log = PubLog::new(3);
        for i in 0..10 {
            log.append(ComponentKind::Offline, i, String::new());
        }
        // Records 8, 9, 10 retained; a follower at 5 can't catch up.
        assert_eq!(log.oldest_retained(), 8);
        assert_eq!(log.since(5), DeltaQuery::Lagged { oldest_retained: 8 });
        // At 7 the needed records (8..=10) are all still present.
        match log.since(7) {
            DeltaQuery::Deltas(d) => assert_eq!(d.len(), 3),
            q => panic!("unexpected {q:?}"),
        }
    }

    #[test]
    fn frozen_exposes_a_stable_last_seq() {
        let log = PubLog::new(4);
        log.append(ComponentKind::Index, 1, String::new());
        let seen = log.frozen(|last| last);
        assert_eq!(seen, 1);
    }

    #[test]
    fn component_kind_tags_round_trip() {
        for kind in [
            ComponentKind::Offline,
            ComponentKind::Embeddings,
            ComponentKind::Index,
            ComponentKind::Online,
        ] {
            assert_eq!(ComponentKind::from_u8(kind.as_u8()), Some(kind));
        }
        assert_eq!(ComponentKind::from_u8(42), None);
    }
}
