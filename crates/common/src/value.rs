//! Typed, nullable values — the cell type of every table and feature row.

use crate::error::{FsError, Result};
use crate::time::Timestamp;
use std::fmt;

/// The type of a [`Value`]. Every column and feature declares one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ValueType {
    Int,
    Float,
    Bool,
    Str,
    Timestamp,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Int => "Int",
            ValueType::Float => "Float",
            ValueType::Bool => "Bool",
            ValueType::Str => "Str",
            ValueType::Timestamp => "Timestamp",
        };
        f.write_str(s)
    }
}

/// A nullable scalar. `Null` is untyped (SQL-style): any column may hold it
/// and every comparison against it yields `Null`-ish semantics in the
/// expression engine.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Bool(bool),
    Str(String),
    Timestamp(Timestamp),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The runtime type, or `None` for `Null`.
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ValueType::Int),
            Value::Float(_) => Some(ValueType::Float),
            Value::Bool(_) => Some(ValueType::Bool),
            Value::Str(_) => Some(ValueType::Str),
            Value::Timestamp(_) => Some(ValueType::Timestamp),
        }
    }

    /// True when this value can live in a column of type `ty`
    /// (nulls fit anywhere; Int is accepted where Float is expected).
    pub fn fits(&self, ty: ValueType) -> bool {
        match (self, ty) {
            (Value::Null, _) => true,
            (Value::Int(_), ValueType::Float) => true,
            (v, t) => v.value_type() == Some(t),
        }
    }

    /// Numeric view: Int and Float (and Bool as 0/1) coerce to f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_timestamp(&self) -> Option<Timestamp> {
        match self {
            Value::Timestamp(t) => Some(*t),
            _ => None,
        }
    }

    /// Strict numeric extraction with a contextual error, for engine internals.
    pub fn expect_f64(&self, context: &str) -> Result<f64> {
        self.as_f64()
            .ok_or_else(|| FsError::type_mismatch("numeric", type_name(self), context.to_string()))
    }

    /// Total ordering for sorting mixed columns: Null < Bool < Int/Float < Str < Timestamp.
    /// Within numerics, compares by f64 (NaN sorts greatest).
    pub fn total_cmp(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
                Value::Timestamp(_) => 4,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Timestamp(a), Value::Timestamp(b)) => a.cmp(b),
            (a, b) if rank(a) == 2 && rank(b) == 2 => {
                let (x, y) = (a.as_f64().unwrap(), b.as_f64().unwrap());
                x.total_cmp(&y)
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

fn type_name(v: &Value) -> String {
    v.value_type()
        .map(|t| t.to_string())
        .unwrap_or_else(|| "Null".to_string())
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Timestamp(t) => write!(f, "{t}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Timestamp> for Value {
    fn from(v: Timestamp) -> Self {
        Value::Timestamp(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

/// The key of an entity a feature or embedding is about (a user id, a driver
/// id, a token…). Kept as a small wrapper so signatures stay self-describing.
#[derive(
    Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct EntityKey(pub String);

impl EntityKey {
    pub fn new(k: impl Into<String>) -> Self {
        EntityKey(k.into())
    }
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for EntityKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for EntityKey {
    fn from(s: &str) -> Self {
        EntityKey(s.to_string())
    }
}
impl From<String> for EntityKey {
    fn from(s: String) -> Self {
        EntityKey(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_fits_every_type() {
        for ty in [
            ValueType::Int,
            ValueType::Float,
            ValueType::Bool,
            ValueType::Str,
            ValueType::Timestamp,
        ] {
            assert!(Value::Null.fits(ty));
        }
    }

    #[test]
    fn int_widens_to_float() {
        assert!(Value::Int(3).fits(ValueType::Float));
        assert!(!Value::Float(3.0).fits(ValueType::Int));
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(Value::Int(2).as_f64(), Some(2.0));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Bool(true).as_i64(), Some(1));
    }

    #[test]
    fn expect_f64_error_carries_context() {
        let err = Value::Str("a".into())
            .expect_f64("feature `fare`")
            .unwrap_err();
        assert!(err.to_string().contains("fare"));
    }

    #[test]
    fn total_cmp_orders_mixed_values() {
        let mut vs = vec![
            Value::Str("b".into()),
            Value::Int(5),
            Value::Null,
            Value::Float(2.5),
            Value::Bool(true),
        ];
        vs.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::Bool(true),
                Value::Float(2.5),
                Value::Int(5),
                Value::Str("b".into()),
            ]
        );
    }

    #[test]
    fn total_cmp_mixed_numerics() {
        assert_eq!(
            Value::Int(2).total_cmp(&Value::Float(2.5)),
            std::cmp::Ordering::Less
        );
        assert_eq!(
            Value::Float(2.0).total_cmp(&Value::Int(2)),
            std::cmp::Ordering::Equal
        );
    }

    #[test]
    fn option_into_value() {
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some(3i64)), Value::Int(3));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::from("hi").to_string(), "hi");
    }
}
