//! Epoch-versioned snapshot cells — the workspace-wide publication primitive.
//!
//! A [`SnapshotCell<T>`] holds an atomically swappable [`Arc`] to an immutable
//! snapshot of some state, plus a monotone [`ReadEpoch`] counter that ticks on
//! every publication. Readers resolve one `Arc` (and the epoch it was
//! published at) up front and then run entirely lock-free: a concurrent
//! publication swaps the cell to a new snapshot but never touches the one a
//! reader is already holding. Writers serialize among themselves on a
//! dedicated mutex so read-copy-update sequences ([`SnapshotCell::update`])
//! never lose updates, but they never block readers for longer than the
//! pointer swap itself.
//!
//! This is the shape `IndexCatalog` pioneered for ANN index hot-swaps;
//! hoisting it here lets the offline store, the embedding catalog, and the
//! index catalog all share one concurrency model (see DESIGN.md
//! "Concurrency model").

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

/// A monotone publication counter. Epoch `0` is the state a cell was
/// constructed with; every successful publication increments it by one.
///
/// Epochs are per-cell: comparing epochs from different cells is meaningless,
/// but within one cell `a < b` means snapshot `a` was published strictly
/// before snapshot `b`. Serving layers that aggregate several cells sum the
/// component epochs — the sum is still monotone under any publication.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ReadEpoch(pub u64);

impl ReadEpoch {
    /// The epoch of a freshly constructed cell (its initial value).
    pub const ZERO: ReadEpoch = ReadEpoch(0);

    /// The raw counter value.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// The epoch the *next* publication will be stamped with.
    pub fn next(self) -> ReadEpoch {
        ReadEpoch(self.0 + 1)
    }
}

impl fmt::Display for ReadEpoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A snapshot `Arc` paired with the epoch it was published at. The pair is
/// resolved atomically: `value` is exactly the snapshot that publication
/// `epoch` installed.
#[derive(Debug)]
pub struct Versioned<T> {
    pub value: Arc<T>,
    pub epoch: ReadEpoch,
}

// Manual impl: `Arc<T>` clones without `T: Clone`, and the derive would
// wrongly require it.
impl<T> Clone for Versioned<T> {
    fn clone(&self) -> Self {
        Versioned {
            value: Arc::clone(&self.value),
            epoch: self.epoch,
        }
    }
}

/// An atomically swappable `Arc` to an immutable snapshot, plus a monotone
/// epoch counter.
///
/// * Readers call [`load`](Self::load) or [`read`](Self::read); both take the
///   internal lock only long enough to clone an `Arc` and never block on a
///   writer building a new snapshot.
/// * Writers call [`publish`](Self::publish) to swap in a fully built value,
///   or [`update`](Self::update) / [`try_update`](Self::try_update) for
///   read-copy-update against the current snapshot. Writers are serialized on
///   a dedicated mutex, so an `update` closure always sees the latest
///   published value.
///
/// Snapshots must be immutable once published — the type system cannot
/// enforce this (readers get `Arc<T>`, not `&T`), so by convention `T`
/// exposes no interior mutability.
pub struct SnapshotCell<T> {
    /// The current snapshot and the epoch it was published at, swapped as a
    /// unit so readers always observe a consistent pair.
    current: RwLock<Versioned<T>>,
    /// Serializes writers (publication order == epoch order, and
    /// read-copy-update never loses a concurrent writer's work).
    writer: Mutex<()>,
    /// Mirror of the current epoch for lock-free [`epoch`](Self::epoch)
    /// queries; written only while holding the `current` write lock.
    epoch: AtomicU64,
}

impl<T> SnapshotCell<T> {
    /// Create a cell holding `value` at [`ReadEpoch::ZERO`].
    pub fn new(value: T) -> Self {
        Self::from_arc(Arc::new(value))
    }

    /// Like [`new`](Self::new) but adopts an existing `Arc`.
    pub fn from_arc(value: Arc<T>) -> Self {
        SnapshotCell {
            current: RwLock::new(Versioned {
                value,
                epoch: ReadEpoch::ZERO,
            }),
            writer: Mutex::new(()),
            epoch: AtomicU64::new(0),
        }
    }

    /// Resolve the current snapshot. O(1): an `Arc` clone under a read lock
    /// held for the duration of the clone only.
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.current.read().value)
    }

    /// Resolve the current snapshot together with the epoch it was published
    /// at, as one consistent pair.
    pub fn read(&self) -> Versioned<T> {
        self.current.read().clone()
    }

    /// The epoch of the most recent publication (lock-free).
    pub fn epoch(&self) -> ReadEpoch {
        ReadEpoch(self.epoch.load(Ordering::Acquire))
    }

    /// Publish a fully built snapshot, returning the epoch it was stamped
    /// with. Readers that resolved the previous snapshot keep it; new readers
    /// see the new one.
    pub fn publish(&self, value: T) -> ReadEpoch {
        self.publish_arc(Arc::new(value))
    }

    /// Like [`publish`](Self::publish) but adopts an existing `Arc`.
    pub fn publish_arc(&self, value: Arc<T>) -> ReadEpoch {
        let _writer = self.writer.lock();
        self.install(value)
    }

    /// Read-copy-update: build a replacement snapshot from the current one
    /// and publish it, all under the writer mutex. The closure receives the
    /// current snapshot and the epoch the replacement *will* be published at
    /// (so snapshots can embed their own epoch), and returns the replacement
    /// plus an arbitrary result.
    pub fn update<R>(&self, f: impl FnOnce(&T, ReadEpoch) -> (T, R)) -> (ReadEpoch, R) {
        let _writer = self.writer.lock();
        let cur = self.current.read().clone();
        let (next, out) = f(&cur.value, cur.epoch.next());
        (self.install(Arc::new(next)), out)
    }

    /// Fallible [`update`](Self::update): if the closure errors, nothing is
    /// published and the epoch does not advance.
    pub fn try_update<R, E>(
        &self,
        f: impl FnOnce(&T, ReadEpoch) -> Result<(T, R), E>,
    ) -> Result<(ReadEpoch, R), E> {
        let _writer = self.writer.lock();
        let cur = self.current.read().clone();
        let (next, out) = f(&cur.value, cur.epoch.next())?;
        Ok((self.install(Arc::new(next)), out))
    }

    /// Swap in `value` at the next epoch. Caller must hold the writer mutex.
    fn install(&self, value: Arc<T>) -> ReadEpoch {
        let mut cur = self.current.write();
        let epoch = cur.epoch.next();
        *cur = Versioned { value, epoch };
        self.epoch.store(epoch.0, Ordering::Release);
        epoch
    }
}

impl<T: Default> Default for SnapshotCell<T> {
    fn default() -> Self {
        SnapshotCell::new(T::default())
    }
}

impl<T> fmt::Debug for SnapshotCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotCell")
            .field("epoch", &self.epoch())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn starts_at_epoch_zero_and_ticks_on_publish() {
        let cell = SnapshotCell::new(10u32);
        assert_eq!(cell.epoch(), ReadEpoch::ZERO);
        assert_eq!(*cell.load(), 10);

        assert_eq!(cell.publish(11), ReadEpoch(1));
        assert_eq!(cell.publish(12), ReadEpoch(2));
        assert_eq!(cell.epoch(), ReadEpoch(2));
        assert_eq!(*cell.load(), 12);
    }

    #[test]
    fn read_returns_a_consistent_pair() {
        let cell = SnapshotCell::new(0u64);
        for _ in 0..5 {
            let v = cell.read();
            // Value was constructed to equal the epoch it was published at.
            assert_eq!(*v.value, v.epoch.as_u64());
            let e = cell.epoch();
            cell.publish(e.as_u64() + 1);
        }
    }

    #[test]
    fn old_snapshots_survive_publication() {
        let cell = SnapshotCell::new(vec![1, 2, 3]);
        let old = cell.load();
        cell.publish(vec![9]);
        assert_eq!(*old, vec![1, 2, 3]);
        assert_eq!(*cell.load(), vec![9]);
    }

    #[test]
    fn update_sees_next_epoch_and_current_value() {
        let cell = SnapshotCell::new(100u64);
        let (epoch, prev) = cell.update(|cur, next| {
            assert_eq!(next, ReadEpoch(1));
            (cur + 1, *cur)
        });
        assert_eq!(epoch, ReadEpoch(1));
        assert_eq!(prev, 100);
        assert_eq!(*cell.load(), 101);
    }

    #[test]
    fn failed_try_update_publishes_nothing() {
        let cell = SnapshotCell::new(7u32);
        let r = cell.try_update(|_, _| Err::<(u32, ()), &str>("nope"));
        assert!(r.is_err());
        assert_eq!(cell.epoch(), ReadEpoch::ZERO);
        assert_eq!(*cell.load(), 7);

        let r: Result<_, &str> = cell.try_update(|cur, _| Ok((cur + 1, ())));
        assert_eq!(r.unwrap().0, ReadEpoch(1));
        assert_eq!(*cell.load(), 8);
    }

    #[test]
    fn concurrent_readers_never_observe_torn_pairs() {
        // Each published value equals its epoch; readers assert the pair
        // matches and that epochs are monotone per thread.
        let cell = Arc::new(SnapshotCell::new(0u64));
        let writers: Vec<_> = (0..2)
            .map(|_| {
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    for _ in 0..500 {
                        cell.update(|_, next| (next.as_u64(), ()));
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    let mut last = ReadEpoch::ZERO;
                    for _ in 0..2000 {
                        let v = cell.read();
                        assert_eq!(*v.value, v.epoch.as_u64(), "torn snapshot/epoch pair");
                        assert!(v.epoch >= last, "epoch went backwards");
                        last = v.epoch;
                    }
                })
            })
            .collect();
        for t in writers.into_iter().chain(readers) {
            t.join().unwrap();
        }
        assert_eq!(cell.epoch(), ReadEpoch(1000));
    }
}
