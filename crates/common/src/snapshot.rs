//! Epoch-versioned snapshot cells — the workspace-wide publication primitive.
//!
//! A [`SnapshotCell<T>`] holds an atomically swappable [`Arc`] to an immutable
//! snapshot of some state, plus a monotone [`ReadEpoch`] counter that ticks on
//! every publication. Readers resolve one `Arc` (and the epoch it was
//! published at) up front and then run entirely lock-free: a concurrent
//! publication swaps the cell to a new snapshot but never touches the one a
//! reader is already holding. Writers serialize among themselves on a
//! dedicated mutex so read-copy-update sequences ([`SnapshotCell::update`])
//! never lose updates, but they never block readers for longer than the
//! pointer swap itself.
//!
//! This is the shape `IndexCatalog` pioneered for ANN index hot-swaps;
//! hoisting it here lets the offline store, the embedding catalog, and the
//! index catalog all share one concurrency model (see DESIGN.md
//! "Concurrency model").

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

/// How many published snapshots a [`SnapshotCell`] retains by default (the
/// current one plus recent history) for skew monitoring and replication
/// catch-up. Configurable per cell via
/// [`SnapshotCell::set_history_depth`].
pub const DEFAULT_HISTORY_DEPTH: usize = 4;

/// A bounded ring of the most recent entries keyed by a monotone `u64`
/// (a [`ReadEpoch`] for snapshot history, a replication sequence number for
/// the publication log — both uses share this one structure).
///
/// Pushing past capacity evicts the oldest entry; pushing an existing key
/// replaces that entry in place, so at-least-once producers stay idempotent.
#[derive(Debug, Clone)]
pub struct EpochRing<V> {
    cap: usize,
    items: VecDeque<(u64, V)>,
}

impl<V> EpochRing<V> {
    /// An empty ring retaining at most `cap` entries (clamped to ≥ 1).
    pub fn new(cap: usize) -> Self {
        EpochRing {
            cap: cap.max(1),
            items: VecDeque::new(),
        }
    }

    /// Maximum number of retained entries.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Change the retention bound, evicting oldest entries if shrinking.
    pub fn set_capacity(&mut self, cap: usize) {
        self.cap = cap.max(1);
        while self.items.len() > self.cap {
            self.items.pop_front();
        }
    }

    /// Insert `value` under `key`. Keys must be pushed in non-decreasing
    /// order; re-pushing the newest key replaces its value.
    pub fn push(&mut self, key: u64, value: V) {
        if let Some(back) = self.items.back_mut() {
            debug_assert!(key >= back.0, "EpochRing keys must be monotone");
            if back.0 == key {
                back.1 = value;
                return;
            }
        }
        self.items.push_back((key, value));
        while self.items.len() > self.cap {
            self.items.pop_front();
        }
    }

    /// The entry published under `key`, if still retained.
    pub fn get(&self, key: u64) -> Option<&V> {
        self.items.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Newest retained entry.
    pub fn latest(&self) -> Option<(u64, &V)> {
        self.items.back().map(|(k, v)| (*k, v))
    }

    /// Key of the oldest retained entry.
    pub fn oldest_key(&self) -> Option<u64> {
        self.items.front().map(|(k, _)| *k)
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Oldest-to-newest iteration.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.items.iter().map(|(k, v)| (*k, v))
    }
}

/// A callback fired after every publication into a [`SnapshotCell`], with the
/// just-installed snapshot/epoch pair. A cell can carry several hooks (e.g.
/// replication *and* durability observing the same publish path); they run in
/// registration order under the cell's writer mutex (publication order ==
/// callback order) and must not publish back into the same cell.
pub type PublishHook<T> = Box<dyn Fn(&Versioned<T>) + Send + Sync>;

/// A monotone publication counter. Epoch `0` is the state a cell was
/// constructed with; every successful publication increments it by one.
///
/// Epochs are per-cell: comparing epochs from different cells is meaningless,
/// but within one cell `a < b` means snapshot `a` was published strictly
/// before snapshot `b`. Serving layers that aggregate several cells sum the
/// component epochs — the sum is still monotone under any publication.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ReadEpoch(pub u64);

impl ReadEpoch {
    /// The epoch of a freshly constructed cell (its initial value).
    pub const ZERO: ReadEpoch = ReadEpoch(0);

    /// The raw counter value.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// The epoch the *next* publication will be stamped with.
    pub fn next(self) -> ReadEpoch {
        ReadEpoch(self.0 + 1)
    }
}

impl fmt::Display for ReadEpoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A snapshot `Arc` paired with the epoch it was published at. The pair is
/// resolved atomically: `value` is exactly the snapshot that publication
/// `epoch` installed.
#[derive(Debug)]
pub struct Versioned<T> {
    pub value: Arc<T>,
    pub epoch: ReadEpoch,
}

// Manual impl: `Arc<T>` clones without `T: Clone`, and the derive would
// wrongly require it.
impl<T> Clone for Versioned<T> {
    fn clone(&self) -> Self {
        Versioned {
            value: Arc::clone(&self.value),
            epoch: self.epoch,
        }
    }
}

/// An atomically swappable `Arc` to an immutable snapshot, plus a monotone
/// epoch counter.
///
/// * Readers call [`load`](Self::load) or [`read`](Self::read); both take the
///   internal lock only long enough to clone an `Arc` and never block on a
///   writer building a new snapshot.
/// * Writers call [`publish`](Self::publish) to swap in a fully built value,
///   or [`update`](Self::update) / [`try_update`](Self::try_update) for
///   read-copy-update against the current snapshot. Writers are serialized on
///   a dedicated mutex, so an `update` closure always sees the latest
///   published value.
///
/// Snapshots must be immutable once published — the type system cannot
/// enforce this (readers get `Arc<T>`, not `&T`), so by convention `T`
/// exposes no interior mutability.
pub struct SnapshotCell<T> {
    /// The current snapshot and the epoch it was published at, swapped as a
    /// unit so readers always observe a consistent pair.
    current: RwLock<Versioned<T>>,
    /// Serializes writers (publication order == epoch order, and
    /// read-copy-update never loses a concurrent writer's work).
    writer: Mutex<()>,
    /// Mirror of the current epoch for lock-free [`epoch`](Self::epoch)
    /// queries; written only while holding the `current` write lock.
    epoch: AtomicU64,
    /// Recent publications (including the current one), keyed by epoch, for
    /// skew monitoring across epochs without re-materializing.
    history: Mutex<EpochRing<Arc<T>>>,
    /// Observers notified after each publication, in registration order
    /// (replication and durability both tap in here).
    hooks: Mutex<Vec<PublishHook<T>>>,
}

impl<T> SnapshotCell<T> {
    /// Create a cell holding `value` at [`ReadEpoch::ZERO`].
    pub fn new(value: T) -> Self {
        Self::from_arc(Arc::new(value))
    }

    /// Like [`new`](Self::new) but adopts an existing `Arc`.
    pub fn from_arc(value: Arc<T>) -> Self {
        let mut history = EpochRing::new(DEFAULT_HISTORY_DEPTH);
        history.push(0, Arc::clone(&value));
        SnapshotCell {
            current: RwLock::new(Versioned {
                value,
                epoch: ReadEpoch::ZERO,
            }),
            writer: Mutex::new(()),
            epoch: AtomicU64::new(0),
            history: Mutex::new(history),
            hooks: Mutex::new(Vec::new()),
        }
    }

    /// Resolve the current snapshot. O(1): an `Arc` clone under a read lock
    /// held for the duration of the clone only.
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.current.read().value)
    }

    /// Resolve the current snapshot together with the epoch it was published
    /// at, as one consistent pair.
    pub fn read(&self) -> Versioned<T> {
        self.current.read().clone()
    }

    /// The epoch of the most recent publication (lock-free).
    pub fn epoch(&self) -> ReadEpoch {
        ReadEpoch(self.epoch.load(Ordering::Acquire))
    }

    /// Publish a fully built snapshot, returning the epoch it was stamped
    /// with. Readers that resolved the previous snapshot keep it; new readers
    /// see the new one.
    pub fn publish(&self, value: T) -> ReadEpoch {
        self.publish_arc(Arc::new(value))
    }

    /// Like [`publish`](Self::publish) but adopts an existing `Arc`.
    pub fn publish_arc(&self, value: Arc<T>) -> ReadEpoch {
        let _writer = self.writer.lock();
        self.install(value)
    }

    /// Read-copy-update: build a replacement snapshot from the current one
    /// and publish it, all under the writer mutex. The closure receives the
    /// current snapshot and the epoch the replacement *will* be published at
    /// (so snapshots can embed their own epoch), and returns the replacement
    /// plus an arbitrary result.
    pub fn update<R>(&self, f: impl FnOnce(&T, ReadEpoch) -> (T, R)) -> (ReadEpoch, R) {
        let _writer = self.writer.lock();
        let cur = self.current.read().clone();
        let (next, out) = f(&cur.value, cur.epoch.next());
        (self.install(Arc::new(next)), out)
    }

    /// Fallible [`update`](Self::update): if the closure errors, nothing is
    /// published and the epoch does not advance.
    pub fn try_update<R, E>(
        &self,
        f: impl FnOnce(&T, ReadEpoch) -> Result<(T, R), E>,
    ) -> Result<(ReadEpoch, R), E> {
        let _writer = self.writer.lock();
        let cur = self.current.read().clone();
        let (next, out) = f(&cur.value, cur.epoch.next())?;
        Ok((self.install(Arc::new(next)), out))
    }

    /// How many publications the history ring retains.
    pub fn history_depth(&self) -> usize {
        self.history.lock().capacity()
    }

    /// Change the history ring's retention bound (oldest entries are evicted
    /// when shrinking).
    pub fn set_history_depth(&self, depth: usize) {
        self.history.lock().set_capacity(depth);
    }

    /// The retained publications, oldest to newest (the newest entry is the
    /// current snapshot). A skew monitor can diff "the epoch the trainer saw"
    /// against "the epoch serving sees" without re-materializing either.
    pub fn history(&self) -> Vec<Versioned<T>> {
        self.history
            .lock()
            .iter()
            .map(|(k, v)| Versioned {
                value: Arc::clone(v),
                epoch: ReadEpoch(k),
            })
            .collect()
    }

    /// Resolve the snapshot published at exactly `epoch`, if the history ring
    /// still retains it.
    pub fn at_epoch(&self, epoch: ReadEpoch) -> Option<Versioned<T>> {
        self.history.lock().get(epoch.0).map(|v| Versioned {
            value: Arc::clone(v),
            epoch,
        })
    }

    /// Install an observer fired after every publication (see
    /// [`PublishHook`]). Replaces any previously installed hooks; use
    /// [`add_publish_hook`](Self::add_publish_hook) to observe alongside
    /// existing observers.
    pub fn set_publish_hook(&self, hook: impl Fn(&Versioned<T>) + Send + Sync + 'static) {
        *self.hooks.lock() = vec![Box::new(hook)];
    }

    /// Install an *additional* observer without disturbing the ones already
    /// registered. Hooks fire in registration order, so e.g. a replication
    /// hook and a durability hook can both tap the same publish path.
    pub fn add_publish_hook(&self, hook: impl Fn(&Versioned<T>) + Send + Sync + 'static) {
        self.hooks.lock().push(Box::new(hook));
    }

    /// Remove every publication observer.
    pub fn clear_publish_hook(&self) {
        self.hooks.lock().clear();
    }

    /// Adopt `value` as the snapshot at `epoch` — the replication entry
    /// point, where the epoch is dictated by the leader rather than minted
    /// locally. Clamped so the cell's epoch never moves backwards; re-applying
    /// the current epoch (at-least-once delivery) replaces the snapshot in
    /// place. Returns the epoch actually installed.
    pub fn restore(&self, value: T, epoch: ReadEpoch) -> ReadEpoch {
        self.restore_arc(Arc::new(value), epoch)
    }

    /// Like [`restore`](Self::restore) but adopts an existing `Arc`.
    pub fn restore_arc(&self, value: Arc<T>, epoch: ReadEpoch) -> ReadEpoch {
        let _writer = self.writer.lock();
        let epoch = epoch.max(self.current.read().epoch);
        self.install_at(value, epoch)
    }

    /// Swap in `value` at the next epoch. Caller must hold the writer mutex.
    fn install(&self, value: Arc<T>) -> ReadEpoch {
        let next = self.current.read().epoch.next();
        self.install_at(value, next)
    }

    /// Swap in `value` stamped `epoch` (non-decreasing; caller must hold the
    /// writer mutex), record it in the history ring, then fire the publish
    /// hook after the `current` write guard is released.
    fn install_at(&self, value: Arc<T>, epoch: ReadEpoch) -> ReadEpoch {
        let installed = Versioned { value, epoch };
        {
            let mut cur = self.current.write();
            *cur = installed.clone();
            self.epoch.store(epoch.0, Ordering::Release);
        }
        self.history
            .lock()
            .push(epoch.0, Arc::clone(&installed.value));
        for hook in self.hooks.lock().iter() {
            hook(&installed);
        }
        epoch
    }
}

impl<T: Default> Default for SnapshotCell<T> {
    fn default() -> Self {
        SnapshotCell::new(T::default())
    }
}

impl<T> fmt::Debug for SnapshotCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotCell")
            .field("epoch", &self.epoch())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn starts_at_epoch_zero_and_ticks_on_publish() {
        let cell = SnapshotCell::new(10u32);
        assert_eq!(cell.epoch(), ReadEpoch::ZERO);
        assert_eq!(*cell.load(), 10);

        assert_eq!(cell.publish(11), ReadEpoch(1));
        assert_eq!(cell.publish(12), ReadEpoch(2));
        assert_eq!(cell.epoch(), ReadEpoch(2));
        assert_eq!(*cell.load(), 12);
    }

    #[test]
    fn read_returns_a_consistent_pair() {
        let cell = SnapshotCell::new(0u64);
        for _ in 0..5 {
            let v = cell.read();
            // Value was constructed to equal the epoch it was published at.
            assert_eq!(*v.value, v.epoch.as_u64());
            let e = cell.epoch();
            cell.publish(e.as_u64() + 1);
        }
    }

    #[test]
    fn old_snapshots_survive_publication() {
        let cell = SnapshotCell::new(vec![1, 2, 3]);
        let old = cell.load();
        cell.publish(vec![9]);
        assert_eq!(*old, vec![1, 2, 3]);
        assert_eq!(*cell.load(), vec![9]);
    }

    #[test]
    fn update_sees_next_epoch_and_current_value() {
        let cell = SnapshotCell::new(100u64);
        let (epoch, prev) = cell.update(|cur, next| {
            assert_eq!(next, ReadEpoch(1));
            (cur + 1, *cur)
        });
        assert_eq!(epoch, ReadEpoch(1));
        assert_eq!(prev, 100);
        assert_eq!(*cell.load(), 101);
    }

    #[test]
    fn failed_try_update_publishes_nothing() {
        let cell = SnapshotCell::new(7u32);
        let r = cell.try_update(|_, _| Err::<(u32, ()), &str>("nope"));
        assert!(r.is_err());
        assert_eq!(cell.epoch(), ReadEpoch::ZERO);
        assert_eq!(*cell.load(), 7);

        let r: Result<_, &str> = cell.try_update(|cur, _| Ok((cur + 1, ())));
        assert_eq!(r.unwrap().0, ReadEpoch(1));
        assert_eq!(*cell.load(), 8);
    }

    #[test]
    fn history_ring_retains_last_n_publications() {
        let cell = SnapshotCell::new(0u32);
        assert_eq!(cell.history_depth(), DEFAULT_HISTORY_DEPTH);
        for v in 1..=6u32 {
            cell.publish(v);
        }
        // Default depth 4: epochs 3..=6 retained, 0..=2 evicted.
        let hist = cell.history();
        assert_eq!(
            hist.iter().map(|v| v.epoch.as_u64()).collect::<Vec<_>>(),
            vec![3, 4, 5, 6]
        );
        assert_eq!(*cell.at_epoch(ReadEpoch(4)).unwrap().value, 4);
        assert!(cell.at_epoch(ReadEpoch(2)).is_none());

        cell.set_history_depth(2);
        assert_eq!(cell.history().len(), 2);
        assert_eq!(cell.at_epoch(ReadEpoch(6)).map(|v| *v.value), Some(6));
    }

    #[test]
    fn publish_hook_sees_every_publication_in_order() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let cell = SnapshotCell::new(0u64);
        {
            let seen = Arc::clone(&seen);
            cell.set_publish_hook(move |v| seen.lock().push((v.epoch.as_u64(), *v.value)));
        }
        cell.publish(10);
        cell.update(|cur, _| (cur + 1, ()));
        assert_eq!(*seen.lock(), vec![(1, 10), (2, 11)]);

        cell.clear_publish_hook();
        cell.publish(99);
        assert_eq!(seen.lock().len(), 2);
    }

    #[test]
    fn multiple_hooks_fire_in_registration_order() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let cell = SnapshotCell::new(0u64);
        for tag in ["repl", "durable"] {
            let seen = Arc::clone(&seen);
            cell.add_publish_hook(move |v| seen.lock().push((tag, v.epoch.as_u64())));
        }
        cell.publish(1);
        assert_eq!(*seen.lock(), vec![("repl", 1), ("durable", 1)]);

        // set_publish_hook replaces the whole set.
        {
            let seen = Arc::clone(&seen);
            cell.set_publish_hook(move |v| seen.lock().push(("only", v.epoch.as_u64())));
        }
        cell.publish(2);
        assert_eq!(seen.lock().last(), Some(&("only", 2)));
        assert_eq!(seen.lock().len(), 3);
    }

    #[test]
    fn restore_installs_at_explicit_epoch_and_never_regresses() {
        let cell = SnapshotCell::new(0u32);
        assert_eq!(cell.restore(5, ReadEpoch(7)), ReadEpoch(7));
        assert_eq!(cell.epoch(), ReadEpoch(7));
        assert_eq!(*cell.load(), 5);
        // Re-applying the same epoch (at-least-once) replaces in place.
        assert_eq!(cell.restore(6, ReadEpoch(7)), ReadEpoch(7));
        assert_eq!(*cell.load(), 6);
        // A stale epoch is clamped to the current one, never backwards.
        assert_eq!(cell.restore(9, ReadEpoch(3)), ReadEpoch(7));
        assert_eq!(cell.epoch(), ReadEpoch(7));
        assert_eq!(*cell.load(), 9);
        // Ordinary publication resumes from the restored epoch.
        assert_eq!(cell.publish(1), ReadEpoch(8));
    }

    #[test]
    fn epoch_ring_replaces_same_key_and_evicts_oldest() {
        let mut ring = EpochRing::new(3);
        assert!(ring.is_empty());
        for k in 1..=4u64 {
            ring.push(k, k * 10);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.oldest_key(), Some(2));
        assert_eq!(ring.get(1), None);
        ring.push(4, 99);
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.latest(), Some((4, &99)));
        ring.set_capacity(1);
        assert_eq!(ring.iter().map(|(k, _)| k).collect::<Vec<_>>(), vec![4]);
    }

    #[test]
    fn concurrent_readers_never_observe_torn_pairs() {
        // Each published value equals its epoch; readers assert the pair
        // matches and that epochs are monotone per thread.
        let cell = Arc::new(SnapshotCell::new(0u64));
        let writers: Vec<_> = (0..2)
            .map(|_| {
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    for _ in 0..500 {
                        cell.update(|_, next| (next.as_u64(), ()));
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    let mut last = ReadEpoch::ZERO;
                    for _ in 0..2000 {
                        let v = cell.read();
                        assert_eq!(*v.value, v.epoch.as_u64(), "torn snapshot/epoch pair");
                        assert!(v.epoch >= last, "epoch went backwards");
                        last = v.epoch;
                    }
                })
            })
            .collect();
        for t in writers.into_iter().chain(readers) {
            t.join().unwrap();
        }
        assert_eq!(cell.epoch(), ReadEpoch(1000));
    }
}
