//! # fstore-common
//!
//! Shared substrate for the `fstore` workspace: typed values and schemas,
//! timestamps and partition-date arithmetic, the workspace error type, a
//! deterministic random-number generator used by every workload generator,
//! the CRC-32 checksum every durable file format is guarded with,
//! and the statistics primitives (moments, histograms, quantile sketches,
//! divergence tests, mutual information) that both the feature-quality
//! metrics and the drift monitors are built on.
//!
//! Nothing in this crate knows about features, embeddings, or stores — it is
//! the bottom layer of the dependency graph in `DESIGN.md §1`.

pub mod crc;
pub mod error;
pub mod hash;
pub mod repl;
pub mod rng;
pub mod schema;
pub mod snapshot;
pub mod stats;
pub mod time;
pub mod value;
pub mod vector;

pub use crc::{crc32, crc32_update};
pub use error::{FsError, Result};
pub use repl::{ComponentKind, DeltaQuery, DeltaRecord, PubLog, DEFAULT_LOG_RETENTION};
pub use rng::{Rng, SplitMix64, Xoshiro256, Zipf};
pub use schema::{FieldDef, Schema};
pub use snapshot::{EpochRing, ReadEpoch, SnapshotCell, Versioned};
pub use time::{Date, Duration, SimClock, Timestamp};
pub use value::{EntityKey, Value, ValueType};
pub use vector::VectorBuf;
