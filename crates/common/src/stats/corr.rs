//! Correlation coefficients. Spearman's ρ is the rank-correlation used by
//! experiment E7 to quantify how well the eigenspace overlap score predicts
//! downstream accuracy (May et al.).

use crate::error::{FsError, Result};

/// Pearson correlation coefficient of two equal-length samples.
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return Err(FsError::InvalidArgument(format!(
            "pearson needs two equal-length samples of size >= 2 (got {} and {})",
            x.len(),
            y.len()
        )));
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
    for (&a, &b) in x.iter().zip(y) {
        let (dx, dy) = (a - mx, b - my);
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(FsError::InvalidArgument(
            "pearson undefined for constant input".into(),
        ));
    }
    Ok(sxy / (sxx * syy).sqrt())
}

/// Spearman rank correlation (Pearson over mid-ranks; ties get averaged ranks).
pub fn spearman(x: &[f64], y: &[f64]) -> Result<f64> {
    let rx = ranks(x);
    let ry = ranks(y);
    pearson(&rx, &ry)
}

/// Mid-ranks (1-based, ties averaged).
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_linear() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_validation() {
        assert!(pearson(&[1.0], &[1.0]).is_err());
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_err());
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v: &f64| v.exp()).collect();
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [10.0, 20.0, 20.0, 30.0];
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_average_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 5.0]), vec![2.0, 3.5, 3.5, 1.0]);
    }

    #[test]
    fn uncorrelated_near_zero() {
        use crate::rng::{Rng, Xoshiro256};
        let mut rng = Xoshiro256::seeded(31);
        let x: Vec<f64> = (0..5000).map(|_| rng.normal()).collect();
        let y: Vec<f64> = (0..5000).map(|_| rng.normal()).collect();
        assert!(pearson(&x, &y).unwrap().abs() < 0.05);
        assert!(spearman(&x, &y).unwrap().abs() < 0.05);
    }
}
