//! Fixed-range histograms used for PSI/chi-square drift tests and feature
//! distribution profiles.

use crate::error::{FsError, Result};

/// An equal-width histogram over `[lo, hi)` with explicit under/overflow
/// buckets, so that drifted live data falling outside the reference range is
/// still counted (a common failure of naive drift monitors).
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Result<Self> {
        if !(lo.is_finite() && hi.is_finite()) || lo >= hi {
            return Err(FsError::InvalidArgument(format!(
                "bad histogram range [{lo}, {hi})"
            )));
        }
        if buckets == 0 {
            return Err(FsError::InvalidArgument(
                "histogram needs at least 1 bucket".into(),
            ));
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            total: 0,
        })
    }

    /// Build from reference data with the range taken from its min/max
    /// (slightly widened so the max lands inside the last bucket).
    pub fn fit(data: &[f64], buckets: usize) -> Result<Self> {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in data {
            if x.is_finite() {
                lo = lo.min(x);
                hi = hi.max(x);
            }
        }
        if !lo.is_finite() {
            return Err(FsError::InvalidArgument(
                "histogram fit on empty/non-finite data".into(),
            ));
        }
        if lo == hi {
            hi = lo + 1.0;
        }
        let pad = (hi - lo) * 1e-9;
        let mut h = Histogram::new(lo, hi + pad.max(f64::MIN_POSITIVE), buckets)?;
        for &x in data {
            h.add(x);
        }
        Ok(h)
    }

    pub fn add(&mut self, x: f64) {
        self.total += 1;
        if x.is_nan() || x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    pub fn add_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// A fresh empty histogram with identical bucket boundaries — used to
    /// bucket live data against a reference's geometry.
    pub fn empty_like(&self) -> Histogram {
        Histogram {
            lo: self.lo,
            hi: self.hi,
            counts: vec![0; self.counts.len()],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    pub fn count(&self, bucket: usize) -> u64 {
        self.counts[bucket]
    }

    /// Counts including the under/overflow sentinel buckets, in the order
    /// `[underflow, b0, b1, …, overflow]`. This is the vector the PSI and
    /// chi-square tests consume.
    pub fn counts_with_tails(&self) -> Vec<u64> {
        let mut v = Vec::with_capacity(self.counts.len() + 2);
        v.push(self.underflow);
        v.extend_from_slice(&self.counts);
        v.push(self.overflow);
        v
    }

    /// Bucket proportions with tails, each floored at `eps` to keep
    /// log-ratios finite (standard PSI practice).
    pub fn proportions_with_tails(&self, eps: f64) -> Vec<f64> {
        let n = self.total.max(1) as f64;
        self.counts_with_tails()
            .iter()
            .map(|&c| (c as f64 / n).max(eps))
            .collect()
    }

    pub fn bucket_edges(&self, bucket: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (
            self.lo + bucket as f64 * w,
            self.lo + (bucket + 1) as f64 * w,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_construction() {
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 2).is_err());
        assert!(Histogram::fit(&[], 4).is_err());
        assert!(Histogram::fit(&[f64::NAN], 4).is_err());
    }

    #[test]
    fn buckets_values_in_range() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.add_all(&[0.0, 1.9, 2.0, 9.9]);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(4), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn tails_capture_outliers_and_nan() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.add_all(&[-5.0, 0.5, 2.0, f64::NAN, f64::INFINITY]);
        let tails = h.counts_with_tails();
        assert_eq!(tails[0], 2); // -5 and NaN underflow
        assert_eq!(*tails.last().unwrap(), 2); // 2.0 and +inf overflow
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn fit_covers_all_samples() {
        let data: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        let h = Histogram::fit(&data, 8).unwrap();
        assert_eq!(h.counts_with_tails()[0], 0);
        assert_eq!(*h.counts_with_tails().last().unwrap(), 0);
        assert_eq!(h.total(), 100);
    }

    #[test]
    fn fit_constant_data() {
        let h = Histogram::fit(&[3.0, 3.0, 3.0], 4).unwrap();
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts_with_tails().iter().sum::<u64>(), 3);
    }

    #[test]
    fn empty_like_shares_geometry() {
        let h = Histogram::fit(&[0.0, 10.0], 5).unwrap();
        let mut e = h.empty_like();
        assert_eq!(e.total(), 0);
        e.add(5.0);
        assert_eq!(e.total(), 1);
        assert_eq!(e.buckets(), h.buckets());
        assert_eq!(e.bucket_edges(0), h.bucket_edges(0));
    }

    #[test]
    fn proportions_floor_at_eps() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.add(0.1);
        let p = h.proportions_with_tails(1e-4);
        assert!(p.iter().all(|&x| x >= 1e-4));
        assert!((p[1] - 1.0).abs() < 1e-9);
    }
}
