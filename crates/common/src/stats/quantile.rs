//! Streaming quantile estimation with the P² (piecewise-parabolic) algorithm
//! (Jain & Chlamtac, 1985).
//!
//! The online store and the streaming aggregators need approximate quantiles
//! (p50/p95/p99 latencies, feature distribution percentiles) in O(1) memory;
//! P² maintains five markers and is accurate to well under a percentile on
//! smooth distributions.

/// P² estimator for a single quantile `q ∈ (0, 1)`.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (estimates); valid once `count >= 5`.
    heights: [f64; 5],
    /// Marker positions (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    count: usize,
    /// First five raw observations (used verbatim until initialized).
    warmup: [f64; 5],
}

impl P2Quantile {
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1), got {q}");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            warmup: [0.0; 5],
        }
    }

    pub fn count(&self) -> usize {
        self.count
    }

    pub fn push(&mut self, x: f64) {
        if self.count < 5 {
            self.warmup[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                self.warmup.sort_by(f64::total_cmp);
                self.heights = self.warmup;
            }
            return;
        }
        self.count += 1;

        // Find cell k such that heights[k] <= x < heights[k+1], adjusting extremes.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3 // top cell: only marker 5's position shifts
        } else {
            let mut k = 0;
            while k < 3 && x >= self.heights[k + 1] {
                k += 1;
            }
            k
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }

        // Adjust interior markers 1..=3 toward desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let parabolic = self.parabolic(i, d);
                let new_h = if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                    parabolic
                } else {
                    self.linear(i, d)
                };
                self.heights[i] = new_h;
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (hm, h, hp) = (self.heights[i - 1], self.heights[i], self.heights[i + 1]);
        let (nm, n, np) = (
            self.positions[i - 1],
            self.positions[i],
            self.positions[i + 1],
        );
        h + d / (np - nm)
            * ((n - nm + d) * (hp - h) / (np - n) + (np - n - d) * (h - hm) / (n - nm))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current estimate. For fewer than 5 observations, an exact small-sample
    /// quantile over what has been seen. `None` when empty.
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            n @ 1..=4 => {
                let mut xs = self.warmup[..n].to_vec();
                xs.sort_by(f64::total_cmp);
                let rank = (self.q * (n - 1) as f64).round() as usize;
                Some(xs[rank])
            }
            _ => Some(self.heights[2]),
        }
    }
}

/// Exact quantile of a slice (nearest-rank on a sorted copy). O(n log n);
/// used by tests and by offline (batch) profiles where exactness matters.
pub fn exact_quantile(data: &[f64], q: f64) -> Option<f64> {
    if data.is_empty() {
        return None;
    }
    let mut xs = data.to_vec();
    xs.sort_by(f64::total_cmp);
    let rank = (q * (xs.len() - 1) as f64).round() as usize;
    Some(xs[rank.min(xs.len() - 1)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, Xoshiro256};

    #[test]
    fn empty_and_warmup() {
        let mut p = P2Quantile::new(0.5);
        assert_eq!(p.estimate(), None);
        p.push(10.0);
        assert_eq!(p.estimate(), Some(10.0));
        p.push(2.0);
        p.push(6.0);
        // exact small-sample median of {2, 6, 10}
        assert_eq!(p.estimate(), Some(6.0));
    }

    #[test]
    fn median_of_uniform_stream() {
        let mut rng = Xoshiro256::seeded(11);
        let mut p = P2Quantile::new(0.5);
        for _ in 0..50_000 {
            p.push(rng.next_f64());
        }
        let est = p.estimate().unwrap();
        assert!((est - 0.5).abs() < 0.02, "median estimate {est}");
    }

    #[test]
    fn p99_of_exponential_stream() {
        let mut rng = Xoshiro256::seeded(12);
        let mut p = P2Quantile::new(0.99);
        let mut all = Vec::new();
        for _ in 0..50_000 {
            let x = rng.exponential(1.0);
            p.push(x);
            all.push(x);
        }
        let exact = exact_quantile(&all, 0.99).unwrap();
        let est = p.estimate().unwrap();
        assert!(
            (est - exact).abs() / exact < 0.1,
            "p99 est {est} vs exact {exact}"
        );
    }

    #[test]
    fn handles_sorted_input() {
        let mut p = P2Quantile::new(0.5);
        for i in 0..10_001 {
            p.push(i as f64);
        }
        let est = p.estimate().unwrap();
        assert!(
            (est - 5000.0).abs() < 300.0,
            "median of 0..10000 estimated {est}"
        );
    }

    #[test]
    fn tracks_extremes() {
        let mut p = P2Quantile::new(0.5);
        for &x in &[5.0, 1.0, 9.0, 3.0, 7.0, -100.0, 200.0] {
            p.push(x);
        }
        // extremes must widen the marker span
        assert!(p.heights[0] <= -100.0);
        assert!(p.heights[4] >= 200.0);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn rejects_out_of_range_q() {
        P2Quantile::new(1.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The estimate always lies within the observed range, and the
            /// median estimate is within a loose rank tolerance of exact.
            #[test]
            fn estimate_in_range_and_near_exact(
                xs in proptest::collection::vec(-1e4f64..1e4, 5..400),
            ) {
                let mut p = P2Quantile::new(0.5);
                for &x in &xs {
                    p.push(x);
                }
                let est = p.estimate().unwrap();
                let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(est >= lo && est <= hi, "estimate {est} outside [{lo}, {hi}]");
                // rank tolerance: est must be within the middle 60% of ranks
                let below = xs.iter().filter(|&&x| x <= est).count() as f64 / xs.len() as f64;
                prop_assert!((0.2..=0.8).contains(&below), "median rank {below}");
            }
        }
    }

    #[test]
    fn exact_quantile_basics() {
        assert_eq!(exact_quantile(&[], 0.5), None);
        assert_eq!(exact_quantile(&[3.0], 0.5), Some(3.0));
        assert_eq!(exact_quantile(&[1.0, 2.0, 3.0, 4.0, 5.0], 0.5), Some(3.0));
        assert_eq!(exact_quantile(&[1.0, 2.0, 3.0, 4.0, 5.0], 0.0), Some(1.0));
        assert_eq!(exact_quantile(&[1.0, 2.0, 3.0, 4.0, 5.0], 1.0), Some(5.0));
    }
}
