//! Streaming mean/variance/min/max via Welford's algorithm.

/// Numerically stable online accumulator of count, mean, variance, min, max.
///
/// Used by the offline store's zone maps, the feature-quality profiler and
/// the drift monitors' reference windows. Merging two accumulators is exact
/// (parallel Welford), which lets per-segment statistics roll up to
/// per-table statistics without a second pass.
#[derive(Debug, Clone, Default)]
pub struct OnlineMoments {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineMoments {
    pub fn new() -> Self {
        OnlineMoments {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn merge(&mut self, other: &OnlineMoments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by n). Zero for n < 2.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (divides by n-1). Zero for n < 2.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

impl FromIterator<f64> for OnlineMoments {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut m = OnlineMoments::new();
        for x in iter {
            m.push(x);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accumulator() {
        let m = OnlineMoments::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.min(), None);
        assert_eq!(m.variance(), 0.0);
    }

    #[test]
    fn matches_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let m: OnlineMoments = xs.iter().copied().collect();
        assert_eq!(m.count(), 8);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        assert!((m.variance() - 4.0).abs() < 1e-12);
        assert!((m.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(m.min(), Some(2.0));
        assert_eq!(m.max(), Some(9.0));
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let whole: OnlineMoments = xs.iter().copied().collect();
        let mut left: OnlineMoments = xs[..37].iter().copied().collect();
        let right: OnlineMoments = xs[37..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut m: OnlineMoments = [1.0, 2.0].into_iter().collect();
        m.merge(&OnlineMoments::new());
        assert_eq!(m.count(), 2);
        let mut e = OnlineMoments::new();
        e.merge(&m);
        assert_eq!(e.count(), 2);
        assert!((e.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn stable_for_large_offsets() {
        // Classic catastrophic-cancellation case: huge mean, tiny variance.
        let m: OnlineMoments = (0..1000).map(|i| 1e9 + (i % 2) as f64).collect();
        assert!(
            (m.variance() - 0.25).abs() < 1e-6,
            "variance {}",
            m.variance()
        );
    }

    #[test]
    fn sample_variance_uses_n_minus_one() {
        let m: OnlineMoments = [1.0, 3.0].into_iter().collect();
        assert!((m.variance() - 1.0).abs() < 1e-12);
        assert!((m.sample_variance() - 2.0).abs() < 1e-12);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Any split point gives the same merged statistics as the
            /// sequential accumulation (parallel-Welford exactness).
            #[test]
            fn merge_any_split_equals_sequential(
                xs in proptest::collection::vec(-1e6f64..1e6, 1..200),
                split_frac in 0.0f64..1.0,
            ) {
                let split = ((xs.len() as f64) * split_frac) as usize;
                let whole: OnlineMoments = xs.iter().copied().collect();
                let mut left: OnlineMoments = xs[..split].iter().copied().collect();
                let right: OnlineMoments = xs[split..].iter().copied().collect();
                left.merge(&right);
                prop_assert_eq!(left.count(), whole.count());
                prop_assert!((left.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
                prop_assert!((left.variance() - whole.variance()).abs() <= 1e-5 * (1.0 + whole.variance()));
            }

            /// Against the naive two-pass formulas.
            #[test]
            fn matches_two_pass(xs in proptest::collection::vec(-1e3f64..1e3, 2..100)) {
                let m: OnlineMoments = xs.iter().copied().collect();
                let n = xs.len() as f64;
                let mean = xs.iter().sum::<f64>() / n;
                let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
                prop_assert!((m.mean() - mean).abs() < 1e-8);
                prop_assert!((m.variance() - var).abs() < 1e-6 * (1.0 + var));
                prop_assert_eq!(m.min(), xs.iter().copied().min_by(f64::total_cmp));
                prop_assert_eq!(m.max(), xs.iter().copied().max_by(f64::total_cmp));
            }
        }
    }
}
