//! Two-sample divergence statistics: Kolmogorov–Smirnov, Population
//! Stability Index and chi-square. These are the *tabular* drift detectors
//! the paper says feature stores already run (§2.2.3) — and that experiment
//! E10 shows are blind to embedding-space drift.

use crate::error::{FsError, Result};

/// Two-sample Kolmogorov–Smirnov statistic: the supremum distance between
/// empirical CDFs. Returns a value in `[0, 1]`.
pub fn ks_statistic(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.is_empty() || b.is_empty() {
        return Err(FsError::InvalidArgument(
            "KS test requires non-empty samples".into(),
        ));
    }
    let mut xa = a.to_vec();
    let mut xb = b.to_vec();
    xa.sort_by(f64::total_cmp);
    xb.sort_by(f64::total_cmp);

    let (na, nb) = (xa.len() as f64, xb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < xa.len() && j < xb.len() {
        let x = xa[i].min(xb[j]);
        while i < xa.len() && xa[i] <= x {
            i += 1;
        }
        while j < xb.len() && xb[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    Ok(d)
}

/// Approximate p-value for the two-sample KS statistic via the asymptotic
/// Kolmogorov distribution: `Q(λ) = 2 Σ (-1)^{k-1} e^{-2k²λ²}`.
pub fn ks_p_value(d: f64, na: usize, nb: usize) -> f64 {
    let n_eff = (na as f64 * nb as f64) / (na + nb) as f64;
    let lambda = (n_eff.sqrt() + 0.12 + 0.11 / n_eff.sqrt()) * d;
    // The alternating series does not decay for λ → 0; Q(λ→0) = 1.
    if lambda < 0.3 {
        return 1.0;
    }
    let mut p = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        p += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * p).clamp(0.0, 1.0)
}

/// Population Stability Index between reference and live bucket proportions.
///
/// Both inputs must be positive proportion vectors of equal length (use
/// [`crate::stats::Histogram::proportions_with_tails`] with a small epsilon).
/// Industry rule of thumb: `< 0.1` stable, `0.1–0.25` moderate shift,
/// `> 0.25` major shift.
pub fn population_stability_index(reference: &[f64], live: &[f64]) -> Result<f64> {
    if reference.len() != live.len() || reference.is_empty() {
        return Err(FsError::InvalidArgument(format!(
            "PSI bucket mismatch: {} vs {}",
            reference.len(),
            live.len()
        )));
    }
    let mut psi = 0.0;
    for (&r, &l) in reference.iter().zip(live) {
        if r <= 0.0 || l <= 0.0 {
            return Err(FsError::InvalidArgument(
                "PSI proportions must be positive (floor them with eps)".into(),
            ));
        }
        psi += (l - r) * (l / r).ln();
    }
    Ok(psi)
}

/// Pearson chi-square statistic comparing observed counts against the
/// distribution of a reference sample (expected counts are the reference
/// proportions scaled to the observed total). Categories where both are zero
/// are skipped. Also returns the degrees of freedom used.
pub fn chi_square_stat(reference: &[u64], observed: &[u64]) -> Result<(f64, usize)> {
    if reference.len() != observed.len() || reference.is_empty() {
        return Err(FsError::InvalidArgument(
            "chi-square category mismatch".into(),
        ));
    }
    let ref_total: u64 = reference.iter().sum();
    let obs_total: u64 = observed.iter().sum();
    if ref_total == 0 || obs_total == 0 {
        return Err(FsError::InvalidArgument(
            "chi-square requires non-empty samples".into(),
        ));
    }
    let mut stat = 0.0;
    let mut dof = 0usize;
    for (&r, &o) in reference.iter().zip(observed) {
        if r == 0 && o == 0 {
            continue;
        }
        // Floor expected counts to avoid division blow-ups on empty reference cells.
        let expected = (r as f64 / ref_total as f64 * obs_total as f64).max(0.5);
        let diff = o as f64 - expected;
        stat += diff * diff / expected;
        dof += 1;
    }
    Ok((stat, dof.saturating_sub(1)))
}

/// Upper-tail probability of a chi-square distribution via the regularized
/// incomplete gamma function (series + continued fraction, Numerical-Recipes
/// style). Good to ~1e-8 for the dof ranges monitors use.
pub fn chi_square_p_value(stat: f64, dof: usize) -> f64 {
    if dof == 0 {
        return 1.0;
    }
    1.0 - lower_reg_gamma(dof as f64 / 2.0, stat / 2.0)
}

/// Regularized lower incomplete gamma P(a, x).
fn lower_reg_gamma(a: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut sum = 1.0 / a;
        let mut term = sum;
        let mut n = a;
        for _ in 0..500 {
            n += 1.0;
            term *= x / n;
            sum += term;
            if term.abs() < sum.abs() * 1e-14 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        // Continued fraction for Q(a,x), then P = 1 - Q.
        let mut b = x + 1.0 - a;
        let mut c = 1e308;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-14 {
                break;
            }
        }
        1.0 - h * (-x + a * x.ln() - ln_gamma(a)).exp()
    }
}

/// Lanczos log-gamma.
pub fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_7e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for g in G {
        y += 1.0;
        ser += g / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, Xoshiro256};

    #[test]
    fn ks_zero_for_identical_samples() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert!(ks_statistic(&a, &a).unwrap() < 1e-12);
    }

    #[test]
    fn ks_one_for_disjoint_samples() {
        let a = vec![0.0, 1.0, 2.0];
        let b = vec![10.0, 11.0];
        assert!((ks_statistic(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_detects_mean_shift() {
        let mut rng = Xoshiro256::seeded(21);
        let a: Vec<f64> = (0..2000).map(|_| rng.normal()).collect();
        let b: Vec<f64> = (0..2000).map(|_| rng.normal() + 1.0).collect();
        let same: Vec<f64> = (0..2000).map(|_| rng.normal()).collect();
        let d_shift = ks_statistic(&a, &b).unwrap();
        let d_same = ks_statistic(&a, &same).unwrap();
        assert!(d_shift > 0.3, "shifted KS {d_shift}");
        assert!(d_same < 0.06, "null KS {d_same}");
        assert!(ks_p_value(d_shift, 2000, 2000) < 1e-6);
        assert!(ks_p_value(d_same, 2000, 2000) > 0.01);
    }

    #[test]
    fn ks_rejects_empty() {
        assert!(ks_statistic(&[], &[1.0]).is_err());
    }

    #[test]
    fn psi_zero_for_identical_distributions() {
        let p = vec![0.25, 0.25, 0.25, 0.25];
        assert!(population_stability_index(&p, &p).unwrap().abs() < 1e-12);
    }

    #[test]
    fn psi_flags_major_shift() {
        let reference = vec![0.7, 0.2, 0.1];
        let live = vec![0.1, 0.2, 0.7];
        let psi = population_stability_index(&reference, &live).unwrap();
        assert!(psi > 0.25, "psi {psi}");
    }

    #[test]
    fn psi_input_validation() {
        assert!(population_stability_index(&[0.5, 0.5], &[1.0]).is_err());
        assert!(population_stability_index(&[0.0, 1.0], &[0.5, 0.5]).is_err());
    }

    #[test]
    fn chi_square_null_vs_shift() {
        let reference = vec![100u64, 100, 100, 100];
        let same = vec![95u64, 105, 102, 98];
        let shifted = vec![10u64, 20, 150, 220];
        let (s0, dof) = chi_square_stat(&reference, &same).unwrap();
        let (s1, _) = chi_square_stat(&reference, &shifted).unwrap();
        assert_eq!(dof, 3);
        assert!(
            chi_square_p_value(s0, dof) > 0.05,
            "null p too small: {}",
            s0
        );
        assert!(chi_square_p_value(s1, dof) < 1e-6);
    }

    #[test]
    fn chi_square_validation() {
        assert!(chi_square_stat(&[1, 2], &[1]).is_err());
        assert!(chi_square_stat(&[0, 0], &[0, 0]).is_err());
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(5) = 24
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-9);
        // Γ(0.5) = sqrt(pi)
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn chi_square_p_value_edges() {
        assert_eq!(chi_square_p_value(5.0, 0), 1.0);
        assert!((chi_square_p_value(0.0, 3) - 1.0).abs() < 1e-9);
        // Median of chi² with k dof is ≈ k(1-2/(9k))³.
        let k = 10.0f64;
        let median = k * (1.0 - 2.0 / (9.0 * k)).powi(3);
        let p = chi_square_p_value(median, 10);
        assert!((p - 0.5).abs() < 0.02, "p at median {p}");
    }
}
