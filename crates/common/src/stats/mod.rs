//! Statistics primitives shared by feature-quality metrics (E4) and drift
//! monitors (E10): streaming moments, histograms, quantile sketches,
//! two-sample tests, correlation, and mutual information.

pub mod corr;
pub mod histogram;
pub mod mi;
pub mod moments;
pub mod quantile;
pub mod two_sample;

pub use corr::{pearson, spearman};
pub use histogram::Histogram;
pub use mi::{
    discretize_equal_width, entropy, mutual_information, normalized_mutual_information,
    DiscretizeSpec,
};
pub use moments::OnlineMoments;
pub use quantile::{exact_quantile, P2Quantile};
pub use two_sample::{
    chi_square_p_value, chi_square_stat, ks_p_value, ks_statistic, population_stability_index,
};
