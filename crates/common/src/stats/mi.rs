//! Entropy and mutual information over discretized columns.
//!
//! The paper (§2.2.2) lists mutual information across features as a core
//! feature-quality metric: near-duplicate features show up as MI close to
//! the marginal entropy, and dead features as MI ≈ 0 with the label.

use crate::error::{FsError, Result};
use std::collections::HashMap;

/// How to discretize a continuous column before computing MI.
#[derive(Debug, Clone, Copy)]
pub struct DiscretizeSpec {
    pub bins: usize,
}

impl Default for DiscretizeSpec {
    fn default() -> Self {
        DiscretizeSpec { bins: 16 }
    }
}

/// Equal-width discretization of a numeric column into `spec.bins` bins.
/// Non-finite values map to a dedicated extra bin (`spec.bins`).
pub fn discretize_equal_width(xs: &[f64], spec: DiscretizeSpec) -> Result<Vec<usize>> {
    if spec.bins == 0 {
        return Err(FsError::InvalidArgument("discretize with 0 bins".into()));
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &x in xs {
        if x.is_finite() {
            lo = lo.min(x);
            hi = hi.max(x);
        }
    }
    if !lo.is_finite() {
        // All values non-finite: everything goes to the sentinel bin.
        return Ok(vec![spec.bins; xs.len()]);
    }
    let width = if hi > lo {
        (hi - lo) / spec.bins as f64
    } else {
        1.0
    };
    Ok(xs
        .iter()
        .map(|&x| {
            if !x.is_finite() {
                spec.bins
            } else {
                (((x - lo) / width) as usize).min(spec.bins - 1)
            }
        })
        .collect())
}

/// Shannon entropy (nats) of a discrete sample.
pub fn entropy(labels: &[usize]) -> f64 {
    if labels.is_empty() {
        return 0.0;
    }
    let mut counts: HashMap<usize, u64> = HashMap::new();
    for &l in labels {
        *counts.entry(l).or_default() += 1;
    }
    let n = labels.len() as f64;
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum()
}

/// Mutual information (nats) between two aligned discrete samples.
pub fn mutual_information(a: &[usize], b: &[usize]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(FsError::InvalidArgument(format!(
            "MI requires aligned samples ({} vs {})",
            a.len(),
            b.len()
        )));
    }
    if a.is_empty() {
        return Ok(0.0);
    }
    let n = a.len() as f64;
    let mut joint: HashMap<(usize, usize), u64> = HashMap::new();
    let mut ma: HashMap<usize, u64> = HashMap::new();
    let mut mb: HashMap<usize, u64> = HashMap::new();
    for (&x, &y) in a.iter().zip(b) {
        *joint.entry((x, y)).or_default() += 1;
        *ma.entry(x).or_default() += 1;
        *mb.entry(y).or_default() += 1;
    }
    let mut mi = 0.0;
    for (&(x, y), &c) in &joint {
        let pxy = c as f64 / n;
        let px = ma[&x] as f64 / n;
        let py = mb[&y] as f64 / n;
        mi += pxy * (pxy / (px * py)).ln();
    }
    Ok(mi.max(0.0))
}

/// Normalized mutual information in `[0, 1]`:
/// `MI / sqrt(H(a) · H(b))`, with 0 when either side is constant.
pub fn normalized_mutual_information(a: &[usize], b: &[usize]) -> Result<f64> {
    let (ha, hb) = (entropy(a), entropy(b));
    if ha == 0.0 || hb == 0.0 {
        return Ok(0.0);
    }
    Ok((mutual_information(a, b)? / (ha * hb).sqrt()).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_basics() {
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[1, 1, 1]), 0.0);
        let h = entropy(&[0, 1, 0, 1]);
        assert!((h - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn mi_of_identical_is_entropy() {
        let xs = vec![0, 1, 2, 0, 1, 2, 0, 0];
        let mi = mutual_information(&xs, &xs).unwrap();
        assert!((mi - entropy(&xs)).abs() < 1e-12);
        assert!((normalized_mutual_information(&xs, &xs).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mi_of_independent_is_near_zero() {
        use crate::rng::{Rng, Xoshiro256};
        let mut rng = Xoshiro256::seeded(41);
        let a: Vec<usize> = (0..10_000).map(|_| rng.below(4) as usize).collect();
        let b: Vec<usize> = (0..10_000).map(|_| rng.below(4) as usize).collect();
        let mi = mutual_information(&a, &b).unwrap();
        assert!(mi < 0.01, "independent MI {mi}");
        assert!(normalized_mutual_information(&a, &b).unwrap() < 0.01);
    }

    #[test]
    fn mi_constant_column_is_zero() {
        let a = vec![7usize; 100];
        let b: Vec<usize> = (0..100).map(|i| i % 3).collect();
        assert!(mutual_information(&a, &b).unwrap() < 1e-12);
        assert_eq!(normalized_mutual_information(&a, &b).unwrap(), 0.0);
    }

    #[test]
    fn mi_validates_alignment() {
        assert!(mutual_information(&[1, 2], &[1]).is_err());
    }

    #[test]
    fn discretize_maps_range_to_bins() {
        let xs = [0.0, 0.5, 1.0, 1.5, 2.0];
        let bins = discretize_equal_width(&xs, DiscretizeSpec { bins: 4 }).unwrap();
        assert_eq!(bins, vec![0, 1, 2, 3, 3]);
    }

    #[test]
    fn discretize_handles_nan_and_constant() {
        let xs = [1.0, f64::NAN, 1.0];
        let bins = discretize_equal_width(&xs, DiscretizeSpec { bins: 3 }).unwrap();
        assert_eq!(bins[1], 3); // sentinel bin
        assert_eq!(bins[0], bins[2]);

        let all_nan = [f64::NAN, f64::INFINITY];
        let b = discretize_equal_width(&all_nan, DiscretizeSpec { bins: 2 }).unwrap();
        assert_eq!(b, vec![2, 2]);
    }

    #[test]
    fn mi_detects_functional_dependence_after_discretize() {
        let xs: Vec<f64> = (0..1000).map(|i| i as f64 / 100.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        let bx = discretize_equal_width(&xs, DiscretizeSpec::default()).unwrap();
        let by = discretize_equal_width(&ys, DiscretizeSpec::default()).unwrap();
        let nmi = normalized_mutual_information(&bx, &by).unwrap();
        assert!(nmi > 0.95, "functional NMI {nmi}");
    }
}
