//! Feature serving over the network: put the in-process `FeatureServer`
//! behind a TCP socket, query it concurrently, and read the serving
//! metrics.
//!
//! The server is the production-shaped stack from `fstore::serve`:
//! connection threads frame a compact binary protocol, a bounded queue
//! applies admission control, and a worker pool coalesces concurrent
//! single-entity lookups into batch serves.
//!
//! Run with: `cargo run --example feature_service`

use fstore::embed::EmbeddingProvenance;
use fstore::prelude::*;
use fstore::serve::{fixed_clock, start};
use std::sync::Arc;

fn main() -> Result<()> {
    println!("== fstore-serve: the network serving layer ==\n");

    // ------------------------------------------------------------------
    // Populate an online store and an embedding catalog.
    // ------------------------------------------------------------------
    let online = Arc::new(OnlineStore::new(64));
    let mut rng = Xoshiro256::seeded(42);
    for i in 0..1_000 {
        let key = EntityKey::new(format!("u{i}"));
        online.put(
            "user",
            &key,
            "score",
            Value::Float(rng.normal()),
            Timestamp::millis(9_000),
        );
        online.put(
            "user",
            &key,
            "clicks",
            Value::Int(i % 50),
            Timestamp::millis(9_500),
        );
    }
    let mut table = EmbeddingTable::new(16)?;
    for i in 0..200 {
        let v: Vec<f32> = (0..16).map(|_| rng.normal() as f32).collect();
        table.insert(format!("u{i}"), v)?;
    }
    let mut catalog = EmbeddingStore::new();
    let qualified = catalog.publish(
        "user_emb",
        table,
        EmbeddingProvenance::default(),
        Timestamp::millis(9_000),
    )?;
    println!("online store: 1000 entities × 2 features; embeddings: {qualified}");

    // ------------------------------------------------------------------
    // Start the server on a loopback port.
    // ------------------------------------------------------------------
    let engine = ServeEngine::new(
        FeatureServer::new(Arc::clone(&online)).with_max_age(Duration::seconds(5)),
        fixed_clock(Timestamp::millis(10_000)),
    )
    .with_embedding_catalog(catalog);
    let handle = start(
        engine,
        ServeConfig {
            workers: 4,
            queue_depth: 128,
            max_batch: 16,
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = handle.addr();
    println!("serving on {addr} (4 workers, queue depth 128)\n");

    // ------------------------------------------------------------------
    // Hit it from concurrent client threads.
    // ------------------------------------------------------------------
    let clients: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = FeatureClient::connect(addr).expect("connect");
                for i in 0..250 {
                    let id = (t * 250 + i) % 1_000;
                    let v = client
                        .get_features("user", &format!("u{id}"), &["score", "clicks"])
                        .expect("serve");
                    assert_eq!(v.values.len(), 2);
                    if id < 200 && i % 10 == 0 {
                        let e = client
                            .get_embedding("user_emb", &format!("u{id}"))
                            .expect("embed");
                        assert_eq!(e.vector.len(), 16);
                        assert_eq!(e.version, 1);
                    }
                }
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }

    let metrics = handle.metrics();
    println!(
        "server-side metrics after 1000+ requests:\n{}",
        metrics.dump_json()
    );

    handle.shutdown();
    println!("\ngraceful shutdown: queue drained, workers joined");
    Ok(())
}
