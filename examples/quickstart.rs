//! Quickstart: one pass through Figure 1 of the paper.
//!
//! The figure shows the modern ML pipeline — (1) Training Data →
//! (2) Model Training & Deployment → (3) Model Maintenance & Monitoring —
//! with the feature-store challenges on top and the embedding-ecosystem
//! challenges on the bottom. This example drives a single record of data
//! through every stage and prints what each subsystem did.
//!
//! Run with: `cargo run --example quickstart`

use fstore::prelude::*;

fn main() -> Result<()> {
    println!("== Figure 1 walkthrough: the modern ML pipeline ==\n");

    // ------------------------------------------------------------------
    // Stage 1 — Training Data: ingest raw data, author & publish features
    // ------------------------------------------------------------------
    println!("[1] Training Data");
    let mut fs = FeatureStore::new(Timestamp::EPOCH);
    fs.create_source_table(
        "trips",
        TableConfig::new(Schema::of(&[
            ("user_id", ValueType::Str),
            ("ts", ValueType::Timestamp),
            ("fare", ValueType::Float),
            ("surge", ValueType::Float),
        ]))
        .with_time_column("ts"),
    )?;
    let mut rng = Xoshiro256::seeded(7);
    let mut rows = Vec::new();
    for i in 0..2000 {
        let user = format!("u{}", i % 100);
        let ts = Timestamp::millis(i * 15_000); // a trip every 15 s
        let fare = 8.0 + rng.normal().abs() * 12.0;
        let surge = if rng.chance(0.2) { 1.5 } else { 1.0 };
        rows.push(vec![
            Value::from(user),
            Value::Timestamp(ts),
            Value::Float(fare),
            Value::Float(surge),
        ]);
    }
    fs.ingest("trips", &rows)?;
    println!("    ingested 2000 raw trips for 100 users");

    // Feature authoring & publishing: definitional metadata + expression.
    let def = fs.publish(
        FeatureSpec::new("avg_effective_fare_1d", "user_id", "trips", "fare * surge")
            .aggregated(AggFunc::Avg, Duration::days(1))
            .cadence(Duration::hours(1))
            .owner("pricing-team")
            .describe("1-day average surge-adjusted fare")
            .tag("pricing"),
    )?;
    println!(
        "    published feature {} (type {}, inputs {:?})",
        def.qualified_name(),
        def.value_type,
        def.inputs
    );

    // ------------------------------------------------------------------
    // Stage 2 — Model Training & Deployment
    // ------------------------------------------------------------------
    println!("\n[2] Model Training & Deployment");
    // Advance the simulated clock past the data; the scheduler materializes.
    fs.advance(Duration::hours(9))?;
    let now = fs.now();
    let runs = fs.materialize_now("avg_effective_fare_1d")?;
    println!(
        "    materialized `{}` for {} entities at {}",
        runs.feature, runs.entities, runs.ran_at
    );

    // Leakage-free training set via point-in-time join.
    let set_now = fs.now();
    fs.registry_mut()
        .register_set("churn_v1", &["avg_effective_fare_1d"], set_now)?;
    let labels: Vec<LabelEvent> = (0..100)
        .map(|i| LabelEvent::new(format!("u{i}"), now, f64::from(u8::from(i % 3 == 0))))
        .collect();
    let training = fs.training_set("churn_v1", &labels)?;
    let (xs, ys) = training.feature_matrix(0.0);
    let ys: Vec<usize> = ys
        .iter()
        .map(|v| v.as_f64().unwrap_or(0.0) as usize)
        .collect();
    println!(
        "    built PIT training set: {} rows × {} features",
        xs.len(),
        xs[0].len()
    );

    let model = LogisticRegression::train(&xs, &ys, &TrainConfig::default())?;
    println!(
        "    trained churn model, train accuracy {:.2}",
        model.accuracy(&xs, &ys)?
    );

    // Store the artifact for provenance.
    let mut artifact = fstore::core::modelstore::artifact("churn", model.to_json()?);
    artifact.feature_set = "churn_v1".into();
    artifact.training_range = (Timestamp::EPOCH, now);
    let saved = fs.models_mut().save(artifact)?;
    println!("    stored model artifact {}", saved.qualified_name());

    // Online serving.
    let vector = fs.server().serve(
        "user_id",
        &EntityKey::new("u3"),
        &["avg_effective_fare_1d"],
        now,
    )?;
    println!(
        "    served u3 features {:?} (age {:?} ms)",
        vector.values,
        vector.ages[0].map(|a| a.as_millis())
    );

    // ------------------------------------------------------------------
    // Stage 3 — Model Maintenance & Monitoring
    // ------------------------------------------------------------------
    println!("\n[3] Model Maintenance & Monitoring");
    let online = fs.online();
    let report = {
        // one immutable snapshot of the warehouse; no lock held while scanning
        let off = fs.offline_snapshot();
        skew_report(
            &off,
            &online,
            "avg_effective_fare_1d",
            1,
            "user_id",
            fstore::monitor::drift::DriftThresholds::default(),
        )?
    };
    println!(
        "    training/serving skew: {:?} (train rows {}, serving rows {})",
        report.alert, report.training_rows, report.serving_rows
    );

    // ------------------------------------------------------------------
    // Bottom row of Figure 1 — the embedding ecosystem, in miniature
    // ------------------------------------------------------------------
    println!(
        "\n[embedding ecosystem] self-supervised pretraining → versioned store → quality metrics"
    );
    let corpus = Corpus::generate(CorpusConfig {
        vocab: 300,
        topics: 6,
        sentences: 800,
        sentence_len: 10,
        seed: 11,
        ..CorpusConfig::default()
    })?;
    let (table_v1, prov) = fstore::embed::sgns::train_sgns(
        &corpus,
        SgnsConfig {
            dim: 24,
            epochs: 2,
            seed: 1,
            ..SgnsConfig::default()
        },
    )?;
    let mut emb_store = EmbeddingStore::new();
    let q1 = emb_store.publish("entities", table_v1, prov, now)?;
    println!(
        "    published {q1} over a {}-entity corpus",
        corpus.config.vocab
    );

    // retrain (seed change) → new version → measure version churn
    let (table_v2, prov2) = fstore::embed::sgns::train_sgns(
        &corpus,
        SgnsConfig {
            dim: 24,
            epochs: 2,
            seed: 2,
            ..SgnsConfig::default()
        },
    )?;
    let q2 = emb_store.publish("entities", table_v2, prov2, now)?;
    let v1 = &emb_store.get("entities", 1)?.table;
    let v2 = &emb_store.get("entities", 2)?.table;
    println!(
        "    {q2}: knn-overlap@10 vs v1 = {:.3}, eigenspace overlap = {:.3}, displacement = {:.3}",
        knn_overlap(v1, v2, 10, None)?,
        eigenspace_overlap(v1, v2)?,
        semantic_displacement(v1, v2)?
    );

    println!("\nPipeline complete — every Figure-1 stage exercised.");
    Ok(())
}
