//! Replication quickstart: a leader serving all four components, a
//! follower that bootstraps from a full snapshot and tracks the leader
//! through the publication log, and proof that a converged follower
//! answers byte-for-byte like the leader.
//!
//! The flow mirrors production: wrap the components in a `ReplLeader`
//! (which hooks every snapshot-cell publish into an epoch-tagged delta
//! log), start its server, then point `Follower::bootstrap` at the
//! leader's address. A background sync loop keeps the follower within
//! the retention window; if it ever lags past it, it recovers by
//! re-pulling a full snapshot.
//!
//! Run with: `cargo run --example follower_serving`

use fstore::embed::{EmbeddingProvenance, EmbeddingTable};
use fstore::prelude::*;
use fstore::repl::{Follower, LeaderParts, ReplLeader};
use fstore::serve::{fixed_clock, start, Request};
use std::sync::Arc;

const NOW: Timestamp = Timestamp(10_000);

fn main() -> Result<()> {
    println!("== fstore-repl: epoch-consistent follower serving ==\n");

    // ------------------------------------------------------------------
    // Leader: seed an offline table, embeddings + ANN index, and online
    // features. Publications from here on are logged for followers.
    // ------------------------------------------------------------------
    let leader = ReplLeader::new(LeaderParts::new());
    leader.parts().offline.write(|s| {
        s.create_table(
            "events",
            TableConfig::new(Schema::of(&[("n", ValueType::Int)])),
        )?;
        for i in 0..50 {
            s.append("events", &[Value::Int(i)])?;
        }
        Ok(())
    })?;

    let mut table = EmbeddingTable::new(8)?;
    let mut rng = Xoshiro256::seeded(7);
    for i in 0..100 {
        let v: Vec<f32> = (0..8).map(|_| rng.normal() as f32).collect();
        table.insert(format!("u{i}"), v)?;
    }
    leader
        .parts()
        .embeddings
        .publish("user_emb", table, EmbeddingProvenance::default(), NOW)?;
    leader.parts().indexes.build("user_emb", &IndexSpec::Flat)?;

    // Online writes go through the leader so they reach the log too.
    for i in 0..100 {
        leader
            .put_online(
                "user",
                &EntityKey::new(format!("u{i}")),
                &[("score", Value::Float(i as f64 / 100.0))],
                NOW,
            )
            .unwrap();
    }

    let leader_handle =
        start(leader.engine(fixed_clock(NOW)), ServeConfig::default()).expect("bind leader");
    println!(
        "leader serving on {} at replication epoch {}",
        leader_handle.addr(),
        leader.log().last_seq()
    );

    // ------------------------------------------------------------------
    // Follower: one call bootstraps the full snapshot; the sync loop
    // replays deltas as the leader keeps publishing.
    // ------------------------------------------------------------------
    let follower = Arc::new(Follower::bootstrap(leader_handle.addr().to_string())?);
    println!(
        "follower bootstrapped at epoch {} (lag {})",
        follower.applied_epoch(),
        follower.lag()
    );
    let sync = follower.start_sync(std::time::Duration::from_millis(2));

    // The leader keeps moving: more online writes and a fresh embedding
    // version, all flowing to the follower as deltas.
    for i in 0..20 {
        leader
            .put_online(
                "user",
                &EntityKey::new(format!("u{i}")),
                &[("score", Value::Float(0.5 + i as f64))],
                NOW,
            )
            .unwrap();
    }
    let mut table = EmbeddingTable::new(8)?;
    for i in 0..100 {
        let v: Vec<f32> = (0..8).map(|d| (i + d) as f32 * 0.1).collect();
        table.insert(format!("u{i}"), v)?;
    }
    leader
        .parts()
        .embeddings
        .publish("user_emb", table, EmbeddingProvenance::default(), NOW)?;
    leader.parts().indexes.build("user_emb", &IndexSpec::Flat)?;

    // Converged means the follower applied the leader's actual last seq —
    // `lag()` alone reflects the previous exchange and can be stale for a
    // poll interval after a publish.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while follower.applied_epoch() != leader.log().last_seq()
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    sync.stop();
    println!(
        "follower converged: epoch {} = leader {}, {} fallbacks",
        follower.applied_epoch(),
        leader.log().last_seq(),
        follower.fallbacks()
    );

    // ------------------------------------------------------------------
    // A converged follower is indistinguishable on the wire: same
    // values, same echoed epochs, byte-for-byte.
    // ------------------------------------------------------------------
    let follower_handle =
        start(follower.engine(fixed_clock(NOW)), ServeConfig::default()).expect("bind follower");
    let mut to_leader = FeatureClient::connect(leader_handle.addr()).expect("connect leader");
    let mut to_follower = FeatureClient::connect(follower_handle.addr()).expect("connect follower");
    let requests = [
        Request::GetFeatures {
            group: "user".into(),
            entity: "u7".into(),
            features: vec!["score".into()],
        },
        Request::GetEmbedding {
            table: "user_emb".into(),
            key: "u42".into(),
        },
        Request::SearchNearest {
            table: "user_emb".into(),
            query: vec![1.0; 8],
            k: 5,
            options: SearchOptions::default(),
        },
    ];
    for request in &requests {
        let a = to_leader.call(request).expect("leader answers");
        let b = to_follower.call(request).expect("follower answers");
        assert_eq!(a.encode(), b.encode(), "follower diverged on {request:?}");
    }
    println!(
        "\nleader and follower answered {} endpoints byte-identically",
        requests.len()
    );

    let v = to_follower
        .get_features("user", "u7", &["score"])
        .expect("follower serves");
    println!(
        "follower-served u7.score = {:?} at epoch {}",
        v.values[0], v.epoch
    );

    follower_handle.shutdown();
    leader_handle.shutdown();
    println!("\nboth servers drained and shut down");
    Ok(())
}
