//! Bootleg-style named entity disambiguation (paper §3.1.1).
//!
//! The task: given a *mention* (a bag of context entities from one topic)
//! and a candidate set (the true entity + distractors), pick the right
//! candidate by embedding similarity. Orr et al. showed structured
//! knowledge-graph signals lift rare-entity F1 by tens of points while
//! barely moving the popular head; this example reproduces that shape by
//! comparing plain SGNS embeddings against KG-augmented ones, sliced by
//! popularity band.
//!
//! Run with: `cargo run --example entity_disambiguation --release`

use fstore::embed::kg::train_kg_sgns;
use fstore::embed::sgns::train_sgns;
use fstore::prelude::*;

/// A disambiguation example: context entity ids, candidates, gold index.
struct Mention {
    context: Vec<usize>,
    candidates: Vec<usize>,
    gold: usize, // index into candidates
}

/// Generate mentions: gold entity sampled Zipf-style, context = same-topic
/// entities, distractors = other-topic entities.
fn make_mentions(corpus: &Corpus, n: usize, seed: u64) -> Vec<Mention> {
    let mut rng = Xoshiro256::seeded(seed);
    let zipf = Zipf::new(corpus.config.vocab, corpus.config.zipf_alpha);
    let vocab = corpus.config.vocab;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let gold_entity = zipf.sample(&mut rng);
        let topic = corpus.topic_of[gold_entity];
        // 4 context entities from the same topic (excluding the gold)
        let peers: Vec<usize> = (0..vocab)
            .filter(|&e| corpus.topic_of[e] == topic && e != gold_entity)
            .collect();
        if peers.len() < 4 {
            continue;
        }
        let context: Vec<usize> = (0..4).map(|_| *rng.choose(&peers)).collect();
        // 4 distractors from other topics
        let mut candidates = vec![gold_entity];
        while candidates.len() < 5 {
            let d = rng.below(vocab as u64) as usize;
            if corpus.topic_of[d] != topic {
                candidates.push(d);
            }
        }
        rng.shuffle(&mut candidates);
        let gold = candidates.iter().position(|&c| c == gold_entity).unwrap();
        out.push(Mention {
            context,
            candidates,
            gold,
        });
    }
    out
}

/// Disambiguate by cosine(candidate, mean(context)); returns accuracy per
/// popularity band (band 0 = head) and overall.
fn evaluate(
    table: &EmbeddingTable,
    corpus: &Corpus,
    mentions: &[Mention],
    bands: usize,
) -> (Vec<f64>, f64) {
    let band_of = {
        let popularity = corpus.popularity_bands(bands);
        let mut map = vec![0usize; corpus.config.vocab];
        for (b, members) in popularity.iter().enumerate() {
            for &e in members {
                map[e] = b;
            }
        }
        map
    };
    let mut hit = vec![0usize; bands];
    let mut tot = vec![0usize; bands];
    for m in mentions {
        // mean context vector
        let dim = table.dim();
        let mut ctx = vec![0.0f64; dim];
        for &c in &m.context {
            for (x, &v) in ctx
                .iter_mut()
                .zip(table.get(&Corpus::entity_name(c)).unwrap())
            {
                *x += f64::from(v);
            }
        }
        let best = m
            .candidates
            .iter()
            .enumerate()
            .max_by(|(_, &a), (_, &b)| {
                let ca = cosine_to(table, a, &ctx);
                let cb = cosine_to(table, b, &ctx);
                ca.total_cmp(&cb)
            })
            .map(|(i, _)| i)
            .unwrap();
        let gold_entity = m.candidates[m.gold];
        let band = band_of[gold_entity];
        tot[band] += 1;
        if best == m.gold {
            hit[band] += 1;
        }
    }
    let per_band: Vec<f64> = hit
        .iter()
        .zip(&tot)
        .map(|(&h, &t)| {
            if t == 0 {
                f64::NAN
            } else {
                h as f64 / t as f64
            }
        })
        .collect();
    let overall = hit.iter().sum::<usize>() as f64 / tot.iter().sum::<usize>().max(1) as f64;
    (per_band, overall)
}

fn cosine_to(table: &EmbeddingTable, entity: usize, ctx: &[f64]) -> f64 {
    let v = table.get(&Corpus::entity_name(entity)).unwrap();
    let (mut dot, mut nv, mut nc) = (0.0, 0.0, 0.0);
    for (&x, &c) in v.iter().zip(ctx) {
        dot += f64::from(x) * c;
        nv += f64::from(x) * f64::from(x);
        nc += c * c;
    }
    if nv == 0.0 || nc == 0.0 {
        0.0
    } else {
        dot / (nv.sqrt() * nc.sqrt())
    }
}

fn main() -> Result<()> {
    // A starved tail: few sentences, strong skew — co-occurrence alone
    // cannot place rare entities.
    let corpus = Corpus::generate(CorpusConfig {
        vocab: 500,
        topics: 10,
        sentences: 400,
        sentence_len: 8,
        zipf_alpha: 1.4,
        topic_coherence: 0.9,
        seed: 33,
    })?;
    let mentions = make_mentions(&corpus, 3_000, 77);
    println!(
        "NED task: {} mentions, 5 candidates each, 5 popularity bands\n",
        mentions.len()
    );

    let base = SgnsConfig {
        dim: 32,
        epochs: 4,
        seed: 3,
        ..SgnsConfig::default()
    };
    let (plain, _) = train_sgns(&corpus, base.clone())?;
    let (kg, _) = train_kg_sgns(
        &corpus,
        KgSgnsConfig {
            base,
            kg_pairs_per_entity: 8,
            ..KgSgnsConfig::default()
        },
    )?;

    let bands = 5;
    let (acc_plain, overall_plain) = evaluate(&plain, &corpus, &mentions, bands);
    let (acc_kg, overall_kg) = evaluate(&kg, &corpus, &mentions, bands);

    println!(
        "{:<18} {:>10} {:>10} {:>8}",
        "popularity band", "SGNS", "KG-SGNS", "lift"
    );
    for b in 0..bands {
        let name = match b {
            0 => "0 (head)".to_string(),
            b if b == bands - 1 => format!("{b} (tail)"),
            b => b.to_string(),
        };
        println!(
            "{:<18} {:>10.3} {:>10.3} {:>+8.3}",
            name,
            acc_plain[b],
            acc_kg[b],
            acc_kg[b] - acc_plain[b]
        );
    }
    println!(
        "{:<18} {:>10.3} {:>10.3} {:>+8.3}",
        "overall",
        overall_plain,
        overall_kg,
        overall_kg - overall_plain
    );
    println!(
        "\nThe paper's claim (Orr et al.): structured KG signals rescue the tail\n\
         — the lift concentrates in the rare bands, as shown above."
    );
    Ok(())
}
