//! Ride-sharing feature store scenario (the workload class the paper's
//! authors built Michelangelo for).
//!
//! Demonstrates, on one synthetic ride-sharing dataset:
//!  1. streaming features with the dual-write sink (online + offline log);
//!  2. why point-in-time joins matter: a naive latest-value join leaks the
//!     future and inflates offline accuracy;
//!  3. feature-quality monitoring catching an injected null storm and a
//!     frozen feed.
//!
//! Run with: `cargo run --example ride_sharing`

use fstore::core::quality::ColumnProfile;
use fstore::core::quality::{FeatureQualityReport, QualityThresholds};
use fstore::monitor::drift::DriftThresholds;
use fstore::prelude::*;
use std::sync::Arc;

fn main() -> Result<()> {
    // ------------------------------------------------------------------
    // 1. Streaming features: trip events → windowed counts, dual-written
    // ------------------------------------------------------------------
    println!("== streaming features ==");
    let online = Arc::new(OnlineStore::default());
    let offline = OfflineDb::new();
    let agg = StreamAggregator::new(
        "trips_15m",
        AggFunc::Count,
        WindowSpec::sliding(Duration::minutes(15), Duration::minutes(5)),
        Duration::minutes(1),
    )?;
    let pipeline = StreamPipeline::new(agg, "driver", Arc::clone(&online), offline.clone())?;
    let rt = StreamRuntime::spawn(pipeline, 256);

    let mut rng = Xoshiro256::seeded(42);
    let tx = rt.sender();
    let mut t = Timestamp::EPOCH;
    for _ in 0..4_000 {
        t += Duration::seconds(rng.exponential(1.0 / 30.0) as i64 + 1); // ~1 trip / 30 s
        let driver = format!("d{}", rng.below(40));
        tx.send(Event::new(driver, t, 1.0))
            .map_err(|_| FsError::Stream("send".into()))?;
    }
    drop(tx);
    let report = rt.shutdown()?;
    println!(
        "    {} events → {} windows emitted, {} late-dropped, {} online writes",
        report.events_in, report.windows_emitted, report.late_dropped, report.online_writes
    );
    let e = online.get("driver", &EntityKey::new("d0"), "trips_15m");
    println!("    d0 current 15m trip count: {:?}", e.map(|e| e.value));

    // ------------------------------------------------------------------
    // 2. PIT vs naive join: a feature that drifts upward over time
    // ------------------------------------------------------------------
    println!("\n== point-in-time join vs naive latest join ==");
    offline.write(|off| {
        off.create_table(
            "feat__driver_rating_v1",
            TableConfig::new(
                Schema::new(vec![
                    FieldDef::not_null("entity", ValueType::Str),
                    FieldDef::not_null("ts", ValueType::Timestamp),
                    FieldDef::new("value", ValueType::Float),
                ])
                .unwrap(),
            )
            .with_time_column("ts"),
        )?;
        // rating trends upward: late values are systematically higher
        for day in 0..30 {
            for d in 0..40 {
                let base = 3.0 + day as f64 * 0.05;
                off.append(
                    "feat__driver_rating_v1",
                    &[
                        Value::from(format!("d{d}")),
                        Value::Timestamp(Date::from_days(day).start()),
                        Value::Float(base + rng.normal() * 0.1),
                    ],
                )?;
            }
        }
        Ok(())
    })?;
    // labels live at day 10; "future" ratings exist up to day 29
    let labels: Vec<LabelEvent> = (0..40)
        .map(|d| {
            LabelEvent::new(
                format!("d{d}"),
                Date::from_days(10).end(),
                f64::from(u8::from(d % 2 == 0)),
            )
        })
        .collect();
    let feats = [PitFeature::materialized("driver_rating", 1)];
    let off = offline.snapshot();
    let pit = point_in_time_join(&off, &labels, &feats)?;
    let naive = naive_latest_join(&off, &labels, &feats)?;
    let mean = |ts: &fstore::core::TrainingSet| {
        let (xs, _) = ts.feature_matrix(0.0);
        xs.iter().map(|r| r[0]).sum::<f64>() / xs.len() as f64
    };
    println!("    mean joined rating at day-10 labels:");
    println!(
        "      PIT   join: {:.3}  (values as of day 10 — correct)",
        mean(&pit)
    );
    println!(
        "      naive join: {:.3}  (day-29 values leaked into day-10 rows!)",
        mean(&naive)
    );
    drop(off);

    // ------------------------------------------------------------------
    // 3. Feature quality: null storm + frozen feed detection
    // ------------------------------------------------------------------
    println!("\n== feature-quality monitoring ==");
    let healthy: Vec<Value> = (0..500).map(|i| Value::Float(f64::from(i % 50))).collect();
    let mut storm = healthy.clone();
    for v in storm.iter_mut().take(200) {
        *v = Value::Null; // upstream feed broke: 40% nulls
    }
    let reference = vec![ColumnProfile::of_values("eta_gps_quality", &healthy)];
    let live = vec![ColumnProfile::of_values("eta_gps_quality", &storm)];
    let mut issues = Vec::new();
    FeatureQualityReport::check_null_spikes(
        &reference,
        &live,
        &QualityThresholds::default(),
        &mut issues,
    );

    // frozen feed: one feature stopped updating 12 hours ago
    let now = Timestamp::EPOCH + Duration::hours(24);
    online.put(
        "driver",
        &EntityKey::new("d0"),
        "license_check",
        Value::Bool(true),
        now - Duration::hours(12),
    );
    FeatureQualityReport::check_frozen_feeds(
        &online,
        "driver",
        &[
            ("license_check", Duration::hours(1)),
            ("trips_15m", Duration::days(30)),
        ],
        now,
        &QualityThresholds::default(),
        &mut issues,
    );
    for issue in &issues {
        println!("    ALERT: {issue:?}");
    }

    // and a tabular drift monitor over the same feed
    let ref_vals: Vec<f64> = (0..500).map(|i| f64::from(i % 50)).collect();
    let drifted: Vec<f64> = ref_vals.iter().map(|v| v * 1.8 + 10.0).collect();
    let monitor = DriftMonitor::fit("eta_gps_quality", &ref_vals, DriftThresholds::default())?;
    println!(
        "    drift on healthy window:  {:?}",
        monitor.alert_level(&ref_vals)?
    );
    println!(
        "    drift on drifted window:  {:?}",
        monitor.alert_level(&drifted)?
    );

    Ok(())
}
