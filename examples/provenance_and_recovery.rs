//! Provenance and recovery: the reproducibility story (paper §2.2.2,
//! "relevant parameters and artifacts need to be stored for provenance and
//! reproducibility").
//!
//! Demonstrates:
//!  1. the registry's versioned feature definitions + JSON export;
//!  2. the model store's full artifacts (params, feature-set pins,
//!     embedding lineage, seed, data range) with export/import round trip;
//!  3. offline-store snapshots: save the warehouse, lose it, restore it,
//!     and rebuild the exact same training set;
//!  4. embedding provenance: version ancestry after a patch.
//!
//! Run with: `cargo run --example provenance_and_recovery`

use fstore::embed::sgns::train_sgns;
use fstore::prelude::*;

fn main() -> Result<()> {
    // ------------------------------------------------------------------
    // A working feature store with one materialized feature
    // ------------------------------------------------------------------
    let mut fs = FeatureStore::new(Timestamp::EPOCH);
    fs.create_source_table(
        "orders",
        TableConfig::new(Schema::of(&[
            ("customer", ValueType::Str),
            ("ts", ValueType::Timestamp),
            ("total", ValueType::Float),
        ]))
        .with_time_column("ts"),
    )?;
    let mut rng = Xoshiro256::seeded(3);
    let rows: Vec<Vec<Value>> = (0..300)
        .map(|i| {
            vec![
                Value::from(format!("c{}", i % 30)),
                Value::Timestamp(Timestamp::millis(i * 120_000)),
                Value::Float(20.0 + rng.exponential(0.1)),
            ]
        })
        .collect();
    fs.ingest("orders", &rows)?;
    fs.publish(
        FeatureSpec::new("avg_order_1d", "customer", "orders", "total")
            .aggregated(AggFunc::Avg, Duration::days(1))
            .cadence(Duration::hours(1))
            .owner("growth-team")
            .tag("ltv"),
    )?;
    fs.advance(Duration::hours(10))?;

    // ------------------------------------------------------------------
    // 1. Registry export: every published definition, fully reproducible
    // ------------------------------------------------------------------
    println!("== registry export ==");
    let registry_json = fs.registry().export_json()?;
    println!(
        "    {} bytes of definitions; avg_order_1d expression: {:?}",
        registry_json.len(),
        fs.registry().get("avg_order_1d")?.expression
    );

    // ------------------------------------------------------------------
    // 2. Model artifacts with full lineage, exported and re-imported
    // ------------------------------------------------------------------
    println!("\n== model store round trip ==");
    let now = fs.now();
    fs.registry_mut()
        .register_set("ltv_v1", &["avg_order_1d"], now)?;
    let labels: Vec<LabelEvent> = (0..30)
        .map(|c| LabelEvent::new(format!("c{c}"), now, f64::from(u8::from(c % 2 == 0))))
        .collect();
    let training = fs.training_set("ltv_v1", &labels)?;
    let (xs, ys_vals) = training.feature_matrix(0.0);
    let ys: Vec<usize> = ys_vals
        .iter()
        .map(|v| v.as_f64().unwrap() as usize)
        .collect();
    let model = LogisticRegression::train(&xs, &ys, &TrainConfig::default().with_seed(42))?;

    let mut artifact = fstore::core::modelstore::artifact("ltv", model.to_json()?);
    artifact.feature_set = "ltv_v1".into();
    artifact.features = fs.registry().get_set("ltv_v1")?.features.clone();
    artifact.training_range = (Timestamp::EPOCH, now);
    artifact.seed = 42;
    artifact
        .metrics
        .insert("train_acc".into(), model.accuracy(&xs, &ys)?);
    let saved = fs.models_mut().save(artifact)?;
    println!(
        "    saved {} (feature pins {:?})",
        saved.qualified_name(),
        saved.features
    );

    let exported = fs.models().export_json("ltv")?;
    let mut other_store = fstore::core::ModelStore::new();
    other_store.import_json(&exported)?;
    let restored_model = LogisticRegression::from_json(&other_store.latest("ltv")?.params)?;
    assert_eq!(
        restored_model.predict_batch(&xs)?,
        model.predict_batch(&xs)?
    );
    println!("    re-imported artifact reproduces identical predictions ✓");

    // ------------------------------------------------------------------
    // 3. Warehouse snapshot → disaster → restore → identical training set
    // ------------------------------------------------------------------
    println!("\n== offline snapshot & restore ==");
    let off = fs.offline_snapshot();
    let snapshot = off.snapshot_json()?;
    println!(
        "    snapshot: {} bytes covering {:?}",
        snapshot.len(),
        off.table_names()
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
    );
    // "disaster": a brand-new process restores the warehouse…
    let restored = OfflineStore::from_snapshot_json(&snapshot)?;
    // …and rebuilds the exact same PIT training set from the pins.
    let feats = [PitFeature::materialized("avg_order_1d", 1)];
    let rebuilt = point_in_time_join(&restored, &labels, &feats)?;
    assert_eq!(rebuilt.rows, training.rows);
    println!("    restored warehouse reproduces the training set row-for-row ✓");

    // ------------------------------------------------------------------
    // 4. Embedding ancestry across a patch
    // ------------------------------------------------------------------
    println!("\n== embedding provenance ==");
    let corpus = Corpus::generate(CorpusConfig {
        vocab: 200,
        topics: 5,
        sentences: 400,
        sentence_len: 10,
        seed: 7,
        ..CorpusConfig::default()
    })?;
    let (table, prov) = train_sgns(
        &corpus,
        SgnsConfig {
            dim: 16,
            epochs: 1,
            ..SgnsConfig::default()
        },
    )?;
    let mut store = EmbeddingStore::new();
    store.publish("cust_emb", table, prov, now)?;
    store.register_consumer("cust_emb@v1", "ltv")?;
    let patched = EmbeddingPatcher::default().patch_toward_exemplars(
        &mut store,
        "cust_emb",
        &["e199".into()],
        &["e0".into(), "e5".into()],
        now,
    )?;
    let v2 = store.resolve(&patched)?;
    println!(
        "    {}: trainer={}, parent=v{}, notes={:?}",
        patched,
        v2.provenance.trainer,
        v2.provenance.parent.unwrap(),
        v2.provenance.notes
    );
    println!(
        "    consumers of v1 to re-verify after the patch: {:?}",
        store.consumers("cust_emb@v1")?
    );

    println!("\nEvery artifact in the pipeline is versioned, exportable, and replayable.");
    Ok(())
}
