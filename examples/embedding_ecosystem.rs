//! The embedding ecosystem lifecycle (paper §3): pretrain → publish →
//! serve at scale → consume downstream → retrain → measure churn →
//! compress under a memory budget → monitor for semantic drift → patch.
//!
//! Run with: `cargo run --example embedding_ecosystem --release`

use fstore::embed::sgns::train_sgns;
use fstore::monitor::drift::EmbeddingDriftThresholds;
use fstore::prelude::*;

fn main() -> Result<()> {
    // ------------------------------------------------------------------
    // Pretrain on self-supervised data and publish to the embedding store
    // ------------------------------------------------------------------
    println!("== pretrain & publish ==");
    let corpus = Corpus::generate(CorpusConfig {
        vocab: 800,
        topics: 16,
        sentences: 3_000,
        sentence_len: 12,
        seed: 5,
        ..CorpusConfig::default()
    })?;
    let cfg = SgnsConfig {
        dim: 32,
        epochs: 3,
        seed: 1,
        ..SgnsConfig::default()
    };
    let (v1, prov) = train_sgns(&corpus, cfg.clone())?;
    let mut store = EmbeddingStore::new();
    let q1 = store.publish("ent", v1, prov, Timestamp::EPOCH)?;
    println!(
        "    published {q1}: {} entities × {} dims",
        store.latest("ent")?.table.len(),
        32
    );

    // ------------------------------------------------------------------
    // Serve at scale: ANN indexes over the table
    // ------------------------------------------------------------------
    println!("\n== similarity serving (E9 in miniature) ==");
    let table = &store.latest("ent")?.table;
    let keys = table.keys();
    let mut data: Vec<Vec<f32>> = keys
        .iter()
        .map(|k| table.get(k).unwrap().to_vec())
        .collect();
    fstore::index::normalize_all(&mut data); // cosine = L2 on unit vectors
    let flat = FlatIndex::build(data.clone())?;
    let hnsw = HnswIndex::build(data.clone(), HnswConfig::default())?;
    let ivf = IvfIndex::build(
        data.clone(),
        IvfConfig {
            nlist: 32,
            nprobe: 4,
            ..IvfConfig::default()
        },
    )?;
    let queries: Vec<Vec<f32>> = data.iter().step_by(40).cloned().collect();
    println!(
        "    recall@10  flat {:.3}  hnsw {:.3}  ivf(nprobe=4) {:.3}",
        recall_at_k(&flat, &flat, &queries, 10, &SearchParams::default())?,
        recall_at_k(&hnsw, &flat, &queries, 10, &SearchParams::default())?,
        recall_at_k(&ivf, &flat, &queries, 10, &SearchParams::default())?
    );

    // ------------------------------------------------------------------
    // Downstream consumer: topic classifier on embedding features
    // ------------------------------------------------------------------
    println!("\n== downstream consumers ==");
    let features = |t: &EmbeddingTable| -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for e in 0..corpus.config.vocab {
            xs.push(t.get_f64(&Corpus::entity_name(e)).unwrap());
            ys.push(corpus.topic_of[e]);
        }
        (xs, ys)
    };
    let t1_ref = store.latest("ent")?.table.clone();
    let (xs, ys) = features(&t1_ref);
    let model_v1 = SoftmaxRegression::train(&xs, &ys, 16, &TrainConfig::default())?;
    println!(
        "    topic classifier on {q1}: accuracy {:.3}",
        model_v1.accuracy(&xs, &ys)?
    );
    store.register_consumer(&q1, "topic_classifier")?;

    // ------------------------------------------------------------------
    // Retrain → version churn → downstream instability (Leszczynski)
    // ------------------------------------------------------------------
    println!("\n== retrain & measure churn ==");
    let (v2, prov2) = train_sgns(
        &corpus,
        SgnsConfig {
            seed: 2,
            ..cfg.clone()
        },
    )?;
    let q2 = store.publish("ent", v2, prov2, Timestamp::millis(1))?;
    let t1 = store.get("ent", 1)?.table.clone();
    let t2 = store.get("ent", 2)?.table.clone();
    println!("    {q2} vs {q1}:");
    println!(
        "      knn overlap@10        {:.3}",
        knn_overlap(&t1, &t2, 10, None)?
    );
    println!(
        "      eigenspace overlap    {:.3}",
        eigenspace_overlap(&t1, &t2)?
    );
    println!(
        "      semantic displacement {:.3}",
        semantic_displacement(&t1, &t2)?
    );

    let (xs2, _) = features(&t2);
    let model_v2 = SoftmaxRegression::train(&xs2, &ys, 16, &TrainConfig::default())?;
    let p1 = model_v1.predict_batch(&xs)?;
    let p2 = model_v2.predict_batch(&xs2)?;
    println!(
        "      downstream instability (prediction flips): {:.3}",
        prediction_flips(&p1, &p2)?
    );

    // ------------------------------------------------------------------
    // Compression under a memory budget (May et al.)
    // ------------------------------------------------------------------
    println!("\n== compression ==");
    for bits in [2u8, 4, 8] {
        let q = QuantizedTable::quantize(&t2, bits)?;
        let dq = q.dequantize()?;
        let overlap = eigenspace_overlap(&t2, &dq)?;
        let (xq, _) = features(&dq);
        let mq = SoftmaxRegression::train(&xq, &ys, 16, &TrainConfig::default())?;
        println!(
            "    {bits}-bit: payload {:>6} B, eigenspace overlap {:.3}, downstream accuracy {:.3}",
            q.payload_bytes(),
            overlap,
            mq.accuracy(&xq, &ys)?
        );
    }
    let pca = PcaModel::fit(&t2, 8)?;
    let reduced = pca.transform_table(&t2)?;
    println!(
        "    PCA 32→8: explained variance {:.3}, eigenspace overlap {:.3}",
        pca.explained_variance,
        eigenspace_overlap(&t2, &reduced)?
    );

    // ------------------------------------------------------------------
    // Monitor embedding drift, then patch a bad subpopulation
    // ------------------------------------------------------------------
    println!("\n== drift & patching ==");
    let sample: Vec<Vec<f64>> = (0..200)
        .map(|e| t2.get_f64(&Corpus::entity_name(e)).unwrap())
        .collect();
    let monitor = EmbeddingDriftMonitor::fit("ent", &sample, EmbeddingDriftThresholds::default())?;
    // live window: same entities, but the upstream encoder changed — every
    // vector shifted along one semantic direction (marginals barely move)
    let live: Vec<Vec<f64>> = sample
        .iter()
        .map(|v| {
            let mut v = v.clone();
            v[0] += 1.5;
            v
        })
        .collect();
    println!(
        "    drift vs same entities:      {:?}",
        monitor.alert_level(&sample)?
    );
    println!(
        "    drift vs shifted population: {:?}",
        monitor.alert_level(&live)?
    );

    // patch the 5 least-stable tail entities toward their topic exemplars
    let tail_band = corpus.popularity_bands(10).pop().unwrap();
    let bad: Vec<String> = tail_band
        .iter()
        .take(5)
        .map(|&e| Corpus::entity_name(e))
        .collect();
    let topic = corpus.topic_of[tail_band[0]];
    let exemplars: Vec<String> = (0..corpus.config.vocab)
        .filter(|&e| corpus.topic_of[e] == topic)
        .take(5)
        .map(Corpus::entity_name)
        .collect();
    let patched = EmbeddingPatcher::default().patch_toward_exemplars(
        &mut store,
        "ent",
        &bad,
        &exemplars,
        Timestamp::millis(2),
    )?;
    let v3 = store.resolve(&patched)?;
    println!(
        "    published {} (parent v{}): {}",
        patched,
        v3.provenance.parent.unwrap_or_default(),
        v3.provenance.notes
    );
    Ok(())
}
