//! Sharding quickstart: a three-shard cluster behind one scatter-gather
//! router, a TCP router front that ordinary clients cannot tell from a
//! single server, and a leader kill absorbed by failover plus
//! control-plane promotion.
//!
//! The flow mirrors production: start N shard leaders (each a
//! `ReplLeader` with a follower), hand their endpoints to a `ShardMap`,
//! and read through a `RouterClient` — point reads route by key, batches
//! split by shard and merge back in caller order, ANN searches scatter
//! to every shard and merge per-shard top-k into a global top-k. When a
//! leader dies, reads fail over to the follower instantly; the control
//! plane notices within its probe threshold and publishes a promoted
//! map.
//!
//! Run with: `cargo run --example shard_cluster`

use fstore::embed::{EmbeddingProvenance, EmbeddingTable};
use fstore::prelude::*;
use fstore::serve::fixed_clock;
use fstore::shard::start_router;

const NOW: Timestamp = Timestamp(30_000);
const DIM: usize = 8;
const USERS: usize = 30;
const EMB_KEYS: usize = 60;

fn vector_for(i: usize) -> Vec<f32> {
    (0..DIM).map(|d| i as f32 * 0.1 + d as f32 * 0.01).collect()
}

fn main() -> Result<()> {
    println!("== fstore-shard: scatter-gather routing over 3 shards ==\n");

    // ------------------------------------------------------------------
    // A 3-shard cluster, one follower per shard, all on real sockets.
    // ------------------------------------------------------------------
    let mut cluster = ShardCluster::start(
        ClusterConfig {
            shards: 3,
            followers: 1,
            ..ClusterConfig::default()
        },
        fixed_clock(NOW),
    )?;
    println!(
        "cluster up: {} shards, map version {}",
        cluster.shard_count(),
        cluster.map().version()
    );

    // Seed online features: the cluster routes each write to the leader
    // that owns the key, so reads route back to the same shard.
    for u in 0..USERS {
        cluster.put_online(
            "user",
            &EntityKey::new(format!("u{u}")),
            &[("score", Value::Float(u as f64 * 0.5))],
            NOW,
        )?;
    }

    // Seed a partitioned embedding table: each shard's leader gets
    // exactly the keys the map assigns it, then an ANN index per slice.
    for shard in cluster.map().shards() {
        let mut table = EmbeddingTable::new(DIM)?;
        for i in 0..EMB_KEYS {
            let key = format!("e{i:04}");
            if cluster.shard_for(&key) == shard.id {
                table.insert(key, vector_for(i))?;
            }
        }
        let owned = table.len();
        let leader = cluster.leader(shard.id);
        leader
            .parts()
            .embeddings
            .publish("emb", table, EmbeddingProvenance::default(), NOW)?;
        leader.parts().indexes.build("emb", &IndexSpec::Flat)?;
        println!("  {} owns {owned}/{EMB_KEYS} embedding keys", shard.id);
    }
    assert!(
        cluster.wait_converged(std::time::Duration::from_secs(10)),
        "followers converged"
    );

    // ------------------------------------------------------------------
    // One router, one API: point reads route by key, batches split by
    // shard, searches scatter everywhere and merge.
    // ------------------------------------------------------------------
    let mut router = cluster.router();
    let v = router
        .get_features("user", "u7", &["score"])
        .expect("routed read");
    println!(
        "\nu7.score = {:?} (lives on {})",
        v.values[0],
        cluster.shard_for("u7")
    );

    let entities: Vec<String> = (0..USERS).map(|u| format!("u{u}")).collect();
    let refs: Vec<&str> = entities.iter().map(String::as_str).collect();
    let batch = router
        .get_features_batch("user", &refs, &["score"])
        .expect("routed batch");
    assert!(batch
        .iter()
        .enumerate()
        .all(|(u, v)| v.entity == format!("u{u}")));
    println!(
        "batch of {} split by shard, merged in caller order",
        batch.len()
    );

    let near = router
        .search_nearest("emb", &vector_for(12), 5, SearchOptions::default())
        .expect("scattered search");
    println!(
        "global top-5 around e0012: {:?}",
        near.hits.iter().map(|h| h.key.as_str()).collect::<Vec<_>>()
    );

    // ------------------------------------------------------------------
    // The TCP front: an ordinary FeatureClient cannot tell the router
    // from a single shard server.
    // ------------------------------------------------------------------
    let front = start_router("127.0.0.1:0", cluster.control(), Default::default())
        .expect("bind router front");
    let mut client = FeatureClient::connect(front.addr()).expect("connect to router");
    let v = client
        .get_features("user", "u19", &["score"])
        .expect("read through the front");
    println!(
        "\nTCP front on {} answered u19.score = {:?}",
        front.addr(),
        v.values[0]
    );

    // ------------------------------------------------------------------
    // Kill a leader mid-flight. Reads keep answering through the
    // follower; two missed probes later the control plane promotes.
    // ------------------------------------------------------------------
    let victim = cluster.shard_for("u7");
    let dead = cluster.kill_leader(victim);
    println!("\nkilled {victim} leader at {dead}");

    let v = router
        .get_features("user", "u7", &["score"])
        .expect("failover read");
    println!("u7.score still answers via failover: {:?}", v.values[0]);

    let control = cluster.control();
    assert!(
        control.probe_once().is_empty(),
        "one strike is not an outage"
    );
    let events = control.probe_once();
    println!(
        "control plane promoted {} follower(s); map version {} -> {}",
        events.len(),
        events[0].map_version - 1,
        control.map().version()
    );

    // Data-plane promotion: the follower becomes a replication leader and
    // writes resume against its replicated state.
    cluster.promote_local(victim);
    cluster.put_online(
        "user",
        &EntityKey::new("u7"),
        &[("score", Value::Float(777.0))],
        NOW,
    )?;
    let v = router
        .get_features("user", "u7", &["score"])
        .expect("post-promotion read");
    println!(
        "post-promotion write visible through the router: {:?}",
        v.values[0]
    );
    assert_eq!(v.values, vec![Value::Float(777.0)]);

    front.shutdown();
    cluster.shutdown();
    println!("\ncluster drained and shut down");
    Ok(())
}
