//! Durability quickstart: a leader whose every publication is write-ahead
//! logged, a "crash" that drops it with unflushed state, and a restart
//! that recovers into the exact published epoch — then answers the same
//! queries byte-for-byte.
//!
//! The flow mirrors production: `DurableLeader::open` a directory (cold
//! start and crash recovery are the same call), write through the normal
//! publish paths — every publication lands in the WAL as a delta plus a
//! commit marker — and `checkpoint()` now and then to bound replay. A
//! process that dies between checkpoints loses nothing that was
//! committed: recovery loads the last checkpoint, replays the WAL's
//! committed tail, and truncates anything torn.
//!
//! Run with: `cargo run --example durable_restart`

use fstore::embed::{EmbeddingProvenance, EmbeddingTable};
use fstore::prelude::*;
use fstore::serve::{fixed_clock, start, FeatureClient, Request, Response};
use std::sync::Arc;

const NOW: Timestamp = Timestamp(10_000);

fn probes() -> Vec<Request> {
    vec![
        Request::GetFeatures {
            group: "user".into(),
            entity: "u7".into(),
            features: vec!["score".into()],
        },
        Request::GetEmbedding {
            table: "user_emb".into(),
            key: "u3".into(),
        },
        Request::SearchNearest {
            table: "user_emb".into(),
            query: vec![0.5; 8],
            k: 3,
            options: Default::default(),
        },
    ]
}

/// Serve `leader` briefly and capture each probe's raw response bytes.
fn capture(leader: &Arc<DurableLeader>) -> Result<Vec<Vec<u8>>> {
    let config = ServeConfig::builder()
        .addr("127.0.0.1:0")
        .workers(2)
        .queue_depth(32)
        .max_batch(8)
        .build()
        .map_err(|e| FsError::Storage(format!("config: {e}")))?;
    let handle = start(leader.engine(fixed_clock(NOW)), config)
        .map_err(|e| FsError::Storage(format!("start: {e}")))?;
    let mut client = FeatureClient::connect(handle.addr())
        .map_err(|e| FsError::Storage(format!("connect: {e}")))?;
    let mut out = Vec::new();
    for request in &probes() {
        let response = client
            .call(request)
            .map_err(|e| FsError::Storage(format!("call: {e}")))?;
        assert!(!matches!(response, Response::Error { .. }));
        out.push(response.encode().to_vec());
    }
    drop(client);
    handle.shutdown();
    Ok(out)
}

fn main() -> Result<()> {
    println!("== fstore-durable: WAL, checkpoints, crash recovery ==\n");

    let dir = std::env::temp_dir().join(format!("fstore_durable_restart_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // ------------------------------------------------------------------
    // Cold start: open a fresh directory and build state through the
    // ordinary publish paths. Each publication is WAL-logged.
    // ------------------------------------------------------------------
    let (leader, report) = DurableLeader::open(&dir, DurableConfig::default())?;
    println!(
        "cold start: {} (recovered epoch {})",
        report.cold_start, report.recovered_epoch
    );

    leader.offline().write(|s| {
        s.create_table(
            "events",
            TableConfig::new(Schema::of(&[("n", ValueType::Int)])),
        )?;
        for i in 0..50 {
            s.append("events", &[Value::Int(i)])?;
        }
        Ok(())
    })?;

    let mut table = EmbeddingTable::new(8)?;
    let mut rng = Xoshiro256::seeded(7);
    for i in 0..100 {
        let v: Vec<f32> = (0..8).map(|_| rng.normal() as f32).collect();
        table.insert(format!("u{i}"), v)?;
    }
    leader
        .embeddings()
        .publish("user_emb", table, EmbeddingProvenance::default(), NOW)?;
    leader
        .indexes()
        .build("user_emb", &IndexSpec::Flat)
        .map_err(|e| FsError::Storage(format!("build index: {e}")))?;

    // A checkpoint bounds how much WAL a restart replays...
    leader.checkpoint()?;

    // ...and everything after it lives only in the WAL until the next one.
    for i in 0..20 {
        leader
            .put_online(
                "user",
                &EntityKey::new(format!("u{i}")),
                &[("score", Value::Float(i as f64 / 20.0))],
                NOW,
            )
            .unwrap();
    }
    leader
        .offline()
        .write(|s| s.append("events", &[Value::Int(50)]))?;

    let before = capture(&leader)?;
    let published = leader.published_seq();
    println!("published epoch before crash: {published}");

    // ------------------------------------------------------------------
    // Crash: drop the leader with no shutdown, no final checkpoint.
    // ------------------------------------------------------------------
    drop(leader);
    println!("\n-- crash (no checkpoint, no goodbye) --\n");

    // ------------------------------------------------------------------
    // Restart: same call as the cold start. The checkpoint restores the
    // bulk, the WAL replays the tail, and the epochs line up exactly.
    // ------------------------------------------------------------------
    let (revived, report) = DurableLeader::open(&dir, DurableConfig::default())?;
    println!(
        "recovered: checkpoint epoch {}, replayed {} WAL records, \
         recovered epoch {} ({} ms)",
        report.checkpoint_epoch, report.replayed, report.recovered_epoch, report.recovery_ms
    );
    assert_eq!(report.recovered_epoch, published);
    assert_eq!(revived.offline().read().value.num_rows("events")?, 51);

    let after = capture(&revived)?;
    assert_eq!(before, after);
    println!(
        "\nall {} probes byte-identical across the restart ✓",
        after.len()
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
