//! Cross-crate integration test: the full Figure-1 pipeline — ingest →
//! author → materialize on cadence → PIT training set → train → deploy →
//! serve → monitor → detect an injected fault → locate the offending
//! feature via lineage.

use fstore::core::quality::{ColumnProfile, FeatureQualityReport, QualityThresholds};
use fstore::monitor::drift::DriftThresholds;
use fstore::prelude::*;

fn trips_schema() -> Schema {
    Schema::of(&[
        ("user_id", ValueType::Str),
        ("ts", ValueType::Timestamp),
        ("fare", ValueType::Float),
        ("distance_km", ValueType::Float),
    ])
}

/// Deterministic synthetic trips: fare correlates with distance; label is
/// "fare above user's long-run average".
fn make_store(users: usize, trips_per_user: usize) -> FeatureStore {
    let fs = FeatureStore::new(Timestamp::EPOCH);
    fs.create_source_table(
        "trips",
        TableConfig::new(trips_schema()).with_time_column("ts"),
    )
    .unwrap();
    let mut rng = Xoshiro256::seeded(101);
    let mut rows = Vec::new();
    for u in 0..users {
        for t in 0..trips_per_user {
            let ts = Timestamp::millis((t * users + u) as i64 * 10_000);
            let dist = 1.0 + rng.exponential(0.3);
            let fare = 2.5 + 1.8 * dist + rng.normal() * 0.5;
            rows.push(vec![
                Value::from(format!("u{u}")),
                Value::Timestamp(ts),
                Value::Float(fare),
                Value::Float(dist),
            ]);
        }
    }
    fs.ingest("trips", &rows).unwrap();
    fs
}

#[test]
fn full_pipeline_ingest_to_monitoring() {
    let mut fs = make_store(50, 40);

    // --- author & publish two features ---
    fs.publish(
        FeatureSpec::new("avg_fare_1d", "user_id", "trips", "fare")
            .aggregated(AggFunc::Avg, Duration::days(1))
            .cadence(Duration::hours(1)),
    )
    .unwrap();
    fs.publish(
        FeatureSpec::new("fare_per_km", "user_id", "trips", "fare / distance_km")
            .cadence(Duration::hours(1)),
    )
    .unwrap();

    // --- cadence-driven materialization as the clock advances ---
    let mut total_runs = 0;
    for _ in 0..8 {
        total_runs += fs.advance(Duration::hours(1)).unwrap().len();
    }
    assert!(
        total_runs >= 8,
        "both features should rerun across 8 hours, got {total_runs}"
    );

    // --- training set via PIT join ---
    let now = fs.now();
    fs.registry_mut()
        .register_set("fare_model", &["avg_fare_1d", "fare_per_km"], now)
        .unwrap();
    let labels: Vec<LabelEvent> = (0..50)
        .map(|u| LabelEvent::new(format!("u{u}"), now, f64::from(u8::from(u % 2 == 0))))
        .collect();
    let training = fs.training_set("fare_model", &labels).unwrap();
    assert_eq!(training.rows.len(), 50);
    assert_eq!(training.schema.len(), 5); // entity, ts, 2 features, label
    let (xs, ys_vals) = training.feature_matrix(0.0);
    assert!(xs.iter().all(|r| r.len() == 2));
    let ys: Vec<usize> = ys_vals
        .iter()
        .map(|v| v.as_f64().unwrap() as usize)
        .collect();

    // --- train, store artifact, serve ---
    let model = LogisticRegression::train(&xs, &ys, &TrainConfig::default()).unwrap();
    let mut artifact = fstore::core::modelstore::artifact("fare_clf", model.to_json().unwrap());
    artifact.feature_set = "fare_model".into();
    artifact.features = fs
        .registry()
        .get_set("fare_model")
        .unwrap()
        .features
        .clone();
    let saved = fs.models_mut().save(artifact).unwrap();
    assert_eq!(saved.version, 1);

    let served = fs
        .server()
        .serve(
            "user_id",
            &EntityKey::new("u7"),
            &["avg_fare_1d", "fare_per_km"],
            fs.now(),
        )
        .unwrap();
    assert!(served.stale.is_empty());
    let _pred = model.predict(&served.dense(0.0)).unwrap();

    // --- monitoring: skew is quiet on the healthy system ---
    let online = fs.online();
    {
        // lock-free monitoring read: one immutable snapshot of the offline db
        let off = fs.offline_snapshot();
        let report = skew_report(
            &off,
            &online,
            "avg_fare_1d",
            1,
            "user_id",
            DriftThresholds::default(),
        )
        .unwrap();
        // The rolling 1-day window legitimately evolves across the first
        // hours (it sees more data each run), so early history may drift
        // mildly from the final serving snapshot — but never critically.
        assert!(
            report.alert < DriftAlert::Critical,
            "healthy pipeline must not go critical: {report:?}"
        );
    }

    // --- inject a fault: the distance feed starts emitting nulls ---
    let mut bad_rows = Vec::new();
    let base = fs.now();
    for u in 0..50 {
        bad_rows.push(vec![
            Value::from(format!("u{u}")),
            Value::Timestamp(base + Duration::minutes(u)),
            Value::Float(10.0),
            Value::Null, // broken upstream join
        ]);
    }
    fs.ingest("trips", &bad_rows).unwrap();
    fs.advance(Duration::hours(2)).unwrap();

    // null-spike detector fires on the source column…
    let (reference, live) = {
        let off = fs.offline_snapshot();
        let all = off
            .column_values("trips", "distance_km", &fstore::storage::ScanRequest::all())
            .unwrap();
        let healthy: Vec<Value> = all[..2000].to_vec();
        let recent: Vec<Value> = all[all.len() - 50..].to_vec();
        (
            vec![ColumnProfile::of_values("distance_km", &healthy)],
            vec![ColumnProfile::of_values("distance_km", &recent)],
        )
    };
    let mut issues = Vec::new();
    FeatureQualityReport::check_null_spikes(
        &reference,
        &live,
        &QualityThresholds::default(),
        &mut issues,
    );
    assert_eq!(issues.len(), 1, "null storm must be detected");

    // …and lineage identifies exactly the impacted feature.
    let impacted = fs.registry().impacted_by("trips", "distance_km");
    assert_eq!(impacted.len(), 1);
    assert_eq!(impacted[0].name, "fare_per_km");
}

#[test]
fn pit_prevents_leakage_that_naive_join_suffers() {
    // Feature whose value drifts upward over time; labels placed mid-history.
    let fs = FeatureStore::new(Timestamp::EPOCH);
    let offline = fs.offline();
    offline
        .write(|off| {
            off.create_table(
                "feat__score_v1",
                TableConfig::new(
                    Schema::new(vec![
                        FieldDef::not_null("entity", ValueType::Str),
                        FieldDef::not_null("ts", ValueType::Timestamp),
                        FieldDef::new("value", ValueType::Float),
                    ])
                    .unwrap(),
                )
                .with_time_column("ts"),
            )?;
            for day in 0..20 {
                for u in 0..30 {
                    off.append(
                        "feat__score_v1",
                        &[
                            Value::from(format!("u{u}")),
                            Value::Timestamp(Date::from_days(day).start()),
                            Value::Float(day as f64), // strictly increasing
                        ],
                    )?;
                }
            }
            Ok(())
        })
        .unwrap();
    let labels: Vec<LabelEvent> = (0..30)
        .map(|u| LabelEvent::new(format!("u{u}"), Date::from_days(10).start(), 1.0))
        .collect();
    let feats = [PitFeature::materialized("score", 1)];
    let off = offline.snapshot();
    let pit = point_in_time_join(&off, &labels, &feats).unwrap();
    let naive = naive_latest_join(&off, &labels, &feats).unwrap();
    for row in &pit.rows {
        assert_eq!(row[2], Value::Float(10.0), "PIT sees exactly day-10 value");
    }
    for row in &naive.rows {
        assert_eq!(
            row[2],
            Value::Float(19.0),
            "naive join leaks the final value"
        );
    }
}

#[test]
fn streaming_features_flow_into_training_sets() {
    use std::sync::Arc;

    let online = Arc::new(OnlineStore::default());
    let offline = OfflineDb::new();
    let agg = StreamAggregator::new(
        "clicks_1h",
        AggFunc::Count,
        WindowSpec::tumbling(Duration::hours(1)),
        Duration::ZERO,
    )
    .unwrap();
    let mut pipeline =
        StreamPipeline::new(agg, "user", Arc::clone(&online), offline.clone()).unwrap();

    for hour in 0..5i64 {
        for i in 0..=hour {
            pipeline
                .push(&Event::new(
                    "u1",
                    Timestamp::EPOCH + Duration::hours(hour) + Duration::minutes(i),
                    1.0,
                ))
                .unwrap();
        }
    }
    pipeline.flush().unwrap();

    // The offline log of the stream is PIT-joinable like any feature table.
    let off = offline.snapshot();
    let labels = vec![
        LabelEvent::new("u1", Timestamp::EPOCH + Duration::hours(3), 1.0),
        LabelEvent::new("u1", Timestamp::EPOCH + Duration::hours(5), 0.0),
    ];
    let feat = PitFeature {
        feature: "clicks_1h".into(),
        table: "stream_log_clicks_1h".into(),
        entity_column: "entity".into(),
        time_column: "window_end".into(),
        value_column: "value".into(),
        max_age: None,
    };
    let ts = point_in_time_join(&off, &labels, &[feat]).unwrap();
    // label at hour 3 sees the window that closed at hour 3 (hour-2 window, 3 events)
    // (the stream log stores window values in a Float column)
    assert_eq!(ts.rows[0][2], Value::Float(3.0));
    // label at hour 5 sees the hour-4 window (5 events)
    assert_eq!(ts.rows[1][2], Value::Float(5.0));

    // And the online side serves the latest closed window.
    let e = online
        .get("user", &EntityKey::new("u1"), "clicks_1h")
        .unwrap();
    assert_eq!(e.value, Value::Int(5));
}
