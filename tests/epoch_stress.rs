//! Multi-threaded stress tests for the epoch-versioned read path.
//!
//! Two scenarios the concurrency model (DESIGN.md) must survive:
//!
//! 1. offline scans and PIT joins running concurrently with continuous
//!    materialization — every reader resolves one snapshot and must see
//!    each materialization run either completely or not at all (no torn
//!    reads), with the publication epoch monotone across reads;
//! 2. embedding lookups over real sockets while the table is republished
//!    repeatedly — every response must carry a vector, version, and epoch
//!    from one consistent snapshot.

use fstore::embed::EmbeddingProvenance;
use fstore::prelude::*;
use fstore::serve::{fixed_clock, start};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const ENTITIES: usize = 20;

#[test]
fn offline_scans_and_pit_joins_survive_continuous_materialization() {
    let mut fs = FeatureStore::new(Timestamp::EPOCH);
    fs.create_source_table(
        "trips",
        TableConfig::new(Schema::of(&[
            ("user_id", ValueType::Str),
            ("ts", ValueType::Timestamp),
            ("fare", ValueType::Float),
        ]))
        .with_time_column("ts"),
    )
    .unwrap();
    let seed_rows: Vec<Vec<Value>> = (0..ENTITIES)
        .map(|u| {
            vec![
                Value::from(format!("u{u}")),
                Value::Timestamp(Timestamp::millis(u as i64)),
                Value::Float(u as f64),
            ]
        })
        .collect();
    fs.ingest("trips", &seed_rows).unwrap();
    fs.publish(
        FeatureSpec::new("last_fare", "user_id", "trips", "fare").cadence(Duration::hours(1)),
    )
    .unwrap();

    let offline = fs.offline();
    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|r| {
            let db = offline.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut last_epoch = ReadEpoch::ZERO;
                let mut reads = 0u64;
                let labels: Vec<LabelEvent> = (0..ENTITIES)
                    .map(|u| LabelEvent::new(format!("u{u}"), Timestamp::millis(1 << 40), 1.0))
                    .collect();
                let feats = [PitFeature::materialized("last_fare", 1)];
                while !done.load(Ordering::Relaxed) || reads == 0 {
                    let view = db.read();
                    assert!(
                        view.epoch >= last_epoch,
                        "reader {r}: epoch went backwards ({:?} after {last_epoch:?})",
                        view.epoch
                    );
                    last_epoch = view.epoch;
                    if !view.value.has_table("feat__last_fare_v1") {
                        continue;
                    }
                    // Each materialization run publishes atomically, so in
                    // any snapshot every run timestamp carries one row per
                    // entity — a partial run is a torn read.
                    let ts_col = view
                        .value
                        .column_values("feat__last_fare_v1", "ts", &ScanRequest::all())
                        .unwrap();
                    let mut per_run = std::collections::BTreeMap::new();
                    for ts in &ts_col {
                        let Value::Timestamp(t) = ts else {
                            panic!("reader {r}: non-timestamp in ts column: {ts:?}")
                        };
                        *per_run.entry(*t).or_insert(0usize) += 1;
                    }
                    for (ts, n) in &per_run {
                        assert_eq!(
                            *n, ENTITIES,
                            "reader {r}: torn read — run at {ts:?} has {n} of {ENTITIES} rows"
                        );
                    }
                    // And a PIT join over the same snapshot is complete.
                    let pit = point_in_time_join(&view.value, &labels, &feats).unwrap();
                    assert_eq!(pit.rows.len(), ENTITIES);
                    reads += 1;
                }
                (reads, last_epoch)
            })
        })
        .collect();

    // Writer: keep ingesting fresh fares and re-materializing on cadence.
    let mut now = Timestamp::EPOCH;
    for step in 0..12i64 {
        now += Duration::minutes(10);
        let rows: Vec<Vec<Value>> = (0..ENTITIES)
            .map(|u| {
                vec![
                    Value::from(format!("u{u}")),
                    Value::Timestamp(now),
                    Value::Float(step as f64 * 100.0 + u as f64),
                ]
            })
            .collect();
        fs.ingest("trips", &rows).unwrap();
        fs.advance(Duration::hours(1)).unwrap();
    }
    done.store(true, Ordering::Relaxed);

    let final_epoch = offline.epoch();
    for t in readers {
        let (reads, seen) = t.join().unwrap();
        assert!(reads > 0, "every reader completed at least one full pass");
        assert!(seen <= final_epoch);
    }
    // 12 ingests + 12 materialization runs all published.
    assert!(
        final_epoch.as_u64() >= 24,
        "expected at least 24 publications, saw {final_epoch:?}"
    );
}

#[test]
fn embedding_reads_stay_consistent_under_republish() {
    const DIM: usize = 4;
    const KEYS: usize = 10;
    const VERSIONS: u32 = 20;

    // Version v's table holds vectors whose every element is v, so a torn
    // read (mixing two versions) or a version/vector mismatch is detectable
    // from a single response.
    fn table_for(version: u32) -> EmbeddingTable {
        let mut t = EmbeddingTable::new(DIM).unwrap();
        for k in 0..KEYS {
            t.insert(format!("k{k}"), vec![version as f32; DIM])
                .unwrap();
        }
        t
    }

    let db = EmbeddingDb::new();
    db.publish(
        "emb",
        table_for(1),
        EmbeddingProvenance::default(),
        Timestamp::EPOCH,
    )
    .unwrap();

    let engine = ServeEngine::new(
        fstore::core::FeatureServer::new(Arc::new(OnlineStore::default())),
        fixed_clock(Timestamp::EPOCH),
    )
    .with_embeddings(db.clone());
    let handle = start(
        engine,
        ServeConfig {
            workers: 4,
            queue_depth: 256,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    let done = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut client = FeatureClient::connect(addr).unwrap();
                let mut last_epoch = 0u64;
                let mut reads = 0u64;
                while !done.load(Ordering::Relaxed) || reads == 0 {
                    let key = format!("k{}", reads as usize % KEYS);
                    let got = client.get_embedding("emb", &key).unwrap();
                    let want = got.version as f32;
                    assert!(
                        got.vector.iter().all(|&x| x == want),
                        "client {c}: torn read — version {} but vector {:?}",
                        got.version,
                        got.vector
                    );
                    // Publishing through the db bumps version and epoch in
                    // lockstep from 1, so a consistent response has equal
                    // counters; a mismatch means the vector and the epoch
                    // came from different snapshots.
                    assert_eq!(
                        got.epoch,
                        u64::from(got.version),
                        "client {c}: epoch and version from different snapshots"
                    );
                    assert!(
                        got.epoch >= last_epoch,
                        "client {c}: epoch went backwards ({} after {last_epoch})",
                        got.epoch
                    );
                    last_epoch = got.epoch;
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    // Writer: republish the table 19 more times while clients hammer it.
    for v in 2..=VERSIONS {
        db.publish(
            "emb",
            table_for(v),
            EmbeddingProvenance::default(),
            Timestamp::millis(i64::from(v)),
        )
        .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    done.store(true, Ordering::Relaxed);

    for t in clients {
        assert!(t.join().unwrap() > 0);
    }
    assert_eq!(db.epoch(), ReadEpoch(u64::from(VERSIONS)));
    let snap = db.snapshot();
    assert_eq!(snap.latest("emb").unwrap().version, VERSIONS);
    handle.shutdown();
}
