//! Cross-crate integration test: the embedding-ecosystem lifecycle —
//! pretrain → publish → consume downstream → retrain → measure instability
//! → find a bad slice → patch the embedding → verify *all* downstream
//! consumers heal (the paper's product-consistency claim, §3.1.3).

use fstore::embed::sgns::train_sgns;
use fstore::prelude::*;

fn corpus() -> Corpus {
    Corpus::generate(CorpusConfig {
        vocab: 300,
        topics: 6,
        sentences: 1_200,
        sentence_len: 10,
        topic_coherence: 0.9,
        seed: 55,
        ..CorpusConfig::default()
    })
    .unwrap()
}

fn embedding_features(table: &EmbeddingTable, c: &Corpus) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for e in 0..c.config.vocab {
        xs.push(table.get_f64(&Corpus::entity_name(e)).unwrap());
        ys.push(c.topic_of[e]);
    }
    (xs, ys)
}

#[test]
fn versioned_lifecycle_with_instability_metrics() {
    let c = corpus();
    let mut store = EmbeddingStore::new();

    let cfg = SgnsConfig {
        dim: 16,
        epochs: 2,
        seed: 1,
        ..SgnsConfig::default()
    };
    let (t1, p1) = train_sgns(&c, cfg.clone()).unwrap();
    let q1 = store.publish("ent", t1, p1, Timestamp::EPOCH).unwrap();
    let (t2, p2) = train_sgns(&c, SgnsConfig { seed: 2, ..cfg }).unwrap();
    let q2 = store.publish("ent", t2, p2, Timestamp::millis(1)).unwrap();
    assert_eq!((q1.as_str(), q2.as_str()), ("ent@v1", "ent@v2"));

    let v1 = &store.get("ent", 1).unwrap().table;
    let v2 = &store.get("ent", 2).unwrap().table;

    // Version-churn metrics are in sane ranges: retrains are neither
    // identical nor unrelated.
    let knn = knn_overlap(v1, v2, 10, None).unwrap();
    assert!((0.2..0.98).contains(&knn), "knn overlap {knn}");
    let eig = eigenspace_overlap(v1, v2).unwrap();
    assert!((0.2..=1.0).contains(&eig), "eigenspace {eig}");

    // Downstream instability: same model family trained on both versions.
    let (x1, ys) = embedding_features(v1, &c);
    let (x2, _) = embedding_features(v2, &c);
    let m1 = SoftmaxRegression::train(&x1, &ys, 6, &TrainConfig::default()).unwrap();
    let m2 = SoftmaxRegression::train(&x2, &ys, 6, &TrainConfig::default()).unwrap();
    let flips = prediction_flips(
        &m1.predict_batch(&x1).unwrap(),
        &m2.predict_batch(&x2).unwrap(),
    )
    .unwrap();
    assert!(
        flips < 0.5,
        "retrain instability should be bounded: {flips}"
    );

    // Consumer lineage is queryable.
    store.register_consumer("ent@v2", "topic_model").unwrap();
    assert_eq!(
        store.consumers("ent@v2").unwrap(),
        &["topic_model".to_string()]
    );
}

#[test]
fn embedding_patch_heals_all_downstream_consumers() {
    let c = corpus();
    let mut store = EmbeddingStore::new();
    let (table, prov) = train_sgns(
        &c,
        SgnsConfig {
            dim: 16,
            epochs: 3,
            seed: 9,
            ..SgnsConfig::default()
        },
    )
    .unwrap();
    let mut sabotaged = table.clone();

    // Sabotage a slice: corrupt the vectors of 12 topic-0 entities (as a
    // bad upstream retrain would).
    let victims: Vec<String> = (0..c.config.vocab)
        .filter(|&e| c.topic_of[e] == 0)
        .take(12)
        .map(Corpus::entity_name)
        .collect();
    let mut rng = Xoshiro256::seeded(13);
    for k in &victims {
        let noise: Vec<f32> = (0..16).map(|_| rng.normal() as f32 * 2.0).collect();
        sabotaged.replace(k, noise).unwrap();
    }
    store
        .publish("ent", sabotaged, prov, Timestamp::EPOCH)
        .unwrap();

    // Three independent downstream consumers on the sabotaged embedding.
    let (xs, ys) = embedding_features(&store.latest("ent").unwrap().table, &c);
    let victim_idx: Vec<usize> = victims
        .iter()
        .map(|k| k.trim_start_matches('e').parse::<usize>().unwrap())
        .collect();
    let consumers: Vec<SoftmaxRegression> = (0..3)
        .map(|s| {
            SoftmaxRegression::train(&xs, &ys, 6, &TrainConfig::default().with_seed(s)).unwrap()
        })
        .collect();
    let slice_acc = |m: &SoftmaxRegression, xs: &[Vec<f64>]| {
        let preds = m.predict_batch(xs).unwrap();
        let hit = victim_idx.iter().filter(|&&i| preds[i] == ys[i]).count();
        hit as f64 / victim_idx.len() as f64
    };
    let before: Vec<f64> = consumers.iter().map(|m| slice_acc(m, &xs)).collect();

    // Patch once, centrally: move victims toward healthy topic-0 exemplars.
    let exemplars: Vec<String> = (0..c.config.vocab)
        .filter(|&e| c.topic_of[e] == 0 && !victim_idx.contains(&e))
        .take(8)
        .map(Corpus::entity_name)
        .collect();
    let patched_q = EmbeddingPatcher { alpha: 0.9 }
        .patch_toward_exemplars(
            &mut store,
            "ent",
            &victims,
            &exemplars,
            Timestamp::millis(1),
        )
        .unwrap();
    let patched = &store.resolve(&patched_q).unwrap().table;

    // Every consumer re-reads the patched embedding; all heal at once.
    let (xp, _) = embedding_features(patched, &c);
    for (i, _m) in consumers.iter().enumerate() {
        let retrained =
            SoftmaxRegression::train(&xp, &ys, 6, &TrainConfig::default().with_seed(i as u64))
                .unwrap();
        let after = slice_acc(&retrained, &xp);
        assert!(
            after > before[i] + 0.2,
            "consumer {i}: slice accuracy must jump after the central patch \
             (before {:.2}, after {after:.2})",
            before[i]
        );
    }

    // Provenance trail: the patch knows its parent.
    let v = store.resolve(&patched_q).unwrap();
    assert_eq!(v.provenance.parent, Some(1));
    assert_eq!(v.provenance.trainer, "patch");
}

#[test]
fn compression_quality_ladder() {
    // More bits ⇒ higher eigenspace overlap with the original (E7's axis).
    let c = corpus();
    let (table, _) = train_sgns(
        &c,
        SgnsConfig {
            dim: 16,
            epochs: 2,
            seed: 3,
            ..SgnsConfig::default()
        },
    )
    .unwrap();
    let mut last = 0.0;
    for bits in [1u8, 2, 4, 8] {
        let q = QuantizedTable::quantize(&table, bits).unwrap();
        let overlap = eigenspace_overlap(&table, &q.dequantize().unwrap()).unwrap();
        assert!(
            overlap >= last - 0.05,
            "overlap should be non-decreasing in bits: {bits}-bit gave {overlap} after {last}"
        );
        last = overlap;
    }
    assert!(
        last > 0.95,
        "8-bit should nearly preserve the space: {last}"
    );
}

#[test]
fn ann_indexes_serve_embedding_tables() {
    let c = corpus();
    let (table, _) = train_sgns(
        &c,
        SgnsConfig {
            dim: 16,
            epochs: 2,
            seed: 4,
            ..SgnsConfig::default()
        },
    )
    .unwrap();
    let keys = table.keys();
    let mut data: Vec<Vec<f32>> = keys
        .iter()
        .map(|k| table.get(k).unwrap().to_vec())
        .collect();
    fstore::index::normalize_all(&mut data);
    let flat = FlatIndex::build(data.clone()).unwrap();
    let hnsw = HnswIndex::build(data.clone(), HnswConfig::default()).unwrap();
    let queries: Vec<Vec<f32>> = data.iter().step_by(20).cloned().collect();
    let recall = recall_at_k(&hnsw, &flat, &queries, 10, &SearchParams::default()).unwrap();
    assert!(recall > 0.7, "HNSW recall over embedding table: {recall}");
}
