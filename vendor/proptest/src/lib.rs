//! Offline stand-in for `proptest`: the strategy combinators and macros
//! this workspace uses, generating deterministic pseudo-random cases.
//!
//! Differences from the real crate, accepted for offline hermeticity:
//! no shrinking (failures report the generated inputs as-is), and a
//! fixed per-test seed derived from the test name, so runs are exactly
//! reproducible.

use std::ops::Range;
use std::rc::Rc;

/// SplitMix64 — small, fast, and deterministic.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test's name.
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// A generator of values for property tests.
///
/// Combinator methods require `Self: Sized`, keeping the trait
/// object-safe so strategies can be boxed ([`BoxedStrategy`]).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }

    /// Build a recursive strategy: `depth` levels deep, where each level
    /// chooses between the base strategy and `recurse` applied to the
    /// previous level. `desired_size`/`expected_branch_size` are accepted
    /// for API compatibility but unused (no shrinking to size against).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut level = base.clone();
        for _ in 0..depth {
            let deeper = recurse(level).boxed();
            level = Union::new(vec![base.clone(), deeper]).boxed();
        }
        level
    }
}

/// A clone-able, type-erased strategy (proptest's `BoxedStrategy`).
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.options.len());
        self.options[pick].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                let offset = (rng.next_u64() as i128).rem_euclid(span);
                (self.start as i128 + offset) as $ty
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $ty) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($($name:ident)+),+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(A, A B, A B C, A B C D, A B C D E);

/// `any::<T>()` for a few primitives (full-range values).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub trait Arbitrary {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for a primitive.
#[derive(Debug, Clone, Default)]
pub struct Full<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Strategy for Full<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }

        impl Arbitrary for $ty {
            type Strategy = Full<$ty>;

            fn arbitrary() -> Full<$ty> {
                Full(std::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Full<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = Full<bool>;

    fn arbitrary() -> Full<bool> {
        Full(std::marker::PhantomData)
    }
}

impl Strategy for Full<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite, wide-range floats (the repo's properties assume finite).
        let mantissa = rng.next_f64() * 2.0 - 1.0;
        let exponent = (rng.below(120) as i32) - 60;
        mantissa * (exponent as f64).exp2()
    }
}

impl Arbitrary for f64 {
    type Strategy = Full<f64>;

    fn arbitrary() -> Full<f64> {
        Full(std::marker::PhantomData)
    }
}

pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Strategy for `Vec`s with length drawn from `len` and elements from
    /// `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                self.len.start + rng.below(self.len.end - self.len.start)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-proptest-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Everything a property-test module wants in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng, Union,
    };

    /// The real crate exposes a `prop` facade module; mirror the parts
    /// this workspace could reach for.
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Define property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn my_property(x in 0i64..100, ys in collection::vec(0f64..1.0, 1..50)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr); ) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let __strategies = ($($strategy,)+);
            for __case in 0..__config.cases {
                let ($($arg,)+) = {
                    let ($(ref $arg,)+) = __strategies;
                    ($($crate::Strategy::generate($arg, &mut __rng),)+)
                };
                $body
            }
        }
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let i = (-5i64..7).generate(&mut rng);
            assert!((-5..7).contains(&i));
            let f = (-1.5f64..2.5).generate(&mut rng);
            assert!((-1.5..2.5).contains(&f));
            let u = (3usize..4).generate(&mut rng);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = TestRng::deterministic("vecs");
        let strat = collection::vec(0i64..10, 2..5);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (0..10).contains(x)));
        }
    }

    #[test]
    fn oneof_and_map_and_recursive() {
        let mut rng = TestRng::deterministic("combi");
        let leaf = prop_oneof![
            Just("x".to_string()),
            (0i64..10).prop_map(|i| i.to_string())
        ];
        let expr = leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| format!("({a}+{b})"))
        });
        let mut saw_compound = false;
        for _ in 0..200 {
            let e = expr.generate(&mut rng);
            assert!(!e.is_empty());
            saw_compound |= e.contains('+');
        }
        assert!(saw_compound, "recursion never recursed");
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("same-name");
        let mut b = TestRng::deterministic("same-name");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn macro_smoke(x in 0i64..100, ys in collection::vec(0f64..1.0, 1..10)) {
            prop_assert!((0..100).contains(&x));
            prop_assert_eq!(ys.iter().filter(|y| **y >= 1.0).count(), 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_macro(x in -10i64..10) {
            prop_assert!((-10..10).contains(&x));
        }
    }
}
