//! The JSON-shaped data model shared by `serde` and `serde_json`.

/// A JSON number. Integers keep exact 64-bit representations; floats
/// round-trip through their shortest decimal form (Rust's `{:?}`
/// formatting is correctly rounded both ways).
#[derive(Debug, Clone, Copy)]
pub enum Number {
    I64(i64),
    U64(u64),
    F64(f64),
}

impl Number {
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::I64(v) => Some(v),
            Number::U64(v) => i64::try_from(v).ok(),
            Number::F64(_) => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::I64(v) => u64::try_from(v).ok(),
            Number::U64(v) => Some(v),
            Number::F64(_) => None,
        }
    }

    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::I64(v) => v as f64,
            Number::U64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    pub fn is_integer(&self) -> bool {
        !matches!(self, Number::F64(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            // Integers compare across signedness; floats only with floats
            // (serde_json semantics: 1 != 1.0).
            (Number::F64(a), Number::F64(b)) => a == b,
            (a, b) if a.is_integer() && b.is_integer() => match (a.as_i64(), b.as_i64()) {
                (Some(x), Some(y)) => x == y,
                (None, None) => a.as_u64() == b.as_u64(),
                _ => false,
            },
            _ => false,
        }
    }
}

/// A JSON-shaped tree: the single data model every `Serialize` impl
/// renders into. `serde_json` re-exports this as its `Value`.
#[derive(Debug, Clone, Default)]
pub enum Content {
    #[default]
    Null,
    Bool(bool),
    Num(Number),
    Str(String),
    Seq(Vec<Content>),
    /// Key/value pairs in insertion order. Equality is order-insensitive,
    /// matching `serde_json::Value` object semantics.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Human-readable kind for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "a boolean",
            Content::Num(_) => "a number",
            Content::Str(_) => "a string",
            Content::Seq(_) => "an array",
            Content::Map(_) => "an object",
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Content::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Content::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Content::Num(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Content::Num(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Content::Num(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Content>> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Content)>> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Object field lookup; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup; `None` out of range or non-array.
    pub fn get_index(&self, index: usize) -> Option<&Content> {
        match self {
            Content::Seq(items) => items.get(index),
            _ => None,
        }
    }
}

static NULL: Content = Content::Null;

impl std::ops::Index<&str> for Content {
    type Output = Content;

    fn index(&self, key: &str) -> &Content {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Content {
    type Output = Content;

    fn index(&self, index: usize) -> &Content {
        self.get_index(index).unwrap_or(&NULL)
    }
}

impl PartialEq for Content {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Content::Null, Content::Null) => true,
            (Content::Bool(a), Content::Bool(b)) => a == b,
            (Content::Num(a), Content::Num(b)) => a == b,
            (Content::Str(a), Content::Str(b)) => a == b,
            (Content::Seq(a), Content::Seq(b)) => a == b,
            (Content::Map(a), Content::Map(b)) => {
                a.len() == b.len()
                    && a.iter().all(|(k, v)| {
                        b.iter()
                            .find(|(bk, _)| bk == k)
                            .is_some_and(|(_, bv)| bv == v)
                    })
            }
            _ => false,
        }
    }
}

/// Append `s` JSON-escaped (quoted) onto `out`.
pub fn escape_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Format a float as JSON: shortest round-trip decimal (Rust's `{:?}` is
/// correctly rounded both directions, giving `float_roundtrip` fidelity);
/// non-finite values have no JSON form and degrade to `null`.
pub fn format_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_compact(content: &Content, out: &mut String) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::Num(Number::I64(v)) => out.push_str(&v.to_string()),
        Content::Num(Number::U64(v)) => out.push_str(&v.to_string()),
        Content::Num(Number::F64(v)) => format_f64(*v, out),
        Content::Str(s) => escape_json_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_json_string(k, out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

/// Compact JSON rendering (what `serde_json::to_string` emits).
impl std::fmt::Display for Content {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        write_compact(self, &mut out);
        f.write_str(&out)
    }
}

impl From<bool> for Content {
    fn from(v: bool) -> Self {
        Content::Bool(v)
    }
}

impl From<i64> for Content {
    fn from(v: i64) -> Self {
        Content::Num(Number::I64(v))
    }
}

impl From<f64> for Content {
    fn from(v: f64) -> Self {
        Content::Num(Number::F64(v))
    }
}

impl From<&str> for Content {
    fn from(v: &str) -> Self {
        Content::Str(v.to_string())
    }
}

impl From<String> for Content {
    fn from(v: String) -> Self {
        Content::Str(v)
    }
}
