//! `Serialize`/`Deserialize` impls for std types, mirroring serde's JSON
//! conventions: `Option` as null-or-value, tuples as fixed arrays, maps
//! with string keys as objects.

use crate::content::{Content, Number};
use crate::{DeError, Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

impl Serialize for Content {
    fn serialize(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        T::deserialize(content).map(Box::new)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        content
            .as_bool()
            .ok_or_else(|| DeError::invalid_type("a boolean", content))
    }
}

macro_rules! signed_int_impls {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Content {
                Content::Num(Number::I64(*self as i64))
            }
        }

        impl Deserialize for $ty {
            fn deserialize(content: &Content) -> Result<Self, DeError> {
                let n = content.as_i64().ok_or_else(|| DeError::invalid_type("an integer", content))?;
                <$ty>::try_from(n).map_err(|_| {
                    DeError(format!("integer {n} out of range for {}", stringify!($ty)))
                })
            }
        }
    )*};
}

signed_int_impls!(i8, i16, i32, i64, isize);

macro_rules! unsigned_int_impls {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Content {
                let v = *self as u64;
                match i64::try_from(v) {
                    Ok(i) => Content::Num(Number::I64(i)),
                    Err(_) => Content::Num(Number::U64(v)),
                }
            }
        }

        impl Deserialize for $ty {
            fn deserialize(content: &Content) -> Result<Self, DeError> {
                let n = content
                    .as_u64()
                    .ok_or_else(|| DeError::invalid_type("an unsigned integer", content))?;
                <$ty>::try_from(n).map_err(|_| {
                    DeError(format!("integer {n} out of range for {}", stringify!($ty)))
                })
            }
        }
    )*};
}

unsigned_int_impls!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize(&self) -> Content {
        Content::Num(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        content
            .as_f64()
            .ok_or_else(|| DeError::invalid_type("a number", content))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Content {
        Content::Num(Number::F64(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        Ok(content
            .as_f64()
            .ok_or_else(|| DeError::invalid_type("a number", content))? as f32)
    }
}

impl Serialize for str {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn serialize(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        content
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::invalid_type("a string", content))
    }
}

impl Serialize for char {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        let s = content
            .as_str()
            .ok_or_else(|| DeError::invalid_type("a string", content))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError(format!("expected a single character, found {s:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        content
            .as_array()
            .ok_or_else(|| DeError::invalid_type("an array", content))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

macro_rules! tuple_impls {
    ($(($len:expr => $($idx:tt $name:ident),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Content {
                Content::Seq(vec![$(self.$idx.serialize()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(content: &Content) -> Result<Self, DeError> {
                let items = crate::__private::expect_seq(content, "tuple", $len)?;
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )+};
}

tuple_impls!(
    (1 => 0 A),
    (2 => 0 A, 1 B),
    (3 => 0 A, 1 B, 2 C),
    (4 => 0 A, 1 B, 2 C, 3 D)
);

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        content
            .as_object()
            .ok_or_else(|| DeError::invalid_type("an object", content))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Content {
        // Deterministic output: sort keys like a BTreeMap would.
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        content
            .as_object()
            .ok_or_else(|| DeError::invalid_type("an object", content))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        assert_eq!(None::<i64>.serialize(), Content::Null);
        assert_eq!(Option::<i64>::deserialize(&Content::Null).unwrap(), None);
        assert_eq!(
            Option::<i64>::deserialize(&Content::from(3i64)).unwrap(),
            Some(3)
        );
    }

    #[test]
    fn int_range_checks() {
        let big = Content::from(300i64);
        assert!(u8::deserialize(&big).is_err());
        assert_eq!(u16::deserialize(&big).unwrap(), 300);
        let neg = Content::from(-1i64);
        assert!(u64::deserialize(&neg).is_err());
        assert_eq!(i32::deserialize(&neg).unwrap(), -1);
    }

    #[test]
    fn tuples_and_vecs() {
        let v = (1i64, "x".to_string()).serialize();
        assert_eq!(
            <(i64, String)>::deserialize(&v).unwrap(),
            (1, "x".to_string())
        );
        let xs = vec![1.5f64, 2.5].serialize();
        assert_eq!(Vec::<f64>::deserialize(&xs).unwrap(), vec![1.5, 2.5]);
    }

    #[test]
    fn maps_round_trip() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1i64);
        let c = m.serialize();
        assert_eq!(BTreeMap::<String, i64>::deserialize(&c).unwrap(), m);
    }

    #[test]
    fn map_equality_is_order_insensitive() {
        let a = Content::Map(vec![
            ("x".into(), Content::from(1i64)),
            ("y".into(), Content::from(2i64)),
        ]);
        let b = Content::Map(vec![
            ("y".into(), Content::from(2i64)),
            ("x".into(), Content::from(1i64)),
        ]);
        assert_eq!(a, b);
    }

    #[test]
    fn numbers_cross_variant_equality() {
        assert_eq!(Content::Num(Number::I64(1)), Content::Num(Number::U64(1)));
        assert_ne!(Content::Num(Number::I64(1)), Content::Num(Number::F64(1.0)));
    }
}
