//! Offline stand-in for `serde`.
//!
//! The real serde abstracts over data formats with visitor-based
//! serializers; this workspace only ever serializes to and from JSON, so
//! the stand-in collapses the data model to a single JSON-shaped tree,
//! [`Content`]. [`Serialize`] converts a value *into* content,
//! [`Deserialize`] reconstructs a value *from* content, and `serde_json`
//! supplies the text round-trip on top.
//!
//! The `derive` feature re-exports `#[derive(Serialize, Deserialize)]`
//! proc-macros generating the same externally-tagged representation real
//! serde uses (unit variants as strings, data variants as single-entry
//! maps, newtype structs transparent).

mod content;
mod impls;

pub use content::{escape_json_string, format_f64, Content, Number};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Error produced when content cannot be reshaped into the target type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        DeError(msg.to_string())
    }

    /// Standard "wrong shape" error, mirroring serde's invalid_type message.
    pub fn invalid_type(expected: &str, found: &Content) -> Self {
        DeError(format!(
            "invalid type: expected {expected}, found {}",
            found.kind()
        ))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A value that can be rendered into JSON-shaped [`Content`].
pub trait Serialize {
    fn serialize(&self) -> Content;
}

/// A value that can be rebuilt from JSON-shaped [`Content`].
pub trait Deserialize: Sized {
    fn deserialize(content: &Content) -> Result<Self, DeError>;
}

/// Runtime support for the derive macros; not public API.
#[doc(hidden)]
pub mod __private {
    use super::{Content, DeError};

    /// Field lookup for derived struct deserializers. Missing keys resolve
    /// to `Null` so `Option` fields default to `None`.
    pub fn field<'a>(content: &'a Content, key: &str) -> &'a Content {
        static NULL: Content = Content::Null;
        match content {
            Content::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    pub fn expect_map<'a>(
        content: &'a Content,
        ty: &str,
    ) -> Result<&'a [(String, Content)], DeError> {
        match content {
            Content::Map(entries) => Ok(entries),
            other => Err(DeError(format!(
                "invalid type: {ty} expects a map, found {}",
                other.kind()
            ))),
        }
    }

    pub fn expect_seq<'a>(
        content: &'a Content,
        ty: &str,
        len: usize,
    ) -> Result<&'a [Content], DeError> {
        match content {
            Content::Seq(items) if items.len() == len => Ok(items),
            Content::Seq(items) => Err(DeError(format!(
                "invalid length: {ty} expects {len} elements, found {}",
                items.len()
            ))),
            other => Err(DeError(format!(
                "invalid type: {ty} expects a sequence, found {}",
                other.kind()
            ))),
        }
    }

    /// Decode an externally-tagged enum: either `"Variant"` or
    /// `{"Variant": payload}`. Returns the tag and the payload (`Null` for
    /// unit variants).
    pub fn variant<'a>(content: &'a Content, ty: &str) -> Result<(&'a str, &'a Content), DeError> {
        static NULL: Content = Content::Null;
        match content {
            Content::Str(tag) => Ok((tag, &NULL)),
            Content::Map(entries) if entries.len() == 1 => {
                Ok((entries[0].0.as_str(), &entries[0].1))
            }
            other => Err(DeError(format!(
                "invalid type: enum {ty} expects a string or single-entry map, found {}",
                other.kind()
            ))),
        }
    }

    pub fn unknown_variant(ty: &str, tag: &str) -> DeError {
        DeError(format!("unknown variant `{tag}` for enum {ty}"))
    }
}
