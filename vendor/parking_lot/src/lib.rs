//! Offline stand-in for `parking_lot`, backed by `std::sync` locks.
//!
//! Exposes the subset of the `parking_lot` API this workspace uses:
//! [`Mutex::lock`], [`RwLock::read`] / [`RwLock::write`] returning guards
//! directly (no `Result`), plus `try_*` variants and `into_inner`. Poisoned
//! locks are recovered transparently — like `parking_lot`, a panic while
//! holding a guard does not wedge the lock for everyone else.

use std::sync::PoisonError;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual exclusion primitive (`parking_lot::Mutex` API shape).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never returns `Err`.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock (`parking_lot::RwLock` API shape).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock. Never returns `Err`.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write lock. Never returns `Err`.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a, *b);
            assert!(l.try_write().is_none());
        }
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: still usable after a panicking holder
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
