//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` over the
//! compiler's `proc_macro` API alone (no `syn`/`quote` available offline).
//! Supports the shapes this workspace uses — non-generic named structs,
//! tuple/newtype structs, and enums with unit/tuple/named variants — and
//! emits the same externally-tagged layout real serde produces. Generated
//! code never needs field *types*: struct literals and enum constructors
//! let inference pick the right `Deserialize` impl per field.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<(String, Shape)>,
    },
}

/// Field layout of a struct or enum variant.
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => {
            // `extern crate serde as _serde` keeps the generated code
            // immune to local `Result`/`String` aliases and shadowed paths.
            format!(
                "const _: () = {{ extern crate serde as _serde; {} }};",
                gen(&item)
            )
        }
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stand-in derive does not support generics (on `{name}`)"
        ));
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Struct {
                name,
                shape: Shape::Named(parse_named_fields(g.stream())?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::Struct {
                    name,
                    shape: Shape::Tuple(count_tuple_fields(g.stream())),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::Struct {
                name,
                shape: Shape::Unit,
            }),
            other => Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            other => Err(format!("expected enum body for `{name}`, found {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Skip `#[...]` attributes (incl. doc comments) and `pub`/`pub(...)`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// `name: Type, ...` — returns field names; types are skipped by walking to
/// the next comma outside `<...>` nesting (delimited groups are atomic
/// token trees, so only angle brackets need depth tracking).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        skip_type(&tokens, &mut i);
        fields.push(name);
    }
    Ok(fields)
}

/// Advance past a type, stopping after the comma that ends it (if any).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while *i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*i] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Number of fields in a tuple-struct/tuple-variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Shape)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream())?)
            }
            _ => Shape::Unit,
        };
        // Discriminant (`= expr`) would appear here; none in this workspace.
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            Some(other) => return Err(format!("expected `,` after variant, found {other:?}")),
        }
        variants.push((name, shape));
    }
    Ok(variants)
}

// --------------------------------------------------------------- codegen

/// Expression serializing `expr_prefix.field` pairs into a Content::Map.
fn map_literal(pairs: &[(String, String)]) -> String {
    let entries: Vec<String> = pairs
        .iter()
        .map(|(k, v)| {
            format!("(::std::string::String::from({k:?}), _serde::Serialize::serialize({v}))")
        })
        .collect();
    format!("_serde::Content::Map(::std::vec![{}])", entries.join(", "))
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "_serde::Content::Null".to_string(),
                // Newtype structs are transparent, like real serde.
                Shape::Tuple(1) => "_serde::Serialize::serialize(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("_serde::Serialize::serialize(&self.{i})"))
                        .collect();
                    format!("_serde::Content::Seq(::std::vec![{}])", items.join(", "))
                }
                Shape::Named(fields) => {
                    let pairs: Vec<(String, String)> = fields
                        .iter()
                        .map(|f| (f.clone(), format!("&self.{f}")))
                        .collect();
                    map_literal(&pairs)
                }
            };
            format!(
                "impl _serde::Serialize for {name} {{ \
                     fn serialize(&self) -> _serde::Content {{ {body} }} \
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, shape)| match shape {
                    Shape::Unit => format!(
                        "{name}::{v} => _serde::Content::Str(::std::string::String::from({v:?}))"
                    ),
                    Shape::Tuple(1) => format!(
                        "{name}::{v}(f0) => _serde::Content::Map(::std::vec![(\
                         ::std::string::String::from({v:?}), \
                         _serde::Serialize::serialize(f0))])"
                    ),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("_serde::Serialize::serialize(f{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => _serde::Content::Map(::std::vec![(\
                             ::std::string::String::from({v:?}), \
                             _serde::Content::Seq(::std::vec![{}]))])",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                    Shape::Named(fields) => {
                        let binds = fields.join(", ");
                        let pairs: Vec<(String, String)> =
                            fields.iter().map(|f| (f.clone(), f.clone())).collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => _serde::Content::Map(::std::vec![(\
                             ::std::string::String::from({v:?}), {})])",
                            map_literal(&pairs)
                        )
                    }
                })
                .collect();
            format!(
                "impl _serde::Serialize for {name} {{ \
                     fn serialize(&self) -> _serde::Content {{ \
                         match self {{ {} }} \
                     }} \
                 }}",
                arms.join(", ")
            )
        }
    }
}

/// `field:` initializer reading `key` out of `src` content.
fn field_init(ty: &str, src: &str, field: &str) -> String {
    format!(
        "{field}: _serde::Deserialize::deserialize(_serde::__private::field({src}, {field:?})) \
             .map_err(|e| _serde::DeError(::std::format!(\"{ty}.{field}: {{e}}\")))?"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::Struct { name, shape } => match shape {
            Shape::Unit => format!("{{ let _ = content; ::std::result::Result::Ok({name}) }}"),
            Shape::Tuple(1) => format!(
                "::std::result::Result::Ok({name}(_serde::Deserialize::deserialize(content)?))"
            ),
            Shape::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|i| format!("_serde::Deserialize::deserialize(&__items[{i}])?"))
                    .collect();
                format!(
                    "{{ let __items = _serde::__private::expect_seq(content, {name:?}, {n})?; \
                       ::std::result::Result::Ok({name}({})) }}",
                    inits.join(", ")
                )
            }
            Shape::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| field_init(name, "content", f))
                    .collect();
                format!(
                    "{{ _serde::__private::expect_map(content, {name:?})?; \
                       ::std::result::Result::Ok({name} {{ {} }}) }}",
                    inits.join(", ")
                )
            }
        },
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, shape)| match shape {
                    Shape::Unit => {
                        format!("{v:?} => ::std::result::Result::Ok({name}::{v})")
                    }
                    Shape::Tuple(1) => format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v}(\
                         _serde::Deserialize::deserialize(__payload).map_err(|e| \
                         _serde::DeError(::std::format!(\"{name}::{v}: {{e}}\")))?))"
                    ),
                    Shape::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("_serde::Deserialize::deserialize(&__items[{i}])?"))
                            .collect();
                        format!(
                            "{v:?} => {{ let __items = _serde::__private::expect_seq(\
                             __payload, \"{name}::{v}\", {n})?; \
                             ::std::result::Result::Ok({name}::{v}({})) }}",
                            inits.join(", ")
                        )
                    }
                    Shape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| field_init(&format!("{name}::{v}"), "__payload", f))
                            .collect();
                        format!(
                            "{v:?} => ::std::result::Result::Ok({name}::{v} {{ {} }})",
                            inits.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "{{ let (__tag, __payload) = _serde::__private::variant(content, {name:?})?; \
                   match __tag {{ {}, __other => ::std::result::Result::Err(\
                   _serde::__private::unknown_variant({name:?}, __other)) }} }}",
                arms.join(", ")
            )
        }
    };
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "impl _serde::Deserialize for {name} {{ \
             fn deserialize(content: &_serde::Content) \
                 -> ::std::result::Result<Self, _serde::DeError> {{ {body} }} \
         }}"
    )
}
