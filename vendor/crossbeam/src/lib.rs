//! Offline stand-in for `crossbeam`: an MPMC channel with the
//! `crossbeam::channel` API shape, implemented over `Mutex` + `Condvar`.
//!
//! Unlike `std::sync::mpsc`, both [`channel::Sender`] and
//! [`channel::Receiver`] are cloneable, so a pool of worker threads can
//! drain one shared queue — the pattern the stream runtime and the
//! serving layer's thread pool rely on.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        /// Bounded capacity; `usize::MAX` means unbounded.
        capacity: usize,
        not_empty: Condvar,
        not_full: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(t) | TrySendError::Disconnected(t) => t,
            }
        }

        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }

        pub fn is_disconnected(&self) -> bool {
            matches!(self, TrySendError::Disconnected(_))
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    /// The sending half; cloneable (MPMC).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// A channel holding at most `capacity` messages; sends block when full.
    /// A capacity of zero is rounded up to one (rendezvous channels are not
    /// needed by this workspace).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(capacity.max(1))
    }

    /// A channel with no capacity bound; sends never block.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(usize::MAX)
    }

    fn with_capacity<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Send, blocking while the channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.shared.queue.lock().unwrap();
            loop {
                if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                if queue.len() < self.shared.capacity {
                    queue.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                queue = self.shared.not_full.wait(queue).unwrap();
            }
        }

        /// Send without blocking; fails fast when full or disconnected.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut queue = self.shared.queue.lock().unwrap();
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if queue.len() >= self.shared.capacity {
                return Err(TrySendError::Full(value));
            }
            queue.push_back(value);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap().len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receive, blocking while the channel is empty and senders remain.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self.shared.not_empty.wait(queue).unwrap();
            }
        }

        /// Receive with a deadline relative to now.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (q, result) = self
                    .shared
                    .not_empty
                    .wait_timeout(queue, deadline - now)
                    .unwrap();
                queue = q;
                if result.timed_out() && queue.is_empty() {
                    return if self.shared.senders.load(Ordering::SeqCst) == 0 {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap();
            if let Some(v) = queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap().len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator over messages until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn bounded_send_recv() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(tx.try_send(3).unwrap_err().is_full());
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = bounded::<i32>(4);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn disconnect_on_receiver_drop() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(tx.send(1).is_err());
        assert!(tx.try_send(2).unwrap_err().is_disconnected());
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = bounded::<i32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn mpmc_workers_drain_shared_queue() {
        let (tx, rx) = bounded(64);
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn blocking_send_unblocks_on_recv() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).unwrap());
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        t.join().unwrap();
    }
}
