//! Offline stand-in for `criterion`: the group/bencher API surface this
//! workspace's benches use, backed by a small wall-clock harness.
//!
//! Statistics are deliberately simple — a calibration pass sizes the
//! iteration count to the configured measurement window, then one timed
//! run reports the mean per-iteration latency. No plots, no regression
//! analysis, no saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub mod measurement {
    /// Wall-clock time measurement (the only measurement offered).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// How batched inputs are grouped between setup calls. Accepted for API
/// compatibility; this harness always re-runs setup per iteration.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark label, optionally parameterized (`name/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { id: name }
    }
}

#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

/// Runs one benchmark's timing loop. Handed to bench closures as `&mut b`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    settings: Settings,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Calibration: one iteration tells us roughly how long the routine takes.
    let mut probe = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut probe);
    let per_iter = probe.elapsed.max(Duration::from_nanos(1));

    // Warm-up within budget, then size the measured run to the window,
    // bounded so pathological cases cannot hang a bench binary.
    let warm_iters =
        (settings.warm_up_time.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000) as u64;
    let mut warm = Bencher {
        iters: warm_iters,
        elapsed: Duration::ZERO,
    };
    f(&mut warm);

    let window = settings.measurement_time.as_nanos();
    let iters = (window / per_iter.as_nanos()).clamp(1, 100_000) as u64;
    let iters = iters.min(settings.sample_size as u64 * 1_000).max(1);
    let mut bench = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bench);

    let mean = bench.elapsed.as_secs_f64() / bench.iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            format!("  thrpt: {:.0} elem/s", n as f64 / mean)
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            format!("  thrpt: {:.0} B/s", n as f64 / mean)
        }
        _ => String::new(),
    };
    println!(
        "{id:<40} time: {}{rate}  ({} iters)",
        format_secs(mean),
        bench.iters
    );
}

fn format_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.settings, None, f);
        self
    }

    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            settings: Settings::default(),
            throughput: None,
            _measurement: std::marker::PhantomData,
        }
    }
}

pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().id);
        run_one(&id, self.settings, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        run_one(&id, self.settings, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut count = 0u64;
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        g.measurement_time(Duration::from_millis(5));
        g.warm_up_time(Duration::from_millis(1));
        g.throughput(Throughput::Elements(10));
        g.bench_function("count", |b| b.iter(|| count += 1));
        g.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &n| {
            b.iter(|| count += u64::from(n))
        });
        g.finish();
        assert!(count > 0);
    }

    #[test]
    fn iter_batched_reruns_setup() {
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
