//! Offline stand-in for the `bytes` crate: the subset the wire protocol
//! uses. [`BytesMut`] accumulates an outgoing frame, [`Bytes`] is the
//! cheaply-cloneable frozen form, and [`Buf`]/[`BufMut`] provide
//! big-endian integer cursors (network byte order, matching the real
//! crate's `get_u32`/`put_u32` family).
//!
//! [`Bytes`] carries an `(offset, len)` view over a shared `Arc<[u8]>`,
//! so [`Bytes::slice`] and [`Bytes::split_to`] are zero-copy: a decoded
//! field can alias the frame it arrived in without a memcpy. Equality
//! and hashing are content-based, matching the real crate.

use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer: a view into shared
/// storage. Cloning and slicing bump a refcount; neither copies bytes.
/// The storage is `Arc<Vec<u8>>` (not `Arc<[u8]>`) so `From<Vec<u8>>` —
/// and therefore [`BytesMut::freeze`] — moves the vector instead of
/// copying it.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    offset: usize,
    len: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.offset..self.offset + self.len]
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A zero-copy sub-view sharing this buffer's storage. Panics when
    /// the range falls outside the view, like the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice out of bounds: {start}..{end} of {}",
            self.len
        );
        Bytes {
            data: Arc::clone(&self.data),
            offset: self.offset + start,
            len: end - start,
        }
    }

    /// Split off the first `at` bytes as their own view, leaving the
    /// tail in `self`. Zero-copy; panics when `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        let head = self.slice(..at);
        self.offset += at;
        self.len -= at;
        head
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::new(v),
            offset: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Self {
        v.freeze()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len, "buffer underflow");
        self.offset += cnt;
        self.len -= cnt;
    }
}

/// A growable byte buffer for assembling frames.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Shorten the buffer to `len` bytes; no-op when already shorter.
    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
    }

    pub fn extend_from_slice(&mut self, other: &[u8]) {
        self.data.extend_from_slice(other);
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Append `additional` zeroed bytes, returning the offset where they
    /// start. Used by read buffers that fill spare room from a socket.
    pub fn grow_zeroed(&mut self, additional: usize) -> usize {
        let at = self.data.len();
        self.data.resize(at + additional, 0);
        at
    }

    /// Mutable access to the whole buffer (for socket reads into spare
    /// room created by [`grow_zeroed`](BytesMut::grow_zeroed)).
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Drop the first `cnt` bytes, shifting the tail down. Read buffers
    /// call this once per *frame*, not per field, so the memmove is
    /// amortized over everything decoded from that frame.
    pub fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.data.len(), "buffer underflow");
        self.data.drain(..cnt);
    }

    /// Freeze into an immutable [`Bytes`] without copying: the vector
    /// moves into shared storage. Pooled hot paths still skip this and
    /// write the `BytesMut` out directly so the buffer can be reused.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Consume into the underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { data: v }
    }
}

/// Read cursor over a byte source. All integers are big-endian.
///
/// Like the real crate, the `get_*` methods panic when the source has too
/// few bytes remaining — callers bounds-check with [`Buf::remaining`].
pub trait Buf {
    fn remaining(&self) -> usize;

    fn chunk(&self) -> &[u8];

    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

/// Write cursor. All integers are big-endian.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_i64(&mut self, v: i64) {
        self.put_u64(v as u64);
    }

    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_integers() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(u64::MAX - 1);
        b.put_i64(-42);
        b.put_f64(1.5);
        let frozen = b.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64(), u64::MAX - 1);
        assert_eq!(cur.get_i64(), -42);
        assert_eq!(cur.get_f64(), 1.5);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn big_endian_layout() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u32(1);
        assert_eq!(v, vec![0, 0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut cur: &[u8] = &[1, 2];
        cur.get_u32();
    }

    #[test]
    fn bytes_clone_is_cheap_and_equal() {
        let b = Bytes::copy_from_slice(b"hello");
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&*c, b"hello");
    }

    #[test]
    fn slice_is_zero_copy_and_content_equal() {
        let b = Bytes::copy_from_slice(b"hello world");
        let hello = b.slice(..5);
        let world = b.slice(6..);
        assert_eq!(&*hello, b"hello");
        assert_eq!(&*world, b"world");
        // Same backing storage: three views, one allocation.
        assert_eq!(Arc::strong_count(&b.data), 3);
        // Content equality across different offsets.
        assert_eq!(hello, Bytes::copy_from_slice(b"hello"));
        assert_ne!(hello, world);
    }

    #[test]
    fn split_to_partitions_the_view() {
        let mut b = Bytes::copy_from_slice(b"head|tail");
        let head = b.split_to(5);
        assert_eq!(&*head, b"head|");
        assert_eq!(&*b, b"tail");
    }

    #[test]
    fn bytes_is_a_buf_cursor() {
        let mut b = Bytes::copy_from_slice(&[0, 0, 0, 9, 42]);
        assert_eq!(b.get_u32(), 9);
        assert_eq!(b.get_u8(), 42);
        assert!(!b.has_remaining());
    }

    #[test]
    fn sliced_hash_matches_content() {
        use std::collections::HashSet;
        let outer = Bytes::copy_from_slice(b"xxkeyxx");
        let mut set = HashSet::new();
        set.insert(outer.slice(2..5));
        assert!(set.contains(&Bytes::copy_from_slice(b"key")));
    }

    #[test]
    fn bytes_mut_advance_drops_prefix() {
        let mut b = BytesMut::from(b"0123456789".to_vec());
        b.advance(4);
        assert_eq!(b.as_slice(), b"456789");
        let at = b.grow_zeroed(2);
        assert_eq!(at, 6);
        b.as_mut_slice()[at] = b'!';
        assert_eq!(b.as_slice(), b"456789!\0");
        b.truncate(7);
        assert_eq!(b.as_slice(), b"456789!");
    }
}
