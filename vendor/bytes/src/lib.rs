//! Offline stand-in for the `bytes` crate: the subset the wire protocol
//! uses. [`BytesMut`] accumulates an outgoing frame, [`Bytes`] is the
//! cheaply-cloneable frozen form, and [`Buf`]/[`BufMut`] provide
//! big-endian integer cursors (network byte order, matching the real
//! crate's `get_u32`/`put_u32` family).

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Self {
        v.freeze()
    }
}

/// A growable byte buffer for assembling frames.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }

    pub fn extend_from_slice(&mut self, other: &[u8]) {
        self.data.extend_from_slice(other);
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Consume into the underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { data: v }
    }
}

/// Read cursor over a byte source. All integers are big-endian.
///
/// Like the real crate, the `get_*` methods panic when the source has too
/// few bytes remaining — callers bounds-check with [`Buf::remaining`].
pub trait Buf {
    fn remaining(&self) -> usize;

    fn chunk(&self) -> &[u8];

    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

/// Write cursor. All integers are big-endian.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_i64(&mut self, v: i64) {
        self.put_u64(v as u64);
    }

    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_integers() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(u64::MAX - 1);
        b.put_i64(-42);
        b.put_f64(1.5);
        let frozen = b.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64(), u64::MAX - 1);
        assert_eq!(cur.get_i64(), -42);
        assert_eq!(cur.get_f64(), 1.5);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn big_endian_layout() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u32(1);
        assert_eq!(v, vec![0, 0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut cur: &[u8] = &[1, 2];
        cur.get_u32();
    }

    #[test]
    fn bytes_clone_is_cheap_and_equal() {
        let b = Bytes::copy_from_slice(b"hello");
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&*c, b"hello");
    }
}
