//! Offline stand-in for `serde_json`, over the `serde` stand-in's
//! [`Content`](serde::Content) model (re-exported here as [`Value`]).
//!
//! Provides the workspace's used surface: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`to_value`], [`from_value`], the
//! [`json!`] macro, and `Value` itself with object/array accessors.
//! Floats print in shortest round-trip form and parse correctly rounded,
//! so the `float_roundtrip` behavior of the real crate always holds.

use serde::{Deserialize, Serialize};

pub use serde::Content as Value;
pub use serde::Number;

/// Serialization/deserialization failure (parse errors, shape mismatches).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Render any serializable value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.serialize().to_string())
}

/// Render any serializable value as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.serialize(), 0, &mut out);
    Ok(out)
}

/// Convert a serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.serialize())
}

/// Rebuild a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    Ok(T::deserialize(&value)?)
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::deserialize(&value)?)
}

/// Parse JSON bytes (must be UTF-8).
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Build a [`Value`] from a JSON literal.
///
/// Implemented by parsing the stringified tokens, which covers every JSON
/// literal shape; interpolating runtime expressions is not supported (use
/// `Value` constructors for that).
#[macro_export]
macro_rules! json {
    ($($tokens:tt)+) => {
        $crate::from_str::<$crate::Value>(stringify!($($tokens)+))
            .expect("invalid json! literal")
    };
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_pretty(value: &Value, depth: usize, out: &mut String) {
    match value {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(depth + 1, out);
                write_pretty(item, depth + 1, out);
            }
            out.push('\n');
            indent(depth, out);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(depth + 1, out);
                serde::escape_json_string(k, out);
                out.push_str(": ");
                write_pretty(v, depth + 1, out);
            }
            out.push('\n');
            indent(depth, out);
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                char::from(byte),
                self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at offset {}",
                char::from(c),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs: decode the low half if present.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                let rest = &self.bytes[self.pos + 5..];
                                if rest.len() >= 6 && rest[0] == b'\\' && rest[1] == b'u' {
                                    let lo_hex = std::str::from_utf8(&rest[2..6])
                                        .map_err(|_| Error::new("invalid \\u escape"))?;
                                    let lo = u32::from_str_radix(lo_hex, 16)
                                        .map_err(|_| Error::new("invalid \\u escape"))?;
                                    self.pos += 6;
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid unicode escape"))?);
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
            // Leniency for `json!`: stringified token streams separate `-`
            // from the digits (`- 0.5`).
            self.skip_ws();
        }
        let digits_start = self.pos;
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' => {
                    is_float = true;
                    self.pos += 1;
                }
                b'-' if is_float => self.pos += 1,
                _ => break,
            }
        }
        if self.pos == digits_start {
            return Err(Error::new(format!("invalid number at offset {start}")));
        }
        let body = std::str::from_utf8(&self.bytes[digits_start..self.pos]).unwrap();
        let text = if negative {
            format!("-{body}")
        } else {
            body.to_string()
        };
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Num(Number::I64(v)));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Num(Number::U64(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Num(Number::F64(v)))
            .map_err(|_| Error::new(format!("invalid number `{text}` at offset {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&1i64).unwrap(), "1");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(from_str::<String>("\"hi\\nthere\"").unwrap(), "hi\nthere");
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for &x in &[
            0.1f64,
            0.2,
            0.1 + 0.2,
            1.0 / 3.0,
            6.02214076e23,
            -0.0,
            5e-324,
        ] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {text} -> {back}");
        }
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        let v: Value = from_str("1.0").unwrap();
        assert_eq!(v, Value::Num(Number::F64(1.0)));
        let i: Value = from_str("1").unwrap();
        assert_eq!(i, Value::Num(Number::I64(1)));
    }

    #[test]
    fn nested_value_round_trip() {
        let v =
            json!({"name": "fstore", "versions": [1, 2, 3], "meta": {"ok": true, "score": 0.5}});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(v["name"].as_str(), Some("fstore"));
        assert_eq!(v["versions"][2].as_i64(), Some(3));
        assert_eq!(v["meta"]["score"].as_f64(), Some(0.5));
        assert!(v["missing"].is_null());
    }

    #[test]
    fn json_macro_shapes() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(3), Value::Num(Number::I64(3)));
        assert_eq!(json!({}), Value::Map(vec![]));
        assert_eq!(json!([0.5, -0.5])[1].as_f64(), Some(-0.5));
        assert_eq!(json!({"w": [1.0]})["w"][0].as_f64(), Some(1.0));
    }

    #[test]
    fn pretty_printing() {
        let v = json!({"a": 1, "b": [1, 2]});
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": 1,\n  \"b\": [\n    1,\n    2\n  ]\n}");
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
        assert_eq!(to_string_pretty(&json!({})).unwrap(), "{}");
    }

    #[test]
    fn parse_errors() {
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Vec<i64>>("{}").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>("\"\\u00e9\"").unwrap(), "é");
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }
}
